//! A serialisable snapshot of a [`Recorder`](crate::Recorder), plus the
//! JSONL wire format it round-trips through.
//!
//! Each JSONL line is one self-describing object: a `request`, `span`,
//! `counter`, `gauge`, or `hist`. Field order is stable, numbers are
//! integers (sim-time is integer microseconds), and parsing the emitted
//! text yields an [`Export`] equal to the original — the format is
//! lossless over the export data model.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::{AttrValue, Inner};

/// One traced request, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportRequest {
    /// Request id (dense, creation order).
    pub id: u32,
    /// Human-readable label given to `begin_request`.
    pub label: String,
    /// Sim-time the request began, in microseconds.
    pub start_us: u64,
}

/// A span attribute value, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportAttr {
    /// An unsigned integer attribute.
    U64(u64),
    /// A string attribute.
    Str(String),
}

/// One span, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportSpan {
    /// Span id (dense, start order).
    pub id: u32,
    /// Owning request id.
    pub request: u32,
    /// Parent span id, or `None` for a request root.
    pub parent: Option<u32>,
    /// Span name, e.g. `proxy.invoke`.
    pub name: String,
    /// Start instant in sim-microseconds.
    pub start_us: u64,
    /// End instant in sim-microseconds; `None` when still open at export.
    pub end_us: Option<u64>,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, ExportAttr)>,
}

/// One named duration histogram, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportHist {
    /// Histogram name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples in microseconds.
    pub sum_us: u64,
    /// Exact smallest sample in microseconds.
    pub min_us: u64,
    /// Exact largest sample in microseconds.
    pub max_us: u64,
    /// Sparse `(bucket lo µs, bucket hi µs, count)` triples, ascending,
    /// where `[lo, hi)` is the half-open value range of each occupied
    /// bucket — boundaries are explicit so downstream tooling never has
    /// to re-derive the bucketing scheme from midpoints.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Everything a [`Recorder`](crate::Recorder) captured, as plain data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Export {
    /// Requests in creation order.
    pub requests: Vec<ExportRequest>,
    /// Spans in start order.
    pub spans: Vec<ExportSpan>,
    /// Named counters (includes `net.sent.*` / `net.dropped.*` /
    /// `net.bytes_sent` when the recorder was installed as a net hook).
    pub counters: Vec<(String, u64)>,
    /// Named gauges.
    pub gauges: Vec<(String, i64)>,
    /// Named duration histograms.
    pub hists: Vec<ExportHist>,
}

pub(crate) fn snapshot(inner: &Inner) -> Export {
    let requests = inner
        .requests
        .iter()
        .map(|r| ExportRequest {
            id: r.id.0,
            label: r.label.to_string(),
            start_us: r.started.as_micros(),
        })
        .collect();

    let spans = inner
        .spans
        .iter()
        .map(|s| ExportSpan {
            id: s.id.0,
            request: s.request.0,
            parent: s.parent.map(|p| p.0),
            name: s.name.to_string(),
            start_us: s.start.as_micros(),
            end_us: s.end.map(|e| e.as_micros()),
            attrs: s
                .attrs
                .iter()
                .map(|(k, v)| {
                    let v = match v {
                        AttrValue::U64(n) => ExportAttr::U64(*n),
                        AttrValue::Str(s) => ExportAttr::Str(s.to_string()),
                    };
                    (k.to_string(), v)
                })
                .collect(),
        })
        .collect();

    let mut counters: BTreeMap<String, u64> = inner
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    for (kind, n) in &inner.net_sent {
        *counters.entry(format!("net.sent.{kind}")).or_insert(0) += n;
    }
    for (kind, n) in &inner.net_dropped {
        *counters.entry(format!("net.dropped.{kind}")).or_insert(0) += n;
    }
    if inner.net_bytes > 0 || !inner.net_sent.is_empty() {
        *counters.entry("net.bytes_sent".to_string()).or_insert(0) += inner.net_bytes;
    }

    let hists = inner
        .durations
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(name, h)| ExportHist {
            name: name.to_string(),
            count: h.count() as u64,
            sum_us: h.sum_micros(),
            min_us: h.min().expect("non-empty").as_micros(),
            max_us: h.max().expect("non-empty").as_micros(),
            buckets: h.bucket_ranges(),
        })
        .collect();

    Export {
        requests,
        spans,
        counters: counters.into_iter().collect(),
        gauges: inner
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        hists,
    }
}

impl Export {
    /// Serialises to JSON-lines text (one object per line, stable order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            out.push_str("{\"type\":\"request\",\"id\":");
            out.push_str(&r.id.to_string());
            out.push_str(",\"label\":");
            json::write_str(&mut out, &r.label);
            out.push_str(",\"start_us\":");
            out.push_str(&r.start_us.to_string());
            out.push_str("}\n");
        }
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            out.push_str(&s.id.to_string());
            out.push_str(",\"request\":");
            out.push_str(&s.request.to_string());
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            json::write_str(&mut out, &s.name);
            out.push_str(",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"end_us\":");
            match s.end_us {
                Some(e) => out.push_str(&e.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"attrs\":[");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json::write_str(&mut out, k);
                out.push(',');
                match v {
                    ExportAttr::U64(n) => out.push_str(&n.to_string()),
                    ExportAttr::Str(s) => json::write_str(&mut out, s),
                }
                out.push(']');
            }
            out.push_str("]}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::write_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}\n");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json::write_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}\n");
        }
        for h in &self.hists {
            out.push_str("{\"type\":\"hist\",\"name\":");
            json::write_str(&mut out, &h.name);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum_us\":");
            out.push_str(&h.sum_us.to_string());
            out.push_str(",\"min_us\":");
            out.push_str(&h.min_us.to_string());
            out.push_str(",\"max_us\":");
            out.push_str(&h.max_us.to_string());
            out.push_str(",\"buckets\":[");
            for (i, (lo, hi, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&lo.to_string());
                out.push(',');
                out.push_str(&hi.to_string());
                out.push(',');
                out.push_str(&n.to_string());
                out.push(']');
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses JSONL text produced by [`Export::to_jsonl`].
    ///
    /// Returns an error naming the offending line when the text is not
    /// valid export JSONL. `parse_jsonl(x.to_jsonl()) == x` for every
    /// export `x`.
    pub fn parse_jsonl(text: &str) -> Result<Export, String> {
        let mut export = Export::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let err = |what: &str| format!("line {}: {what}", lineno + 1);
            let kind = v
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| err("missing \"type\""))?;
            match kind {
                "request" => export.requests.push(ExportRequest {
                    id: field_u64(&v, "id").ok_or_else(|| err("bad request"))? as u32,
                    label: v
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or_else(|| err("bad request"))?
                        .to_string(),
                    start_us: field_u64(&v, "start_us").ok_or_else(|| err("bad request"))?,
                }),
                "span" => {
                    let parent = match v.get("parent") {
                        Some(Value::Null) => None,
                        Some(p) => Some(p.as_u64().ok_or_else(|| err("bad parent"))? as u32),
                        None => return Err(err("bad span")),
                    };
                    let end_us = match v.get("end_us") {
                        Some(Value::Null) => None,
                        Some(e) => Some(e.as_u64().ok_or_else(|| err("bad end_us"))?),
                        None => return Err(err("bad span")),
                    };
                    let attrs = v
                        .get("attrs")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| err("bad span"))?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr()?;
                            let key = pair.first()?.as_str()?.to_string();
                            let value = match pair.get(1)? {
                                Value::Str(s) => ExportAttr::Str(s.clone()),
                                other => ExportAttr::U64(other.as_u64()?),
                            };
                            Some((key, value))
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| err("bad attrs"))?;
                    export.spans.push(ExportSpan {
                        id: field_u64(&v, "id").ok_or_else(|| err("bad span"))? as u32,
                        request: field_u64(&v, "request").ok_or_else(|| err("bad span"))? as u32,
                        parent,
                        name: v
                            .get("name")
                            .and_then(Value::as_str)
                            .ok_or_else(|| err("bad span"))?
                            .to_string(),
                        start_us: field_u64(&v, "start_us").ok_or_else(|| err("bad span"))?,
                        end_us,
                        attrs,
                    });
                }
                "counter" => export.counters.push((
                    v.get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| err("bad counter"))?
                        .to_string(),
                    field_u64(&v, "value").ok_or_else(|| err("bad counter"))?,
                )),
                "gauge" => export.gauges.push((
                    v.get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| err("bad gauge"))?
                        .to_string(),
                    v.get("value")
                        .and_then(Value::as_i64)
                        .ok_or_else(|| err("bad gauge"))?,
                )),
                "hist" => {
                    let buckets = v
                        .get("buckets")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| err("bad hist"))?
                        .iter()
                        .map(|triple| {
                            let triple = triple.as_arr()?;
                            Some((
                                triple.first()?.as_u64()?,
                                triple.get(1)?.as_u64()?,
                                triple.get(2)?.as_u64()?,
                            ))
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| err("bad hist buckets"))?;
                    export.hists.push(ExportHist {
                        name: v
                            .get("name")
                            .and_then(Value::as_str)
                            .ok_or_else(|| err("bad hist"))?
                            .to_string(),
                        count: field_u64(&v, "count").ok_or_else(|| err("bad hist"))?,
                        sum_us: field_u64(&v, "sum_us").ok_or_else(|| err("bad hist"))?,
                        min_us: field_u64(&v, "min_us").ok_or_else(|| err("bad hist"))?,
                        max_us: field_u64(&v, "max_us").ok_or_else(|| err("bad hist"))?,
                        buckets,
                    });
                }
                other => return Err(err(&format!("unknown type {other:?}"))),
            }
        }
        Ok(export)
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use whisper_simnet::{SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn rich_recorder() -> Recorder {
        let rec = Recorder::new();
        let req = rec.begin_request("cold \"u1004\"", t(1_000));
        let root = rec.start_span("client.request", req, t(1_000));
        let bind = rec.start_span("proxy.bind", req, t(1_200));
        rec.set_attr(bind, "peer", 3u64);
        rec.set_attr(bind, "note", "retry\nafter λ");
        rec.end_span(bind, t(1_450));
        let open = rec.start_span("proxy.invoke", req, t(1_500));
        let _ = open; // left open on purpose: export must represent it
        rec.end_span(root, t(2_000));
        rec.incr("discovery.queries", 4);
        rec.set_gauge("bpeers.alive", -2);
        rec.record_duration("rtt", SimDuration::from_micros(812));
        rec.record_duration("rtt", SimDuration::from_micros(90_000));
        rec
    }

    #[test]
    fn jsonl_round_trips_losslessly() {
        let export = rich_recorder().export();
        let text = export.to_jsonl();
        let parsed = Export::parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, export);
        // and the round-tripped export serialises identically
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn empty_export_round_trips() {
        let export = Recorder::new().export();
        assert_eq!(Export::parse_jsonl(&export.to_jsonl()).unwrap(), export);
        assert_eq!(Export::parse_jsonl("\n\n").unwrap(), Export::default());
    }

    #[test]
    fn open_spans_export_null_end() {
        let export = rich_recorder().export();
        let invoke = export
            .spans
            .iter()
            .find(|s| s.name == "proxy.invoke")
            .unwrap();
        assert_eq!(invoke.end_us, None);
        let text = export.to_jsonl();
        assert!(text.contains("\"end_us\":null"));
    }

    #[test]
    fn hist_export_is_exact_where_it_claims_to_be() {
        let export = rich_recorder().export();
        let rtt = export.hists.iter().find(|h| h.name == "rtt").unwrap();
        assert_eq!(rtt.count, 2);
        assert_eq!(rtt.sum_us, 90_812);
        assert_eq!(rtt.min_us, 812);
        assert_eq!(rtt.max_us, 90_000);
        assert_eq!(rtt.buckets.iter().map(|&(_, _, n)| n).sum::<u64>(), 2);
        // Bucket bounds are explicit half-open ranges that cover the
        // recorded samples.
        for &(lo, hi, _) in &rtt.buckets {
            assert!(lo < hi, "empty bucket range [{lo},{hi})");
        }
        assert!(rtt
            .buckets
            .iter()
            .any(|&(lo, hi, _)| (lo..hi).contains(&812)));
        assert!(rtt
            .buckets
            .iter()
            .any(|&(lo, hi, _)| (lo..hi).contains(&90_000)));
    }

    #[test]
    fn parse_reports_offending_line() {
        let err = Export::parse_jsonl(
            "{\"type\":\"request\",\"id\":0,\"label\":\"x\",\"start_us\":1}\nnot json\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Export::parse_jsonl("{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.contains("unknown type"), "{err}");
    }
}
