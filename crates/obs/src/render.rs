//! Terminal rendering: per-request span trees (a flame view in text) and
//! cross-request phase summaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use whisper_simnet::SimDuration;

use crate::{AttrValue, Inner, RequestId, Span};

/// Column where durations start; names/branches are padded up to it.
const DURATION_COL: usize = 46;

pub(crate) fn render_request(inner: &Inner, req: RequestId) -> String {
    let mut out = String::new();
    match inner.requests.get(req.0 as usize) {
        Some(info) => {
            let _ = writeln!(
                out,
                "request #{} \"{}\"  started at {}",
                info.id.0, info.label, info.started
            );
        }
        None => {
            let _ = writeln!(out, "request #{} (unknown)", req.0);
            return out;
        }
    }

    let spans: Vec<&Span> = inner.spans.iter().filter(|s| s.request == req).collect();
    if spans.is_empty() {
        out.push_str("  (no spans recorded)\n");
        return out;
    }

    // children in start order (spans are stored in start order already)
    let mut children: BTreeMap<Option<u32>, Vec<&Span>> = BTreeMap::new();
    for s in &spans {
        children.entry(s.parent.map(|p| p.0)).or_default().push(s);
    }
    let roots = children.get(&None).cloned().unwrap_or_default();
    let n = roots.len();
    for (i, root) in roots.into_iter().enumerate() {
        render_span(&mut out, &children, root, "", i + 1 == n);
    }
    out
}

fn render_span(
    out: &mut String,
    children: &BTreeMap<Option<u32>, Vec<&Span>>,
    span: &Span,
    prefix: &str,
    last: bool,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let mut line = format!("{prefix}{branch}{}", span.name);
    let width = line.chars().count();
    if width < DURATION_COL {
        line.push_str(&" ".repeat(DURATION_COL - width));
    } else {
        line.push(' ');
    }
    match span.duration() {
        Some(d) => {
            let _ = write!(line, "{:>12}", d.to_string());
        }
        None => {
            let _ = write!(line, "{:>12}", "(open)");
        }
    }
    if !span.attrs.is_empty() {
        line.push_str("  {");
        for (i, (k, v)) in span.attrs.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(line, "{k}={n}");
                }
                AttrValue::Str(s) => {
                    let _ = write!(line, "{k}={s}");
                }
            }
        }
        line.push('}');
    }
    out.push_str(&line);
    out.push('\n');

    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    if let Some(kids) = children.get(&Some(span.id.0)) {
        let n = kids.len();
        for (i, kid) in kids.iter().enumerate() {
            render_span(out, children, kid, &child_prefix, i + 1 == n);
        }
    }
}

pub(crate) fn phase_summary(inner: &Inner) -> Vec<(String, u64, SimDuration, SimDuration)> {
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in &inner.spans {
        if let Some(d) = span.duration() {
            let entry = totals.entry(span.name.as_ref()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += d.as_micros();
        }
    }
    let mut rows: Vec<(String, u64, SimDuration, SimDuration)> = totals
        .into_iter()
        .map(|(name, (count, total_us))| {
            (
                name.to_string(),
                count,
                SimDuration::from_micros(total_us),
                SimDuration::from_micros(total_us / count),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use crate::Recorder;
    use whisper_simnet::{SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn renders_a_nested_tree_with_durations() {
        let rec = Recorder::new();
        let req = rec.begin_request("u1004 cold", t(3_000_000));
        let root = rec.start_span("client.request", req, t(3_000_000));
        let disc = rec.start_span("proxy.discover", req, t(3_001_000));
        rec.end_span(disc, t(3_051_000));
        let invoke = rec.start_span("proxy.invoke", req, t(3_052_000));
        let exec = rec.start_span("backend.execute", req, t(3_053_000));
        rec.end_span(exec, t(3_093_000));
        rec.end_span(invoke, t(3_095_000));
        rec.end_span(root, t(3_100_000));

        let text = rec.render_request(req);
        assert!(text.contains("request #0 \"u1004 cold\""), "{text}");
        assert!(text.contains("client.request"), "{text}");
        // nesting: backend.execute sits two levels deep
        let exec_line = text
            .lines()
            .find(|l| l.contains("backend.execute"))
            .unwrap();
        assert!(exec_line.starts_with("      └─ "), "{exec_line:?}");
        assert!(exec_line.contains("40.000ms"), "{exec_line:?}");
        // open spans are labelled
        let req2 = rec.begin_request("pending", t(0));
        rec.start_span("client.request", req2, t(0));
        assert!(rec.render_request(req2).contains("(open)"));
    }

    #[test]
    fn unknown_and_empty_requests_render_gracefully() {
        let rec = Recorder::new();
        assert!(rec.render_request(crate::RequestId(9)).contains("unknown"));
        let req = rec.begin_request("empty", t(0));
        assert!(rec.render_request(req).contains("no spans"));
    }

    #[test]
    fn phase_summary_aggregates_closed_spans() {
        let rec = Recorder::new();
        for i in 0..3u64 {
            let req = rec.begin_request("r", t(i * 1000));
            let s = rec.start_span("proxy.invoke", req, t(i * 1000));
            rec.end_span(s, t(i * 1000 + 200));
        }
        let req = rec.begin_request("open", t(0));
        rec.start_span("proxy.invoke", req, t(0)); // open: excluded
        let short = rec.start_span("proxy.bind", req, t(10));
        rec.end_span(short, t(15));

        let rows = rec.phase_summary();
        assert_eq!(rows[0].0, "proxy.invoke");
        assert_eq!(rows[0].1, 3);
        assert_eq!(rows[0].2, SimDuration::from_micros(600));
        assert_eq!(rows[0].3, SimDuration::from_micros(200));
        assert_eq!(rows[1].0, "proxy.bind");
    }
}
