//! Service-level objectives with error budgets and multi-window
//! burn-rate alerts.
//!
//! The [`SloEngine`] consumes the same signals the ledger and pulse
//! planes already produce — cumulative downtime from the
//! [`crate::AvailabilityLedger`] and a p99 request latency from the
//! pulse windows — and maintains two objectives:
//!
//! * **availability** — fraction of time the service is up must meet
//!   `availability_target`;
//! * **latency** — the observed p99 must stay under `p99_target`, for
//!   at least `latency_target` of the time.
//!
//! Each objective gets an *error budget*: over `budget_window`, at most
//! `1 - target` of the time may be bad. The engine tracks the **burn
//! rate** — how fast the budget is being consumed relative to the rate
//! that would exactly exhaust it — over a *fast* and a *slow* window.
//! An alert fires only when **both** exceed their thresholds (the slow
//! window proves the problem is material, the fast window proves it is
//! current), and clears as soon as either drops back below — the
//! classic multi-window burn-rate construction, which reacts in
//! O(fast_window) both ways instead of ringing for the whole budget
//! window.
//!
//! A firing alert is the trigger for a flight capture: the driver that
//! ticks the engine snapshots the [`crate::flight::FlightPlane`] on
//! every [`SloEvent::Fired`] so the post-mortem evidence is taken while
//! the incident is fresh in every ring.
//!
//! # Example
//!
//! ```
//! use whisper_obs::slo::{SloConfig, SloEngine, SloEvent};
//! use whisper_simnet::{SimDuration, SimTime};
//!
//! let mut slo = SloEngine::new(SloConfig::default());
//! let t = |ms| SimTime::from_micros(ms * 1000);
//! // healthy ticks: no downtime accumulates
//! for ms in (0..1000).step_by(50) {
//!     assert!(slo.tick(t(ms), SimDuration::ZERO, None).is_empty());
//! }
//! // an outage: downtime grows as fast as time does
//! let events: Vec<SloEvent> = (1000..2000)
//!     .step_by(50)
//!     .flat_map(|ms| {
//!         slo.tick(t(ms), SimDuration::from_micros((ms - 1000) * 1000), None)
//!     })
//!     .collect();
//! assert!(matches!(events[0], SloEvent::Fired { objective: "availability", .. }));
//! ```

use std::collections::VecDeque;

use whisper_simnet::{SimDuration, SimTime};

/// Objective targets and alerting windows for an [`SloEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Availability objective: fraction of time the service must be up.
    pub availability_target: f64,
    /// Latency objective: the p99 bound.
    pub p99_target: SimDuration,
    /// Fraction of time the p99 must be under `p99_target`.
    pub latency_target: f64,
    /// Horizon of the error budget.
    pub budget_window: SimDuration,
    /// Short burn-rate window: proves the problem is happening *now*.
    pub fast_window: SimDuration,
    /// Long burn-rate window: proves the problem is material.
    pub slow_window: SimDuration,
    /// Burn-rate threshold on the fast window.
    pub fast_burn: f64,
    /// Burn-rate threshold on the slow window.
    pub slow_burn: f64,
}

impl Default for SloConfig {
    /// Defaults tuned for the fault-matrix scenarios: a ~450 ms outage
    /// against a 99% availability target crosses both windows once and
    /// clears within about a second of recovery.
    fn default() -> Self {
        SloConfig {
            availability_target: 0.99,
            p99_target: SimDuration::from_millis(250),
            latency_target: 0.99,
            budget_window: SimDuration::from_secs(60),
            fast_window: SimDuration::from_secs(1),
            slow_window: SimDuration::from_secs(5),
            fast_burn: 10.0,
            slow_burn: 2.0,
        }
    }
}

/// An alert transition produced by [`SloEngine::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloEvent {
    /// Both burn-rate windows crossed their thresholds.
    Fired {
        /// `"availability"` or `"latency"`.
        objective: &'static str,
        /// Tick time of the transition.
        at: SimTime,
        /// Fast-window burn rate at fire time.
        fast_burn: f64,
        /// Slow-window burn rate at fire time.
        slow_burn: f64,
    },
    /// At least one window dropped back below its threshold.
    Cleared {
        /// `"availability"` or `"latency"`.
        objective: &'static str,
        /// Tick time of the transition.
        at: SimTime,
    },
}

impl SloEvent {
    /// The objective this event is about.
    pub fn objective(&self) -> &'static str {
        match self {
            SloEvent::Fired { objective, .. } | SloEvent::Cleared { objective, .. } => objective,
        }
    }

    /// Whether this is a fire (vs a clear).
    pub fn is_fired(&self) -> bool {
        matches!(self, SloEvent::Fired { .. })
    }
}

/// One interval's badness, per objective.
#[derive(Debug, Clone, Copy)]
struct Sample {
    /// End of the interval.
    at: SimTime,
    /// Interval length in microseconds.
    interval_us: u64,
    /// Fraction of the interval the service was down, 0..=1.
    avail_bad: f64,
    /// 1.0 when the p99 exceeded the bound during this interval.
    lat_bad: f64,
}

#[derive(Debug, Clone, Copy)]
struct Objective {
    name: &'static str,
    target: f64,
    firing: bool,
}

/// Point-in-time view of one objective, from [`SloEngine::status`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// `"availability"` or `"latency"`.
    pub objective: &'static str,
    /// The configured target.
    pub target: f64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Fraction of the error budget still unspent over the budget
    /// window; negative once over-spent.
    pub budget_remaining: f64,
    /// Whether the alert is currently firing.
    pub firing: bool,
}

/// The SLO engine: feed it ticks, read back alerts, burn rates and
/// remaining error budget.
#[derive(Debug)]
pub struct SloEngine {
    cfg: SloConfig,
    samples: VecDeque<Sample>,
    last_at: Option<SimTime>,
    last_downtime: SimDuration,
    objectives: [Objective; 2],
    fired_total: u64,
}

impl SloEngine {
    /// A fresh engine; the first tick only establishes the time origin.
    pub fn new(cfg: SloConfig) -> Self {
        SloEngine {
            objectives: [
                Objective {
                    name: "availability",
                    target: cfg.availability_target,
                    firing: false,
                },
                Objective {
                    name: "latency",
                    target: cfg.latency_target,
                    firing: false,
                },
            ],
            cfg,
            samples: VecDeque::new(),
            last_at: None,
            last_downtime: SimDuration::ZERO,
            fired_total: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Advances the engine to `now`.
    ///
    /// `downtime_cum` is the service's *cumulative* downtime (e.g.
    /// [`crate::AvailabilityReport::downtime`]); the engine diffs
    /// successive values itself. `p99` is the current p99 request
    /// latency when one is known (e.g. from a pulse window).
    ///
    /// Returns the alert transitions this tick produced, in objective
    /// order. Out-of-order or duplicate `now` values are ignored.
    pub fn tick(
        &mut self,
        now: SimTime,
        downtime_cum: SimDuration,
        p99: Option<SimDuration>,
    ) -> Vec<SloEvent> {
        let Some(last) = self.last_at else {
            self.last_at = Some(now);
            self.last_downtime = downtime_cum;
            return Vec::new();
        };
        if now <= last {
            return Vec::new();
        }
        let interval_us = now.since(last).as_micros();
        let down_us = downtime_cum
            .as_micros()
            .saturating_sub(self.last_downtime.as_micros());
        self.last_at = Some(now);
        self.last_downtime = downtime_cum;

        self.samples.push_back(Sample {
            at: now,
            interval_us,
            avail_bad: (down_us as f64 / interval_us as f64).min(1.0),
            lat_bad: match p99 {
                Some(p) if p > self.cfg.p99_target => 1.0,
                _ => 0.0,
            },
        });
        // keep exactly the history the widest window can see
        let horizon = self.cfg.budget_window.as_micros().max(
            self.cfg
                .slow_window
                .as_micros()
                .max(self.cfg.fast_window.as_micros()),
        );
        while let Some(front) = self.samples.front() {
            if now.since(front.at).as_micros() >= horizon {
                self.samples.pop_front();
            } else {
                break;
            }
        }

        let mut events = Vec::new();
        for idx in 0..self.objectives.len() {
            let obj = self.objectives[idx];
            let fast = self.burn_over(now, self.cfg.fast_window, obj);
            let slow = self.burn_over(now, self.cfg.slow_window, obj);
            // tolerance so a burn sitting exactly on the threshold counts
            // as hot despite float round-off in the window sums
            const EPS: f64 = 1e-9;
            let hot = fast >= self.cfg.fast_burn - EPS && slow >= self.cfg.slow_burn - EPS;
            if hot && !obj.firing {
                self.objectives[idx].firing = true;
                self.fired_total += 1;
                events.push(SloEvent::Fired {
                    objective: obj.name,
                    at: now,
                    fast_burn: fast,
                    slow_burn: slow,
                });
            } else if !hot && obj.firing {
                self.objectives[idx].firing = false;
                events.push(SloEvent::Cleared {
                    objective: obj.name,
                    at: now,
                });
            }
        }
        events
    }

    fn bad_fraction(sample: &Sample, obj: Objective) -> f64 {
        match obj.name {
            "availability" => sample.avail_bad,
            _ => sample.lat_bad,
        }
    }

    /// Burn rate for `obj` over the trailing `window` ending at `now`:
    /// mean bad-fraction divided by the allowed error rate `1 - target`.
    fn burn_over(&self, now: SimTime, window: SimDuration, obj: Objective) -> f64 {
        let window_us = window.as_micros().max(1);
        let mut bad_us = 0.0;
        for s in self.samples.iter().rev() {
            let age = now.since(s.at).as_micros();
            if age >= window_us {
                break;
            }
            // clip the sample's interval to the window edge
            let visible = s.interval_us.min(window_us - age) as f64;
            bad_us += Self::bad_fraction(s, obj) * visible;
        }
        let allowed = (1.0 - obj.target).max(f64::EPSILON);
        (bad_us / window_us as f64) / allowed
    }

    fn status_of(&self, now: SimTime, obj: Objective) -> SloStatus {
        let budget_us = self.cfg.budget_window.as_micros().max(1);
        let mut bad_us = 0.0;
        for s in self.samples.iter().rev() {
            let age = now.since(s.at).as_micros();
            if age >= budget_us {
                break;
            }
            let visible = s.interval_us.min(budget_us - age) as f64;
            bad_us += Self::bad_fraction(s, obj) * visible;
        }
        let allowed = (1.0 - obj.target).max(f64::EPSILON);
        SloStatus {
            objective: obj.name,
            target: obj.target,
            fast_burn: self.burn_over(now, self.cfg.fast_window, obj),
            slow_burn: self.burn_over(now, self.cfg.slow_window, obj),
            budget_remaining: 1.0 - bad_us / (budget_us as f64 * allowed),
            firing: obj.firing,
        }
    }

    /// Point-in-time status of every objective, at the last tick.
    pub fn status(&self) -> Vec<SloStatus> {
        let now = self.last_at.unwrap_or(SimTime::ZERO);
        self.objectives
            .iter()
            .map(|&o| self.status_of(now, o))
            .collect()
    }

    /// Whether any objective's alert is currently firing.
    pub fn any_firing(&self) -> bool {
        self.objectives.iter().any(|o| o.firing)
    }

    /// Whether any objective's error budget is exhausted (remaining ≤ 0).
    pub fn any_budget_exhausted(&self) -> bool {
        self.status().iter().any(|s| s.budget_remaining <= 0.0)
    }

    /// Total fire transitions since creation.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    /// Ticks every 50 ms; downtime accumulates inside `[down_from, down_to)`.
    fn drive(
        slo: &mut SloEngine,
        from_ms: u64,
        to_ms: u64,
        down_from: u64,
        down_to: u64,
    ) -> Vec<SloEvent> {
        let mut events = Vec::new();
        let mut ms = from_ms;
        while ms <= to_ms {
            let down_ms = down_to
                .min(ms)
                .saturating_sub(down_from.min(down_to.min(ms)));
            events.extend(slo.tick(t(ms), d(down_ms), None));
            ms += 50;
        }
        events
    }

    #[test]
    fn outage_fires_exactly_once_and_clears_after_fast_window_drains() {
        let mut slo = SloEngine::new(SloConfig::default());
        // 1 s healthy, 450 ms outage, then healthy again
        let mut events = drive(&mut slo, 0, 1000, u64::MAX, u64::MAX);
        events.extend(drive(&mut slo, 1050, 4000, 1000, 1450));
        let fired: Vec<_> = events.iter().filter(|e| e.is_fired()).collect();
        assert_eq!(fired.len(), 1, "one outage, one alert: {events:?}");
        // fast/slow thresholds 10x/2x both equal 100 ms of downtime, so the
        // alert fires on the tick where 100 ms has accumulated: t=1100.
        assert!(
            matches!(fired[0], SloEvent::Fired { objective: "availability", at, .. } if *at == t(1100)),
            "{fired:?}"
        );
        // ...and clears on the first tick where the fast window holds less
        // than 100 ms of the outage: the last bad sample ends at 1450, so
        // at t=2400 only 50 ms remains in view.
        let cleared: Vec<_> = events.iter().filter(|e| !e.is_fired()).collect();
        assert_eq!(cleared.len(), 1);
        assert!(
            matches!(cleared[0], SloEvent::Cleared { objective: "availability", at } if *at == t(2400)),
            "{cleared:?}"
        );
        assert_eq!(slo.fired_total(), 1);
        assert!(!slo.any_firing());
    }

    #[test]
    fn two_separated_outages_fire_twice() {
        let mut slo = SloEngine::new(SloConfig::default());
        let mut events = drive(&mut slo, 0, 1000, u64::MAX, u64::MAX);
        events.extend(drive(&mut slo, 1050, 4000, 1000, 1450));
        // second outage after the first alert cleared
        let mut ms = 4050u64;
        while ms <= 8000 {
            let down = 450 + 4500u64.min(ms).saturating_sub(4000u64.min(ms));
            events.extend(slo.tick(t(ms), d(down), None));
            ms += 50;
        }
        assert_eq!(events.iter().filter(|e| e.is_fired()).count(), 2);
        assert_eq!(events.iter().filter(|e| !e.is_fired()).count(), 2);
    }

    #[test]
    fn budget_remaining_is_exact() {
        let cfg = SloConfig::default();
        let mut slo = SloEngine::new(cfg);
        drive(&mut slo, 0, 1000, u64::MAX, u64::MAX);
        drive(&mut slo, 1050, 2000, 1000, 1300);
        // 300 ms bad in a 60 s budget window at 1% allowed:
        // budget = 60_000 ms * 0.01 = 600 ms; spent 300 → 50% left
        let avail = &slo.status()[0];
        assert_eq!(avail.objective, "availability");
        assert!(
            (avail.budget_remaining - 0.5).abs() < 1e-9,
            "{}",
            avail.budget_remaining
        );
        assert!(!slo.any_budget_exhausted());
        // a further 700 ms outage blows past the 600 ms budget
        let mut ms = 2050u64;
        while ms <= 3000 {
            let down = 300 + 2700u64.min(ms).saturating_sub(2000);
            slo.tick(t(ms), d(down), None);
            ms += 50;
        }
        assert!(slo.any_budget_exhausted());
    }

    #[test]
    fn latency_objective_fires_on_sustained_slow_p99() {
        let mut slo = SloEngine::new(SloConfig::default());
        let mut events = Vec::new();
        for ms in (0..=1000).step_by(50) {
            events.extend(slo.tick(t(ms), SimDuration::ZERO, Some(d(10))));
        }
        assert!(events.is_empty());
        for ms in (1050..=2000).step_by(50) {
            events.extend(slo.tick(t(ms), SimDuration::ZERO, Some(d(400))));
        }
        let fired: Vec<_> = events.iter().filter(|e| e.is_fired()).collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].objective(), "latency");
        // p99 recovers: the alert clears
        for ms in (2050..=4000).step_by(50) {
            events.extend(slo.tick(t(ms), SimDuration::ZERO, Some(d(10))));
        }
        assert!(events.iter().any(|e| !e.is_fired()));
        assert!(!slo.any_firing());
    }

    #[test]
    fn short_blip_does_not_fire() {
        let mut slo = SloEngine::new(SloConfig::default());
        // 50 ms of downtime: under the 100 ms the thresholds demand
        let mut events = drive(&mut slo, 0, 1000, u64::MAX, u64::MAX);
        events.extend(drive(&mut slo, 1050, 3000, 1000, 1050));
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn duplicate_and_backward_ticks_are_ignored() {
        let mut slo = SloEngine::new(SloConfig::default());
        slo.tick(t(100), SimDuration::ZERO, None);
        slo.tick(t(200), SimDuration::ZERO, None);
        assert!(slo.tick(t(200), d(1000), None).is_empty());
        assert!(slo.tick(t(150), d(1000), None).is_empty());
    }
}
