//! A minimal JSON value model, writer helpers, and parser.
//!
//! The export format only needs objects, arrays, strings, integers, `null`
//! and booleans — no floats — so a small hand-rolled parser keeps the crate
//! dependency-free while still round-tripping losslessly.

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    #[allow(dead_code)]
    Bool(bool),
    U64(u64),
    I64(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // the slice between escapes is valid UTF-8 because the input is
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.eat_literal("\\u") {
                                    return Err("lone high surrogate".into());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err("floating-point numbers are not supported".into());
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if negative {
            s.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| format!("bad number '{s}'"))
        } else {
            s.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| format!("bad number '{s}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_export_shapes() {
        let v =
            parse(r#"{"type":"span","parent":null,"attrs":[["k","v"],["n",3]],"neg":-7}"#).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("parent"), Some(&Value::Null));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
        let attrs = v.get("attrs").unwrap().as_arr().unwrap();
        assert_eq!(attrs[1].as_arr().unwrap()[1].as_u64(), Some(3));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "quote \" back \\ slash",
            "tab\tnl\nctl\u{1}",
            "uni é 語 λ",
        ] {
            let mut line = String::new();
            write_str(&mut line, s);
            assert_eq!(parse(&line).unwrap().as_str(), Some(s), "for {s:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        // escaped surrogate pair: 😀 is U+1F600
        let escaped = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped).unwrap().as_str(), Some("\u{1F600}"));
        // raw (unescaped) UTF-8 also passes through
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }
}
