//! Always-on per-node flight recorder and cross-node incident
//! reconstruction.
//!
//! Every node keeps a cheap, bounded [`FlightRing`] of structured
//! [`FlightEvent`]s — message sends/receives with wire kind and
//! correlation id, election transitions, bind/re-bind decisions,
//! heartbeat misses and restores, injected faults, queue-depth
//! high-water marks, SLO alerts. Each event is stamped with the node's
//! local time *and* a Lamport clock that rides beside every message on
//! the wire, so a collector can later fuse the rings of all nodes into
//! one causally-ordered incident timeline without synchronized clocks.
//!
//! The ring is a single-writer structure behind one mutex
//! ([`FlightHandle`]), byte-budgeted with drop-oldest semantics: the
//! recorder is always on and can never grow memory without bound, which
//! is what makes it safe to leave running in benchmarks.
//!
//! [`IncidentTimeline::merge`] is the collector side: it takes the
//! per-node dumps and sorts by `(lamport, node, seq)`. Because a
//! receive always carries a Lamport stamp strictly greater than its
//! send, happens-before edges survive the merge — verified by
//! [`IncidentTimeline::causally_consistent`].
//!
//! # Example
//!
//! ```
//! use whisper_obs::flight::{FlightHandle, IncidentTimeline};
//! use whisper_simnet::{FlightHook, NodeId, SimTime};
//!
//! let a = FlightHandle::new(0, 4096);
//! let b = FlightHandle::new(1, 4096);
//! let t = SimTime::from_micros(10);
//! // node 0 sends; the substrate carries the returned clock to node 1
//! let clock = a.clone().on_send_msg(t, NodeId::from_index(1), "ping", 64, None);
//! b.clone()
//!     .on_recv_msg(t, NodeId::from_index(0), "ping", 64, None, clock);
//! let timeline = IncidentTimeline::merge([a.snapshot(), b.snapshot()]);
//! assert!(timeline.causally_consistent());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use whisper_simnet::{FlightHook, NodeId, SimTime};
use whisper_wire::{Decode, Encode, Reader, WireError};

use crate::json;
use crate::ledger::AvailabilityLedger;

/// Default per-node ring budget: enough for a few thousand events, small
/// enough to leave always-on in benches.
pub const DEFAULT_RING_BYTES: usize = 128 * 1024;

/// What happened, as recorded by one node's flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A message left this node.
    MsgSend {
        /// Destination node id.
        to: u64,
        /// Wire kind label (`Wire::kind`).
        kind: String,
        /// Encoded size in bytes.
        bytes: u64,
        /// Request/correlation id carried by the message, if any.
        correlation: Option<u64>,
    },
    /// A message was delivered to this node.
    MsgRecv {
        /// Source node id.
        from: u64,
        /// Wire kind label.
        kind: String,
        /// Encoded size in bytes.
        bytes: u64,
        /// Request/correlation id carried by the message, if any.
        correlation: Option<u64>,
        /// The Lamport stamp the *sender* put on the message; pairs this
        /// receive with its send during causal verification.
        sent_clock: u64,
    },
    /// An election-state transition observed by this node.
    Election {
        /// Election term/round.
        term: u64,
        /// Coordinator now believed in, when one is known.
        coordinator: Option<u64>,
        /// Short transition label, e.g. `"started"`, `"elected"`.
        detail: String,
    },
    /// A proxy bind or re-bind decision.
    Bind {
        /// The service group being bound.
        group: String,
        /// The peer bound to.
        peer: u64,
        /// Whether this replaced an earlier binding.
        rebind: bool,
    },
    /// A peer's heartbeat went missing past the suspicion threshold.
    HeartbeatMiss {
        /// The suspected peer.
        peer: u64,
        /// When that peer was last heard from.
        last_seen: SimTime,
    },
    /// A suspected peer was heard from again.
    HeartbeatRestore {
        /// The restored peer.
        peer: u64,
    },
    /// A fault was injected on this node (or one of its links).
    Fault {
        /// Action label, e.g. `"kill 2"`, `"block 0 3"`.
        action: String,
    },
    /// The node's inbound queue reached a new high-water mark.
    QueueDepth {
        /// The new high-water depth.
        depth: u64,
    },
    /// An SLO alert fired or cleared.
    Alert {
        /// Objective name, e.g. `"availability"`.
        name: String,
        /// `true` on fire, `false` on clear.
        firing: bool,
    },
}

impl FlightEventKind {
    const TAG_MSG_SEND: u8 = 0;
    const TAG_MSG_RECV: u8 = 1;
    const TAG_ELECTION: u8 = 2;
    const TAG_BIND: u8 = 3;
    const TAG_HB_MISS: u8 = 4;
    const TAG_HB_RESTORE: u8 = 5;
    const TAG_FAULT: u8 = 6;
    const TAG_QUEUE_DEPTH: u8 = 7;
    const TAG_ALERT: u8 = 8;

    /// Short label for rendering and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            FlightEventKind::MsgSend { .. } => "msg_send",
            FlightEventKind::MsgRecv { .. } => "msg_recv",
            FlightEventKind::Election { .. } => "election",
            FlightEventKind::Bind { .. } => "bind",
            FlightEventKind::HeartbeatMiss { .. } => "heartbeat_miss",
            FlightEventKind::HeartbeatRestore { .. } => "heartbeat_restore",
            FlightEventKind::Fault { .. } => "fault",
            FlightEventKind::QueueDepth { .. } => "queue_depth",
            FlightEventKind::Alert { .. } => "alert",
        }
    }
}

impl Encode for FlightEventKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            FlightEventKind::MsgSend {
                to,
                kind,
                bytes,
                correlation,
            } => {
                out.push(Self::TAG_MSG_SEND);
                to.encode_into(out);
                kind.encode_into(out);
                bytes.encode_into(out);
                correlation.encode_into(out);
            }
            FlightEventKind::MsgRecv {
                from,
                kind,
                bytes,
                correlation,
                sent_clock,
            } => {
                out.push(Self::TAG_MSG_RECV);
                from.encode_into(out);
                kind.encode_into(out);
                bytes.encode_into(out);
                correlation.encode_into(out);
                sent_clock.encode_into(out);
            }
            FlightEventKind::Election {
                term,
                coordinator,
                detail,
            } => {
                out.push(Self::TAG_ELECTION);
                term.encode_into(out);
                coordinator.encode_into(out);
                detail.encode_into(out);
            }
            FlightEventKind::Bind {
                group,
                peer,
                rebind,
            } => {
                out.push(Self::TAG_BIND);
                group.encode_into(out);
                peer.encode_into(out);
                rebind.encode_into(out);
            }
            FlightEventKind::HeartbeatMiss { peer, last_seen } => {
                out.push(Self::TAG_HB_MISS);
                peer.encode_into(out);
                last_seen.encode_into(out);
            }
            FlightEventKind::HeartbeatRestore { peer } => {
                out.push(Self::TAG_HB_RESTORE);
                peer.encode_into(out);
            }
            FlightEventKind::Fault { action } => {
                out.push(Self::TAG_FAULT);
                action.encode_into(out);
            }
            FlightEventKind::QueueDepth { depth } => {
                out.push(Self::TAG_QUEUE_DEPTH);
                depth.encode_into(out);
            }
            FlightEventKind::Alert { name, firing } => {
                out.push(Self::TAG_ALERT);
                name.encode_into(out);
                firing.encode_into(out);
            }
        }
    }
}

impl Decode for FlightEventKind {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            Self::TAG_MSG_SEND => Ok(FlightEventKind::MsgSend {
                to: u64::decode_from(r)?,
                kind: String::decode_from(r)?,
                bytes: u64::decode_from(r)?,
                correlation: Option::decode_from(r)?,
            }),
            Self::TAG_MSG_RECV => Ok(FlightEventKind::MsgRecv {
                from: u64::decode_from(r)?,
                kind: String::decode_from(r)?,
                bytes: u64::decode_from(r)?,
                correlation: Option::decode_from(r)?,
                sent_clock: u64::decode_from(r)?,
            }),
            Self::TAG_ELECTION => Ok(FlightEventKind::Election {
                term: u64::decode_from(r)?,
                coordinator: Option::decode_from(r)?,
                detail: String::decode_from(r)?,
            }),
            Self::TAG_BIND => Ok(FlightEventKind::Bind {
                group: String::decode_from(r)?,
                peer: u64::decode_from(r)?,
                rebind: bool::decode_from(r)?,
            }),
            Self::TAG_HB_MISS => Ok(FlightEventKind::HeartbeatMiss {
                peer: u64::decode_from(r)?,
                last_seen: SimTime::decode_from(r)?,
            }),
            Self::TAG_HB_RESTORE => Ok(FlightEventKind::HeartbeatRestore {
                peer: u64::decode_from(r)?,
            }),
            Self::TAG_FAULT => Ok(FlightEventKind::Fault {
                action: String::decode_from(r)?,
            }),
            Self::TAG_QUEUE_DEPTH => Ok(FlightEventKind::QueueDepth {
                depth: u64::decode_from(r)?,
            }),
            Self::TAG_ALERT => Ok(FlightEventKind::Alert {
                name: String::decode_from(r)?,
                firing: bool::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "FlightEventKind",
                tag,
            }),
        }
    }
}

impl fmt::Display for FlightEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlightEventKind::MsgSend {
                to,
                kind,
                bytes,
                correlation,
            } => {
                write!(f, "send {kind} -> n{to} ({bytes}B")?;
                if let Some(c) = correlation {
                    write!(f, ", req {c}")?;
                }
                write!(f, ")")
            }
            FlightEventKind::MsgRecv {
                from,
                kind,
                bytes,
                correlation,
                ..
            } => {
                write!(f, "recv {kind} <- n{from} ({bytes}B")?;
                if let Some(c) = correlation {
                    write!(f, ", req {c}")?;
                }
                write!(f, ")")
            }
            FlightEventKind::Election {
                term,
                coordinator,
                detail,
            } => match coordinator {
                Some(c) => write!(f, "election {detail} (term {term}, coordinator n{c})"),
                None => write!(f, "election {detail} (term {term})"),
            },
            FlightEventKind::Bind {
                group,
                peer,
                rebind,
            } => {
                let verb = if *rebind { "re-bind" } else { "bind" };
                write!(f, "{verb} {group} -> n{peer}")
            }
            FlightEventKind::HeartbeatMiss { peer, last_seen } => {
                write!(f, "heartbeat miss n{peer} (last seen {last_seen})")
            }
            FlightEventKind::HeartbeatRestore { peer } => {
                write!(f, "heartbeat restore n{peer}")
            }
            FlightEventKind::Fault { action } => write!(f, "fault: {action}"),
            FlightEventKind::QueueDepth { depth } => {
                write!(f, "queue depth high-water {depth}")
            }
            FlightEventKind::Alert { name, firing } => {
                let verb = if *firing { "FIRED" } else { "cleared" };
                write!(f, "slo alert {name} {verb}")
            }
        }
    }
}

/// One entry in a node's flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Per-node monotone sequence number (survives ring eviction, so gaps
    /// reveal how much history was dropped).
    pub seq: u64,
    /// Lamport stamp: totally orders this node's events and embeds
    /// happens-before edges across nodes.
    pub lamport: u64,
    /// Local time of the recording node (sim time or wall time since the
    /// run epoch, depending on substrate).
    pub at: SimTime,
    /// The recording node.
    pub node: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

impl Encode for FlightEvent {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seq.encode_into(out);
        self.lamport.encode_into(out);
        self.at.encode_into(out);
        self.node.encode_into(out);
        self.kind.encode_into(out);
    }
}

impl Decode for FlightEvent {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FlightEvent {
            seq: u64::decode_from(r)?,
            lamport: u64::decode_from(r)?,
            at: SimTime::decode_from(r)?,
            node: u64::decode_from(r)?,
            kind: FlightEventKind::decode_from(r)?,
        })
    }
}

/// A bounded, single-writer ring of [`FlightEvent`]s for one node.
///
/// The budget is counted in *encoded* bytes (exactly what a
/// `FlightDump` of the ring would put on the wire), and enforcement is
/// drop-oldest: the newest event always fits, older history gives way.
#[derive(Debug)]
pub struct FlightRing {
    node: u64,
    max_bytes: usize,
    events: VecDeque<FlightEvent>,
    bytes: usize,
    lamport: u64,
    next_seq: u64,
    dropped: u64,
    queue_hwm: u64,
}

impl FlightRing {
    /// Creates an empty ring for `node` bounded to `max_bytes` of encoded
    /// events.
    pub fn new(node: u64, max_bytes: usize) -> Self {
        FlightRing {
            node,
            max_bytes,
            events: VecDeque::new(),
            bytes: 0,
            lamport: 0,
            next_seq: 0,
            dropped: 0,
            queue_hwm: 0,
        }
    }

    /// Records a local (non-message) event, advancing the Lamport clock.
    pub fn record(&mut self, at: SimTime, kind: FlightEventKind) {
        self.lamport += 1;
        self.push(at, kind);
    }

    /// Records a message send and returns the Lamport stamp to carry on
    /// the wire.
    pub fn record_send(
        &mut self,
        at: SimTime,
        to: u64,
        kind: &str,
        bytes: usize,
        correlation: Option<u64>,
    ) -> u64 {
        self.lamport += 1;
        let stamp = self.lamport;
        self.push(
            at,
            FlightEventKind::MsgSend {
                to,
                kind: kind.to_string(),
                bytes: bytes as u64,
                correlation,
            },
        );
        stamp
    }

    /// Records a message delivery, merging the sender's Lamport stamp.
    #[allow(clippy::too_many_arguments)]
    pub fn record_recv(
        &mut self,
        at: SimTime,
        from: u64,
        kind: &str,
        bytes: usize,
        correlation: Option<u64>,
        sent_clock: u64,
    ) {
        self.lamport = self.lamport.max(sent_clock) + 1;
        self.push(
            at,
            FlightEventKind::MsgRecv {
                from,
                kind: kind.to_string(),
                bytes: bytes as u64,
                correlation,
                sent_clock,
            },
        );
    }

    /// Records the inbound queue depth; only new high-water marks produce
    /// an event, so a busy node does not flood its own ring.
    pub fn record_queue_depth(&mut self, at: SimTime, depth: u64) {
        if depth > self.queue_hwm {
            self.queue_hwm = depth;
            self.record(at, FlightEventKind::QueueDepth { depth });
        }
    }

    fn push(&mut self, at: SimTime, kind: FlightEventKind) {
        let ev = FlightEvent {
            seq: self.next_seq,
            lamport: self.lamport,
            at,
            node: self.node,
            kind,
        };
        self.next_seq += 1;
        self.bytes += ev.encoded_len();
        self.events.push_back(ev);
        while self.bytes > self.max_bytes && self.events.len() > 1 {
            let old = self.events.pop_front().expect("len > 1");
            self.bytes -= old.encoded_len();
            self.dropped += 1;
        }
    }

    /// The node this ring records for.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Current Lamport clock value.
    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the byte budget since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Encoded bytes currently retained.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }
}

/// A cloneable handle to one node's [`FlightRing`].
///
/// The handle implements [`whisper_simnet::FlightHook`], so it can be
/// installed into any substrate via `Spawner::set_flight_hook`, and it
/// exposes the actor-facing note helpers (elections, binds, heartbeats,
/// alerts) so protocol code records into the same causally-stamped ring
/// the transport does.
#[derive(Debug, Clone)]
pub struct FlightHandle {
    ring: Arc<Mutex<FlightRing>>,
}

impl FlightHandle {
    /// Creates a handle over a fresh ring for `node` with `max_bytes`
    /// budget.
    pub fn new(node: u64, max_bytes: usize) -> Self {
        FlightHandle {
            ring: Arc::new(Mutex::new(FlightRing::new(node, max_bytes))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRing> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records an election transition.
    pub fn note_election(
        &self,
        at: SimTime,
        term: u64,
        coordinator: Option<u64>,
        detail: impl Into<String>,
    ) {
        self.lock().record(
            at,
            FlightEventKind::Election {
                term,
                coordinator,
                detail: detail.into(),
            },
        );
    }

    /// Records a bind or re-bind decision.
    pub fn note_bind(&self, at: SimTime, group: impl Into<String>, peer: u64, rebind: bool) {
        self.lock().record(
            at,
            FlightEventKind::Bind {
                group: group.into(),
                peer,
                rebind,
            },
        );
    }

    /// Records a heartbeat miss.
    pub fn note_heartbeat_miss(&self, at: SimTime, peer: u64, last_seen: SimTime) {
        self.lock()
            .record(at, FlightEventKind::HeartbeatMiss { peer, last_seen });
    }

    /// Records a heartbeat restore.
    pub fn note_heartbeat_restore(&self, at: SimTime, peer: u64) {
        self.lock()
            .record(at, FlightEventKind::HeartbeatRestore { peer });
    }

    /// Records the inbound queue depth (high-water marks only).
    pub fn note_queue_depth(&self, at: SimTime, depth: u64) {
        self.lock().record_queue_depth(at, depth);
    }

    /// Records an SLO alert transition.
    pub fn note_alert(&self, at: SimTime, name: impl Into<String>, firing: bool) {
        self.lock().record(
            at,
            FlightEventKind::Alert {
                name: name.into(),
                firing,
            },
        );
    }

    /// The node this handle records for.
    pub fn node(&self) -> u64 {
        self.lock().node()
    }

    /// Events evicted by the byte budget.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.lock().snapshot()
    }
}

impl FlightHook for FlightHandle {
    fn on_send_msg(
        &mut self,
        now: SimTime,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
    ) -> u64 {
        self.lock()
            .record_send(now, to.index() as u64, kind, bytes, correlation)
    }

    fn on_recv_msg(
        &mut self,
        now: SimTime,
        from: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
        clock: u64,
    ) {
        self.lock()
            .record_recv(now, from.index() as u64, kind, bytes, correlation, clock);
    }

    fn on_fault(&mut self, now: SimTime, action: &str) {
        self.lock().record(
            now,
            FlightEventKind::Fault {
                action: action.to_string(),
            },
        );
    }
}

/// The set of flight handles of one deployment, in node-id order.
///
/// This is the in-process capture path: snapshot every ring at once and
/// merge. (The wire path — `FlightDump` solicitation messages — covers
/// remote collectors.)
#[derive(Debug, Clone, Default)]
pub struct FlightPlane {
    handles: Vec<FlightHandle>,
}

impl FlightPlane {
    /// An empty plane.
    pub fn new() -> Self {
        FlightPlane::default()
    }

    /// Adds a node's handle.
    pub fn push(&mut self, handle: FlightHandle) {
        self.handles.push(handle);
    }

    /// The installed handles.
    pub fn handles(&self) -> &[FlightHandle] {
        &self.handles
    }

    /// Handle for a specific node id, when installed.
    pub fn handle(&self, node: u64) -> Option<&FlightHandle> {
        self.handles.iter().find(|h| h.node() == node)
    }

    /// Snapshots every ring and merges into one causal timeline.
    pub fn capture(&self) -> IncidentTimeline {
        IncidentTimeline::merge(self.handles.iter().map(FlightHandle::snapshot))
    }
}

/// A merged, causally-ordered view over the flight rings of many nodes.
#[derive(Debug, Clone)]
pub struct IncidentTimeline {
    events: Vec<FlightEvent>,
}

impl IncidentTimeline {
    /// Fuses per-node dumps into one timeline ordered by
    /// `(lamport, node, seq)`.
    ///
    /// Lamport order embeds every happens-before edge (a receive's stamp
    /// is strictly greater than its send's); concurrent events tie-break
    /// deterministically by node id, then per-node sequence.
    pub fn merge(dumps: impl IntoIterator<Item = Vec<FlightEvent>>) -> Self {
        let mut events: Vec<FlightEvent> = dumps.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.lamport, e.node, e.seq));
        IncidentTimeline { events }
    }

    /// The merged events, in causal order.
    pub fn events(&self) -> &[FlightEvent] {
        &self.events
    }

    /// Whether every receive appears *after* its matching send.
    ///
    /// A receive matches the send event recorded on the `from` node with
    /// Lamport stamp `sent_clock`. Receives with stamp 0 came from a node
    /// without a recorder (or an old frame) and are exempt.
    pub fn causally_consistent(&self) -> bool {
        self.events.iter().enumerate().all(|(i, ev)| {
            let FlightEventKind::MsgRecv {
                from, sent_clock, ..
            } = &ev.kind
            else {
                return true;
            };
            if *sent_clock == 0 {
                return true;
            }
            self.events[..i].iter().any(|s| {
                s.node == *from
                    && s.lamport == *sent_clock
                    && matches!(s.kind, FlightEventKind::MsgSend { .. })
            })
        })
    }

    /// Positions of events matching a predicate, in causal order.
    pub fn positions(&self, mut pred: impl FnMut(&FlightEvent) -> bool) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| pred(e).then_some(i))
            .collect()
    }

    /// Renders the annotated post-mortem report: the
    /// [`AvailabilityLedger`]'s outage story first, then the merged
    /// message-level evidence with events that fall inside a recorded
    /// outage window marked in the margin.
    pub fn render_report(&self, ledger: &AvailabilityLedger, now: SimTime) -> String {
        let mut out = String::new();
        out.push_str("== incident report ==\n");

        // -- the ledger's outage story --------------------------------
        let mut outages: Vec<(u64, SimTime, Option<SimTime>)> = Vec::new();
        out.push_str("\n-- outage story (availability ledger) --\n");
        for service in ledger.services() {
            if let Some(rep) = ledger.service_report(service, now) {
                out.push_str(&format!(
                    "service {service}: availability {:.4}%  failures {}  mttr {}\n",
                    rep.availability * 100.0,
                    rep.failures,
                    rep.mttr
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                ));
            }
        }
        for peer in ledger.peers() {
            let Some(rep) = ledger.peer_report(peer, now) else {
                continue;
            };
            for iv in &rep.downtime_intervals {
                outages.push((peer, iv.start, iv.end));
                out.push_str(&format!(
                    "peer n{peer} down: {} .. {}  (detected {}, outage {})\n",
                    iv.start,
                    iv.end
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "ongoing".into()),
                    iv.detected_at,
                    iv.duration()
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "ongoing".into()),
                ));
            }
        }
        if outages.is_empty() {
            out.push_str("no outages recorded\n");
        }

        // -- message-level evidence -----------------------------------
        out.push_str("\n-- causal timeline (lamport order) --\n");
        for ev in &self.events {
            let in_outage = outages
                .iter()
                .any(|&(_, start, end)| ev.at >= start && end.map(|e| ev.at <= e).unwrap_or(true));
            let marker = if in_outage { "!" } else { " " };
            out.push_str(&format!(
                "{marker} [{:>6}] {:>12}  n{}  {}\n",
                ev.lamport,
                ev.at.to_string(),
                ev.node,
                ev.kind
            ));
        }
        out
    }

    /// The merged timeline as JSON-lines, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"seq\":{},\"lamport\":{},\"at_us\":{},\"node\":{},\"event\":",
                ev.seq,
                ev.lamport,
                ev.at.as_micros(),
                ev.node
            ));
            json::write_str(&mut out, ev.kind.label());
            match &ev.kind {
                FlightEventKind::MsgSend {
                    to,
                    kind,
                    bytes,
                    correlation,
                } => {
                    out.push_str(&format!(",\"to\":{to},\"kind\":"));
                    json::write_str(&mut out, kind);
                    out.push_str(&format!(",\"bytes\":{bytes}"));
                    if let Some(c) = correlation {
                        out.push_str(&format!(",\"correlation\":{c}"));
                    }
                }
                FlightEventKind::MsgRecv {
                    from,
                    kind,
                    bytes,
                    correlation,
                    sent_clock,
                } => {
                    out.push_str(&format!(",\"from\":{from},\"kind\":"));
                    json::write_str(&mut out, kind);
                    out.push_str(&format!(",\"bytes\":{bytes},\"sent_clock\":{sent_clock}"));
                    if let Some(c) = correlation {
                        out.push_str(&format!(",\"correlation\":{c}"));
                    }
                }
                FlightEventKind::Election {
                    term,
                    coordinator,
                    detail,
                } => {
                    out.push_str(&format!(",\"term\":{term}"));
                    if let Some(c) = coordinator {
                        out.push_str(&format!(",\"coordinator\":{c}"));
                    }
                    out.push_str(",\"detail\":");
                    json::write_str(&mut out, detail);
                }
                FlightEventKind::Bind {
                    group,
                    peer,
                    rebind,
                } => {
                    out.push_str(",\"group\":");
                    json::write_str(&mut out, group);
                    out.push_str(&format!(",\"peer\":{peer},\"rebind\":{rebind}"));
                }
                FlightEventKind::HeartbeatMiss { peer, last_seen } => {
                    out.push_str(&format!(
                        ",\"peer\":{peer},\"last_seen_us\":{}",
                        last_seen.as_micros()
                    ));
                }
                FlightEventKind::HeartbeatRestore { peer } => {
                    out.push_str(&format!(",\"peer\":{peer}"));
                }
                FlightEventKind::Fault { action } => {
                    out.push_str(",\"action\":");
                    json::write_str(&mut out, action);
                }
                FlightEventKind::QueueDepth { depth } => {
                    out.push_str(&format!(",\"depth\":{depth}"));
                }
                FlightEventKind::Alert { name, firing } => {
                    out.push_str(",\"name\":");
                    json::write_str(&mut out, name);
                    out.push_str(&format!(",\"firing\":{firing}"));
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn one_of_each() -> Vec<FlightEventKind> {
        vec![
            FlightEventKind::MsgSend {
                to: 3,
                kind: "invoke".into(),
                bytes: 412,
                correlation: Some(7),
            },
            FlightEventKind::MsgRecv {
                from: 1,
                kind: "invoke".into(),
                bytes: 412,
                correlation: None,
                sent_clock: 41,
            },
            FlightEventKind::Election {
                term: 2,
                coordinator: Some(4),
                detail: "elected".into(),
            },
            FlightEventKind::Bind {
                group: "translate".into(),
                peer: 4,
                rebind: true,
            },
            FlightEventKind::HeartbeatMiss {
                peer: 2,
                last_seen: t(900),
            },
            FlightEventKind::HeartbeatRestore { peer: 2 },
            FlightEventKind::Fault {
                action: "kill 2".into(),
            },
            FlightEventKind::QueueDepth { depth: 17 },
            FlightEventKind::Alert {
                name: "availability".into(),
                firing: true,
            },
        ]
    }

    #[test]
    fn event_kinds_round_trip() {
        for kind in one_of_each() {
            let ev = FlightEvent {
                seq: 5,
                lamport: 9,
                at: t(1234),
                node: 2,
                kind,
            };
            let bytes = ev.encode();
            assert_eq!(ev.encoded_len(), bytes.len());
            assert_eq!(FlightEvent::decode(&bytes).unwrap(), ev);
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut ev = FlightEvent {
            seq: 0,
            lamport: 1,
            at: t(0),
            node: 0,
            kind: FlightEventKind::QueueDepth { depth: 1 },
        }
        .encode();
        // the kind tag is the 5th varint in; for these small values each
        // header field is one byte, so the tag sits at offset 4
        ev[4] = 0xEE;
        assert!(matches!(
            FlightEvent::decode(&ev),
            Err(WireError::BadTag {
                what: "FlightEventKind",
                ..
            })
        ));
    }

    #[test]
    fn ring_budget_drops_oldest_and_keeps_seq() {
        let mut ring = FlightRing::new(0, 128);
        for i in 0..100 {
            ring.record(t(i), FlightEventKind::QueueDepth { depth: 1000 + i });
        }
        assert!(ring.approx_bytes() <= 128);
        assert!(ring.dropped() > 0);
        assert_eq!(ring.dropped() as usize + ring.len(), 100);
        // byte accounting stays exact under eviction
        let expected: usize = ring.events().map(Encode::encoded_len).sum();
        assert_eq!(ring.approx_bytes(), expected);
        // the survivors are the newest, in order
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(seqs.last().copied(), Some(99));
    }

    #[test]
    fn lamport_merges_on_recv() {
        let mut ring = FlightRing::new(0, 4096);
        let s1 = ring.record_send(t(0), 1, "ping", 10, None);
        assert_eq!(s1, 1);
        // a message arrives from a node far ahead of us
        ring.record_recv(t(5), 1, "pong", 10, None, 40);
        assert_eq!(ring.lamport(), 41);
        let s2 = ring.record_send(t(6), 1, "ping", 10, None);
        assert_eq!(s2, 42);
    }

    #[test]
    fn queue_depth_records_high_water_only() {
        let mut ring = FlightRing::new(0, 4096);
        ring.record_queue_depth(t(0), 3);
        ring.record_queue_depth(t(1), 2);
        ring.record_queue_depth(t(2), 3);
        ring.record_queue_depth(t(3), 5);
        let depths: Vec<u64> = ring
            .events()
            .filter_map(|e| match e.kind {
                FlightEventKind::QueueDepth { depth } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![3, 5]);
    }

    #[test]
    fn merge_orders_causally_and_verifies() {
        let a = FlightHandle::new(0, 4096);
        let b = FlightHandle::new(1, 4096);
        // node 1 does local work first: its raw clock runs ahead
        for i in 0..5 {
            b.note_queue_depth(t(i), i + 1);
        }
        let clock = {
            let mut h = a.clone();
            h.on_send_msg(t(10), NodeId::from_index(1), "invoke", 64, Some(9))
        };
        {
            let mut h = b.clone();
            h.on_recv_msg(t(12), NodeId::from_index(0), "invoke", 64, Some(9), clock);
        }
        let timeline = IncidentTimeline::merge([a.snapshot(), b.snapshot()]);
        assert!(timeline.causally_consistent());
        let send_pos = timeline.positions(|e| matches!(e.kind, FlightEventKind::MsgSend { .. }));
        let recv_pos = timeline.positions(|e| matches!(e.kind, FlightEventKind::MsgRecv { .. }));
        assert!(send_pos[0] < recv_pos[0]);
    }

    #[test]
    fn report_interleaves_ledger_outages() {
        let ledger = AvailabilityLedger::new();
        ledger.peer_heartbeat(2, t(0));
        ledger.peer_down(2, t(100), t(150));
        ledger.peer_heartbeat(2, t(500));

        let h = FlightHandle::new(0, 4096);
        let mut hook = h.clone();
        hook.on_fault(t(120), "kill 2");
        h.note_heartbeat_miss(t(150), 2, t(100));
        h.note_bind(t(400), "translate", 3, true);
        h.note_queue_depth(t(800), 4);

        let timeline = IncidentTimeline::merge([h.snapshot()]);
        let report = timeline.render_report(&ledger, t(1000));
        assert!(report.contains("peer n2 down"));
        assert!(report.contains("fault: kill 2"));
        // events inside the outage window are flagged in the margin
        assert!(report.contains("! [")); // kill at t=120 falls inside 100..500
        let jsonl = timeline.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"event\":\"fault\""));
        for line in jsonl.lines() {
            json::parse(line).expect("valid json");
        }
    }
}
