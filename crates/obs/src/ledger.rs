//! Online availability ledger: liveness timelines, MTTF/MTTR, and
//! coordinator churn, computed from heartbeats as they happen.
//!
//! The paper's availability table is post-hoc math over CSVs; the ledger
//! reproduces it from a *live* run. Actors feed it two kinds of facts:
//!
//! * **peer liveness** — every heartbeat received marks the sender up;
//!   when a failure detector declares a peer dead, the down stretch is
//!   backdated to the peer's last proof of life (its final heartbeat), so
//!   the recorded outage covers the silent window too, not just the time
//!   after detection.
//! * **service coordination** — a service (b-peer group) is *up* while
//!   its members believe in a live coordinator. A suspected coordinator
//!   opens a downtime interval at its last heartbeat; the next
//!   `CoordinatorElected` closes it. The recorded MTTR is therefore
//!   detection latency plus re-election time — the paper's failover
//!   window — measured online.
//!
//! Memory is bounded: per timeline the ledger keeps running totals
//! (exact) plus at most [`MAX_INTERVALS`] most-recent downtime intervals;
//! older intervals fold into the aggregates and are counted in
//! [`AvailabilityReport::dropped_intervals`]. Reports are cheap pure
//! reads; the ledger itself is a cheap-to-clone shared handle, safe to
//! hand to actors on different threads.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use whisper_simnet::{SimDuration, SimTime};

/// Downtime intervals retained verbatim per timeline; older ones fold
/// into the running totals.
pub const MAX_INTERVALS: usize = 64;

/// One outage: from last proof of life to recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DowntimeInterval {
    /// Last time the failed party was provably alive (down stretches are
    /// backdated to this point).
    pub start: SimTime,
    /// When a failure detector first declared it dead.
    pub detected_at: SimTime,
    /// When the outage ended (`None` while still ongoing).
    pub end: Option<SimTime>,
}

impl DowntimeInterval {
    /// Repair time for a closed interval: `end - start`.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }

    /// The part of the outage spent *noticing* the failure.
    pub fn detection_latency(&self) -> SimDuration {
        self.detected_at.since(self.start)
    }
}

/// One up/down timeline (a peer's, or a service's).
#[derive(Debug, Clone)]
struct Timeline {
    born: SimTime,
    up: bool,
    /// Start of the current up or down stretch.
    current_since: SimTime,
    /// Sum of *completed* up stretches.
    closed_uptime_us: u64,
    /// Sum of *completed* down stretches.
    closed_downtime_us: u64,
    /// Completed down stretches (= completed up stretches: every outage
    /// ends one up stretch and every recovery ends one down stretch).
    failures: u64,
    intervals: Vec<DowntimeInterval>,
    dropped_intervals: u64,
    /// Coordinator currently believed in (services only).
    coordinator: Option<u64>,
    /// Distinct coordinator hand-overs (services only).
    churn: u64,
}

impl Timeline {
    fn new(now: SimTime) -> Self {
        Timeline {
            born: now,
            up: true,
            current_since: now,
            closed_uptime_us: 0,
            closed_downtime_us: 0,
            failures: 0,
            intervals: Vec::new(),
            dropped_intervals: 0,
            coordinator: None,
            churn: 0,
        }
    }

    fn go_down(&mut self, last_seen: SimTime, detected_at: SimTime) {
        if !self.up {
            return;
        }
        // The up stretch provably extends only to the last heartbeat.
        let last_seen = last_seen.max(self.current_since);
        self.closed_uptime_us += last_seen.since(self.current_since).as_micros();
        self.up = false;
        self.current_since = last_seen;
        if self.intervals.len() == MAX_INTERVALS {
            self.intervals.remove(0);
            self.dropped_intervals += 1;
        }
        self.intervals.push(DowntimeInterval {
            start: last_seen,
            detected_at: detected_at.max(last_seen),
            end: None,
        });
    }

    fn go_up(&mut self, now: SimTime) {
        if self.up {
            return;
        }
        let now = now.max(self.current_since);
        self.closed_downtime_us += now.since(self.current_since).as_micros();
        self.failures += 1;
        self.up = true;
        self.current_since = now;
        if let Some(open) = self.intervals.last_mut() {
            if open.end.is_none() {
                open.end = Some(now);
            }
        }
    }

    fn report(&self, now: SimTime, peer_or_coord: Option<u64>) -> AvailabilityReport {
        let now = now.max(self.current_since);
        let current = now.since(self.current_since).as_micros();
        let (up_us, down_us) = if self.up {
            (self.closed_uptime_us + current, self.closed_downtime_us)
        } else {
            (self.closed_uptime_us, self.closed_downtime_us + current)
        };
        let total = up_us + down_us;
        AvailabilityReport {
            born: self.born,
            up: self.up,
            uptime: SimDuration::from_micros(up_us),
            downtime: SimDuration::from_micros(down_us),
            availability: if total == 0 {
                1.0
            } else {
                up_us as f64 / total as f64
            },
            mttf: (self.failures > 0)
                .then(|| SimDuration::from_micros(self.closed_uptime_us / self.failures)),
            mttr: (self.failures > 0)
                .then(|| SimDuration::from_micros(self.closed_downtime_us / self.failures)),
            failures: self.failures,
            downtime_intervals: self.intervals.clone(),
            dropped_intervals: self.dropped_intervals,
            coordinator: peer_or_coord,
            churn: self.churn,
        }
    }
}

/// A point-in-time availability summary for one peer or service.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// First observation of this timeline.
    pub born: SimTime,
    /// Whether it is currently considered up.
    pub up: bool,
    /// Total observed uptime, including the current stretch.
    pub uptime: SimDuration,
    /// Total observed downtime, including the current stretch.
    pub downtime: SimDuration,
    /// `uptime / (uptime + downtime)`; 1.0 before anything has elapsed.
    pub availability: f64,
    /// Mean completed up stretch (mean time to failure), once a failure
    /// has been observed.
    pub mttf: Option<SimDuration>,
    /// Mean completed down stretch (mean time to repair), once a repair
    /// has been observed.
    pub mttr: Option<SimDuration>,
    /// Completed outages.
    pub failures: u64,
    /// Most recent downtime intervals (bounded by [`MAX_INTERVALS`]).
    pub downtime_intervals: Vec<DowntimeInterval>,
    /// Intervals folded into the aggregates after the cap was hit.
    pub dropped_intervals: u64,
    /// For services: the coordinator currently believed in.
    pub coordinator: Option<u64>,
    /// For services: distinct coordinator hand-overs observed.
    pub churn: u64,
}

#[derive(Debug, Default)]
struct LedgerInner {
    peers: BTreeMap<u64, Timeline>,
    services: BTreeMap<u64, Timeline>,
}

/// Shared, thread-safe availability ledger. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct AvailabilityLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl AvailabilityLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        AvailabilityLedger::default()
    }

    fn lock(&self) -> MutexGuard<'_, LedgerInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// A heartbeat (or any traffic) from `peer` arrived: it is provably
    /// alive at `now`. Revives a peer previously declared down.
    pub fn peer_heartbeat(&self, peer: u64, now: SimTime) {
        let mut inner = self.lock();
        let t = inner
            .peers
            .entry(peer)
            .or_insert_with(|| Timeline::new(now));
        t.go_up(now);
    }

    /// A failure detector declared `peer` dead: it was last heard from at
    /// `last_seen` and the silence was noticed at `detected_at`. The down
    /// stretch is backdated to `last_seen`. No-op if already down.
    pub fn peer_down(&self, peer: u64, last_seen: SimTime, detected_at: SimTime) {
        let mut inner = self.lock();
        let t = inner
            .peers
            .entry(peer)
            .or_insert_with(|| Timeline::new(last_seen));
        t.go_down(last_seen, detected_at);
    }

    /// A coordinator was announced for `service`. Closes any open
    /// downtime interval and counts a hand-over when the coordinator
    /// actually changed (duplicate announcements from other members of
    /// the same election are deduplicated).
    pub fn coordinator_elected(&self, service: u64, coordinator: u64, now: SimTime) {
        let mut inner = self.lock();
        let t = inner
            .services
            .entry(service)
            .or_insert_with(|| Timeline::new(now));
        t.go_up(now);
        if t.coordinator != Some(coordinator) {
            if t.coordinator.is_some() {
                t.churn += 1;
            }
            t.coordinator = Some(coordinator);
        }
    }

    /// A member's failure detector suspected `service`'s current
    /// coordinator. Opens a downtime interval backdated to the
    /// coordinator's `last_seen`. Stale suspicions (of a coordinator the
    /// service no longer believes in) and duplicate reports are no-ops.
    pub fn coordinator_down(
        &self,
        service: u64,
        coordinator: u64,
        last_seen: SimTime,
        detected_at: SimTime,
    ) {
        let mut inner = self.lock();
        if let Some(t) = inner.services.get_mut(&service) {
            if t.coordinator == Some(coordinator) {
                t.go_down(last_seen, detected_at);
            }
        }
    }

    /// Availability summary for one service, evaluated at `now`.
    pub fn service_report(&self, service: u64, now: SimTime) -> Option<AvailabilityReport> {
        let inner = self.lock();
        inner.services.get(&service).map(|t| {
            let coord = t.up.then_some(t.coordinator).flatten();
            t.report(now, coord)
        })
    }

    /// Availability summary for one peer, evaluated at `now`.
    pub fn peer_report(&self, peer: u64, now: SimTime) -> Option<AvailabilityReport> {
        let inner = self.lock();
        inner.peers.get(&peer).map(|t| t.report(now, None))
    }

    /// All services the ledger has seen, ascending.
    pub fn services(&self) -> Vec<u64> {
        self.lock().services.keys().copied().collect()
    }

    /// All peers the ledger has seen, ascending.
    pub fn peers(&self) -> Vec<u64> {
        self.lock().peers.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn service_tracks_one_kill_and_reelection() {
        let ledger = AvailabilityLedger::new();
        ledger.coordinator_elected(1, 9, t(0));
        // Coordinator 9 last beaconed at 100 ms; silence noticed at 250 ms;
        // peer 8 took over at 400 ms.
        ledger.coordinator_down(1, 9, t(100), t(250));
        // A second member notices too — must not open another interval.
        ledger.coordinator_down(1, 9, t(110), t(260));
        ledger.coordinator_elected(1, 8, t(400));
        ledger.coordinator_elected(1, 8, t(405)); // duplicate announcement

        let r = ledger.service_report(1, t(1000)).unwrap();
        assert_eq!(r.failures, 1);
        assert_eq!(r.downtime_intervals.len(), 1);
        let iv = r.downtime_intervals[0];
        assert_eq!(iv.start, t(100));
        assert_eq!(iv.detected_at, t(250));
        assert_eq!(iv.end, Some(t(400)));
        assert_eq!(iv.duration(), Some(d(300)));
        assert_eq!(iv.detection_latency(), d(150));
        assert_eq!(r.mttr, Some(d(300)));
        assert_eq!(r.mttf, Some(d(100)));
        assert_eq!(r.uptime, d(700)); // 100 before + 600 after
        assert_eq!(r.downtime, d(300));
        assert!((r.availability - 0.7).abs() < 1e-12);
        assert_eq!(r.churn, 1);
        assert_eq!(r.coordinator, Some(8));
    }

    #[test]
    fn stale_suspicion_of_old_coordinator_is_ignored() {
        let ledger = AvailabilityLedger::new();
        ledger.coordinator_elected(1, 9, t(0));
        ledger.coordinator_down(1, 9, t(50), t(80));
        ledger.coordinator_elected(1, 8, t(100));
        // A laggard still suspects the *old* coordinator: no new outage.
        ledger.coordinator_down(1, 9, t(60), t(120));
        let r = ledger.service_report(1, t(200)).unwrap();
        assert!(r.up);
        assert_eq!(r.failures, 1);
    }

    #[test]
    fn peer_timeline_backdates_to_last_seen_and_revives() {
        let ledger = AvailabilityLedger::new();
        ledger.peer_heartbeat(5, t(0));
        ledger.peer_heartbeat(5, t(40));
        ledger.peer_down(5, t(40), t(130));
        assert!(!ledger.peer_report(5, t(150)).unwrap().up);
        ledger.peer_heartbeat(5, t(200));
        let r = ledger.peer_report(5, t(300)).unwrap();
        assert!(r.up);
        assert_eq!(r.downtime, d(160)); // 40 → 200
        assert_eq!(r.uptime, d(140)); // 0→40 plus 200→300
        assert_eq!(r.mttr, Some(d(160)));
    }

    #[test]
    fn availability_is_uptime_over_total() {
        let ledger = AvailabilityLedger::new();
        ledger.peer_heartbeat(1, t(0));
        ledger.peer_down(1, t(100), t(150));
        ledger.peer_heartbeat(1, t(300));
        let r = ledger.peer_report(1, t(500)).unwrap();
        let total = r.uptime.as_micros() + r.downtime.as_micros();
        assert_eq!(total, 500_000);
        assert!(
            (r.availability - r.uptime.as_micros() as f64 / total as f64).abs() < 1e-9,
            "availability must equal uptime/total"
        );
    }

    #[test]
    fn interval_memory_is_bounded() {
        let ledger = AvailabilityLedger::new();
        ledger.coordinator_elected(1, 1, t(0));
        let mut clock = 0;
        for k in 0..200u64 {
            clock += 10;
            ledger.coordinator_down(1, 1 + (k % 2), t(clock), t(clock + 1));
            clock += 10;
            ledger.coordinator_elected(1, 1 + ((k + 1) % 2), t(clock));
        }
        let r = ledger.service_report(1, t(clock + 1)).unwrap();
        assert_eq!(r.downtime_intervals.len() as u64 + r.dropped_intervals, 200);
        assert_eq!(r.downtime_intervals.len(), MAX_INTERVALS);
        assert_eq!(r.failures, 200);
        // Aggregates stay exact even after intervals are dropped.
        assert_eq!(r.downtime, d(200 * 10));
    }

    #[test]
    fn open_outage_spans_report_boundary() {
        // A report taken mid-outage attributes the current stretch to
        // downtime and shows the interval still open; recovery later
        // closes it and the totals cover the whole outage.
        let ledger = AvailabilityLedger::new();
        ledger.coordinator_elected(1, 9, t(0));
        ledger.coordinator_down(1, 9, t(100), t(250));

        let mid = ledger.service_report(1, t(300)).unwrap();
        assert!(!mid.up);
        assert_eq!(mid.uptime, d(100));
        assert_eq!(mid.downtime, d(200), "100 → 300 still accruing");
        assert_eq!(mid.failures, 0, "not a *completed* outage yet");
        assert_eq!(mid.mttr, None);
        assert_eq!(mid.downtime_intervals.len(), 1);
        assert_eq!(mid.downtime_intervals[0].end, None);
        assert_eq!(mid.coordinator, None, "nobody is believed in while down");

        ledger.coordinator_elected(1, 8, t(500));
        let after = ledger.service_report(1, t(600)).unwrap();
        assert_eq!(after.uptime, d(200));
        assert_eq!(after.downtime, d(400));
        assert_eq!(after.failures, 1);
        assert_eq!(after.downtime_intervals[0].end, Some(t(500)));
    }

    #[test]
    fn backdate_horizon_clamps_to_current_stretch() {
        // `last_seen` exactly at the stretch start is the backdate
        // horizon: a legal zero-length up stretch. A `last_seen` from
        // *before* the stretch (a stale report) clamps to the stretch
        // start, so no negative time is ever recorded.
        let ledger = AvailabilityLedger::new();
        ledger.peer_heartbeat(5, t(100));
        // Never seen again after the stretch began; silence noticed the
        // same instant it started (detected_at == last_seen).
        ledger.peer_down(5, t(100), t(100));
        let r = ledger.peer_report(5, t(100)).unwrap();
        assert!(!r.up);
        assert_eq!(r.uptime, d(0));
        assert_eq!(r.downtime, d(0));
        assert_eq!(r.availability, 1.0, "nothing has elapsed at the edge");
        assert_eq!(r.downtime_intervals[0].detection_latency(), d(0));

        ledger.peer_heartbeat(5, t(200)); // restart
                                          // Stale detection carrying a pre-restart last_seen: clamped.
        ledger.peer_down(5, t(150), t(220));
        let r = ledger.peer_report(5, t(260)).unwrap();
        let iv = *r.downtime_intervals.last().unwrap();
        assert_eq!(iv.start, t(200), "backdate clamped to the restart");
        assert_eq!(iv.detected_at, t(220));
        assert_eq!(r.downtime, d(100) + d(60), "100→200 plus 200→260");
        assert_eq!(r.uptime, d(0));
        assert_eq!(r.mttr, Some(d(100)), "only the completed outage counts");
    }

    #[test]
    fn restarted_coordinator_with_stale_suspicion() {
        // The same peer id can be re-elected after a restart. A laggard's
        // suspicion carrying the *old* incarnation's last_seen matches
        // the current coordinator by identity, but its backdate clamps to
        // the re-election: pre-restart uptime is never rewritten.
        let ledger = AvailabilityLedger::new();
        ledger.coordinator_elected(1, 9, t(0));
        ledger.coordinator_down(1, 9, t(100), t(150));
        ledger.coordinator_elected(1, 9, t(300)); // same identity returns
        let before = ledger.service_report(1, t(400)).unwrap();
        assert_eq!(before.churn, 0, "same coordinator: no hand-over");
        assert_eq!(before.failures, 1);

        ledger.coordinator_down(1, 9, t(120), t(450));
        let r = ledger.service_report(1, t(500)).unwrap();
        assert!(!r.up);
        let iv = *r.downtime_intervals.last().unwrap();
        assert_eq!(iv.start, t(300), "outage clamped to the re-election");
        assert_eq!(iv.detected_at, t(450));
        assert_eq!(r.uptime, d(100), "pre-restart uptime untouched");
        assert_eq!(r.downtime, d(200) + d(200), "100→300 plus 300→500");
    }

    #[test]
    fn fresh_timeline_is_fully_available() {
        let ledger = AvailabilityLedger::new();
        ledger.peer_heartbeat(3, t(7));
        let r = ledger.peer_report(3, t(7)).unwrap();
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.mttr, None);
        assert_eq!(r.mttf, None);
        assert!(ledger.service_report(99, t(0)).is_none());
    }
}
