//! The deployment layer: one scenario description, three substrates.
//!
//! [`ScenarioWiring`] is the one-shot wiring pass: it places a complete
//! Whisper scenario — rendezvous, b-peer groups, SWS-proxy, clients, and
//! optionally the pulse collector — onto any [`Spawner`], i.e. the
//! deterministic simulator or the builders of the threaded and TCP
//! runtimes. Node layout is identical everywhere
//! (`[rendezvous?] [b-peers, group by group] [proxy] [clients...]
//! [collector?]`, peer id = node index + 1), so the [`Topology`] it
//! returns means the same thing on every substrate.
//!
//! [`Deployment`] is the reusable form: instead of boxed backends it holds
//! backend *factories*, so the same description can be booted repeatedly —
//! [`Deployment::boot_sim`], [`Deployment::boot_threadnet`] and
//! [`Deployment::boot_tcp`] each produce a fresh [`Booted`] network whose
//! transport implements [`Substrate`]. An experiment written against
//! `Substrate` (inject, kill, restart, block, [`FaultPlan`] replay,
//! advance) therefore runs unmodified on all three runtimes, which is what
//! makes per-substrate availability/MTTR numbers comparable.
//!
//! [`Substrate`]: whisper_simnet::Substrate
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use std::sync::Arc;

use crate::backend::{ServiceBackend, StudentRegistry};
use crate::bpeer::{BPeerActor, BPeerConfig};
use crate::client::{ClientActor, ClientConfig};
use crate::directory::Directory;
use crate::harness::{ClientConfigTemplate, GroupSpec};
use crate::msg::WhisperMsg;
use crate::proxy::{ProxyConfig, SwsProxyActor};
use crate::pulse::{self, PulseCollectorActor, PulseConfig, SharedPulseStore};
use crate::WhisperError;
use whisper_obs::{
    AvailabilityLedger, FlightHandle, FlightPlane, NodeRole, NodeSnapshot, PulseEmitter, Recorder,
};
use whisper_ontology::Ontology;
use whisper_p2p::{DiscoveryService, DiscoveryStrategy, GroupId, P2pMessage, PeerId, SemanticAdv};
use whisper_simnet::tcpnet::{TcpNet, TcpNetBuilder};
use whisper_simnet::threadnet::{ThreadNet, ThreadNetBuilder};
use whisper_simnet::{
    Actor, Context, Metrics, NodeId, SimDuration, SimNet, Spawner, SwitchedLan, Wire,
};
use whisper_wsdl::ServiceDescription;

/// A minimal rendezvous peer: caches publications, answers queries.
pub(crate) struct RendezvousActor {
    pub(crate) peer: PeerId,
    pub(crate) directory: Directory,
    pub(crate) disco: DiscoveryService,
    pub(crate) obs: Option<Recorder>,
    /// Per-kind traffic counters for the introspection snapshot.
    pub(crate) tx: Metrics,
    pub(crate) rx: Metrics,
    /// Telemetry plane: where/how often to push [`WhisperMsg::PulseReport`]s.
    pub(crate) pulse: Option<PulseConfig>,
    pub(crate) pulse_emitter: PulseEmitter,
}

/// The rendezvous' only timer: its pulse interval.
const RDV_TOKEN_PULSE: u64 = 1;

impl RendezvousActor {
    fn new(peer: PeerId, directory: Directory) -> Self {
        RendezvousActor {
            peer,
            directory,
            disco: DiscoveryService::new(peer, DiscoveryStrategy::Rendezvous(peer)),
            obs: None,
            tx: Metrics::new(),
            rx: Metrics::new(),
            pulse: None,
            pulse_emitter: PulseEmitter::new(),
        }
    }

    /// The introspection snapshot served to [`WhisperMsg::ScopeRequest`]:
    /// cache size, traffic counters and the obs registry dump.
    pub(crate) fn scope_snapshot(&self) -> NodeSnapshot {
        let mut snap = NodeSnapshot::empty(NodeRole::Rendezvous, self.peer.value());
        snap.queue_depth = self.disco.cache().len() as u64;
        snap.sent = self.tx.snapshot();
        snap.received = self.rx.snapshot();
        if let Some(rec) = &self.obs {
            snap.registry = rec.registry_dump();
        }
        snap
    }

    /// Builds and ships one telemetry frame, then re-arms the interval.
    fn emit_pulse(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        let Some(cfg) = self.pulse else {
            return;
        };
        let mut counters = pulse::traffic_counters(&self.tx, &self.rx);
        counters.sort();
        let gauges = vec![(
            "rendezvous.cache".to_string(),
            self.disco.cache().len() as i64,
        )];
        let delta = self.pulse_emitter.frame(
            ctx.now().as_micros(),
            cfg.interval.as_micros(),
            counters,
            gauges,
            Vec::new(),
            0,
        );
        let msg = WhisperMsg::PulseReport {
            delta: Box::new(delta),
            outliers: Vec::new(),
        };
        self.tx.on_send(msg.kind(), msg.wire_size());
        ctx.send(cfg.collector, msg);
        ctx.set_timer(cfg.interval, RDV_TOKEN_PULSE);
    }
}

impl Actor<WhisperMsg> for RendezvousActor {
    fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        if let Some(cfg) = self.pulse {
            ctx.set_timer(cfg.interval, RDV_TOKEN_PULSE);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WhisperMsg>, token: u64) {
        if token == RDV_TOKEN_PULSE {
            self.emit_pulse(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        let Some((from, msg)) =
            crate::routing::unwrap_or_forward(&self.directory, self.peer, ctx, from, msg)
        else {
            return;
        };
        self.rx.on_send(msg.kind(), msg.wire_size());
        if let WhisperMsg::ScopeRequest { request_id } = msg {
            let reply = WhisperMsg::ScopeResponse {
                request_id,
                snapshot: Box::new(self.scope_snapshot()),
            };
            self.tx.on_send(reply.kind(), reply.wire_size());
            match self.directory.peer_of(from) {
                Some(peer) => {
                    crate::routing::send_routed(&self.directory, self.peer, ctx, peer, reply)
                }
                None => ctx.send(from, reply),
            }
            return;
        }
        if let WhisperMsg::P2p(m) = msg {
            let origin = match &m {
                P2pMessage::Query { origin, .. } => *origin,
                P2pMessage::Heartbeat { from, .. } => *from,
                _ => self.peer,
            };
            if let (Some(rec), P2pMessage::Query { id, .. }) = (&self.obs, &m) {
                if let Some(req) = rec.lookup(crate::trace::NS_QUERY, *id) {
                    rec.instant("rendezvous.lookup", req, ctx.now());
                }
                rec.incr("rendezvous.queries", 1);
            }
            let (sends, _) = self.disco.handle_message(origin, m, ctx.now());
            for s in sends {
                let msg = WhisperMsg::P2p(s.msg);
                self.tx.on_send(msg.kind(), msg.wire_size());
                crate::routing::send_routed(&self.directory, self.peer, ctx, s.to, msg);
            }
        }
    }
}

/// Pulse-plane wiring for a scenario: every protocol actor pushes a
/// [`WhisperMsg::PulseReport`] to an in-network collector node every
/// `interval`; `store` is where the collector accumulates frames.
pub struct PulseWiring {
    /// Pulse emission period.
    pub interval: SimDuration,
    /// The collector's shared store (see [`crate::pulse::shared_store`]).
    pub store: SharedPulseStore,
}

/// One complete Whisper scenario, ready to be placed on a [`Spawner`].
///
/// This is the single wiring pass every runtime shares: the simulator
/// harness ([`crate::WhisperNet`]) and the live TCP cluster both boot
/// through [`ScenarioWiring::wire`]. Observability (recorder, availability
/// ledger, pulse plane) is installed *before* actors spawn, because the
/// real-time substrates cannot reach into running actors the way the
/// simulator can.
pub struct ScenarioWiring {
    /// The semantic Web service the proxy exposes.
    pub service: ServiceDescription,
    /// The shared deployment ontology.
    pub ontology: Ontology,
    /// B-peer groups to deploy (consumed: backends are boxed).
    pub groups: Vec<GroupSpec>,
    /// Use a dedicated rendezvous peer instead of flooding.
    pub use_rendezvous: bool,
    /// Route every b-peer through the rendezvous relay (directory routes
    /// only; blocking the direct links is the simulator harness' job).
    pub firewall_bpeers: bool,
    /// B-peer tuning (strategy is overwritten to match the deployment).
    pub bpeer: BPeerConfig,
    /// Proxy tuning (strategy is overwritten to match the deployment).
    pub proxy: ProxyConfig,
    /// Clients to deploy.
    pub clients: Vec<ClientConfigTemplate>,
    /// Shared availability ledger, installed into every b-peer.
    pub ledger: Option<AvailabilityLedger>,
    /// Shared trace recorder, installed into every actor + the net hook.
    pub recorder: Option<Recorder>,
    /// Pulse telemetry plane; adds a collector node after the clients.
    pub pulse: Option<PulseWiring>,
    /// Flight-recorder plane: per-node ring byte budget. When set, every
    /// node gets an always-on [`FlightHandle`] (ring id = node index)
    /// installed both into the substrate (message send/recv + fault
    /// events, Lamport-stamped) and into the protocol actors (elections,
    /// binds, heartbeat transitions, queue high-water marks).
    pub flight: Option<usize>,
}

impl ScenarioWiring {
    /// A scenario with no observability attached.
    pub fn bare(
        service: ServiceDescription,
        ontology: Ontology,
        groups: Vec<GroupSpec>,
    ) -> ScenarioWiring {
        ScenarioWiring {
            service,
            ontology,
            groups,
            use_rendezvous: false,
            firewall_bpeers: false,
            bpeer: BPeerConfig::default(),
            proxy: ProxyConfig::default(),
            clients: Vec::new(),
            ledger: None,
            recorder: None,
            pulse: None,
            flight: None,
        }
    }

    /// Places the scenario onto `spawner` and returns where everything
    /// landed. Works identically on [`SimNet`], [`ThreadNetBuilder`] and
    /// [`TcpNetBuilder`] — node ids are assigned in registration order on
    /// every substrate.
    ///
    /// # Errors
    ///
    /// [`WhisperError::BadDeployment`] for structurally impossible
    /// configurations (no groups, empty group, firewalled b-peers without
    /// a rendezvous), [`WhisperError::Wsdl`] for service annotations that
    /// do not resolve against the ontology.
    pub fn wire<S: Spawner<WhisperMsg>>(self, spawner: &mut S) -> Result<Topology, WhisperError> {
        if self.groups.is_empty() {
            return Err(WhisperError::BadDeployment(
                "no b-peer groups configured".into(),
            ));
        }
        if self.groups.iter().any(|g| g.backends.is_empty()) {
            return Err(WhisperError::BadDeployment("a group has no b-peers".into()));
        }
        if self.firewall_bpeers && !self.use_rendezvous {
            return Err(WhisperError::BadDeployment(
                "firewalled b-peers need a rendezvous to relay through".into(),
            ));
        }
        // Validate annotations up front (the proxy would panic otherwise).
        self.service.resolve_all(&self.ontology)?;

        // --- Assign node indices and peer ids -------------------------
        let mut next_node = 0usize;
        let rendezvous_idx = self.use_rendezvous.then(|| {
            let i = next_node;
            next_node += 1;
            i
        });
        let mut group_node_idx: Vec<Vec<usize>> = Vec::new();
        for g in &self.groups {
            let idxs = (0..g.backends.len())
                .map(|_| {
                    let i = next_node;
                    next_node += 1;
                    i
                })
                .collect();
            group_node_idx.push(idxs);
        }
        let proxy_idx = next_node;
        next_node += 1;
        let client_idx: Vec<usize> = (0..self.clients.len())
            .map(|_| {
                let i = next_node;
                next_node += 1;
                i
            })
            .collect();
        let collector_idx = self.pulse.as_ref().map(|_| {
            let i = next_node;
            next_node += 1;
            i
        });

        // Peers: every node except clients and the collector.
        // PeerId = node index + 1.
        let peer_of = |idx: usize| PeerId::new(idx as u64 + 1);
        let mut pairs = Vec::new();
        if let Some(r) = rendezvous_idx {
            pairs.push((peer_of(r), NodeId::from_index(r)));
        }
        for idxs in &group_node_idx {
            for &i in idxs {
                pairs.push((peer_of(i), NodeId::from_index(i)));
            }
        }
        pairs.push((peer_of(proxy_idx), NodeId::from_index(proxy_idx)));
        let mut routes = Vec::new();
        if self.firewall_bpeers {
            let relay = peer_of(rendezvous_idx.expect("validated above"));
            for idxs in &group_node_idx {
                for &i in idxs {
                    routes.push((peer_of(i), relay));
                }
            }
        }
        let directory = Directory::with_routes(pairs, routes);

        let strategy = match rendezvous_idx {
            Some(r) => DiscoveryStrategy::Rendezvous(peer_of(r)),
            None => DiscoveryStrategy::Flood,
        };
        let pulse_cfg = match (&self.pulse, collector_idx) {
            (Some(p), Some(c)) => Some(PulseConfig::new(NodeId::from_index(c), p.interval)),
            _ => None,
        };

        // --- Place the actors -----------------------------------------
        if let Some(rec) = &self.recorder {
            spawner.set_net_hook(Box::new(rec.clone()));
        }

        // One flight ring per node, shared between the substrate hook and
        // the node's actor so both stamp the same Lamport clock. Ring ids
        // are node *indices*, matching the `from`/`to` the substrate
        // records — that is what makes merged timelines causally
        // checkable.
        let flight_plane = self.flight.map(|budget| {
            let mut plane = FlightPlane::new();
            for i in 0..next_node {
                let handle = FlightHandle::new(i as u64, budget);
                spawner.set_flight_hook(NodeId::from_index(i), Box::new(handle.clone()));
                plane.push(handle);
            }
            plane
        });
        let flight_of = |idx: usize| {
            flight_plane
                .as_ref()
                .and_then(|p| p.handle(idx as u64))
                .cloned()
        };

        if let Some(r) = rendezvous_idx {
            let mut rdv = RendezvousActor::new(peer_of(r), directory.clone());
            if let Some(rec) = &self.recorder {
                rdv.disco.set_recorder(rec.clone());
                rdv.obs = Some(rec.clone());
            }
            rdv.pulse = pulse_cfg;
            let added = spawner.add(rdv);
            debug_assert_eq!(added, NodeId::from_index(r));
        }

        let mut group_nodes = Vec::new();
        let mut group_ids = Vec::new();
        let mut group_advs = Vec::new();
        for (gi, spec) in self.groups.into_iter().enumerate() {
            let group = GroupId::new(gi as u64 + 1);
            let idxs = &group_node_idx[gi];
            let members: Vec<PeerId> = idxs.iter().map(|&i| peer_of(i)).collect();
            let adv = SemanticAdv {
                group,
                name: spec.name.clone(),
                action: spec.action.clone(),
                inputs: spec.inputs.clone(),
                outputs: spec.outputs.clone(),
                qos: spec.qos,
            };
            let mut nodes = Vec::new();
            for (pi, backend) in spec.backends.into_iter().enumerate() {
                let peer = peer_of(idxs[pi]);
                let mut bp_cfg = self.bpeer.clone();
                bp_cfg.strategy = strategy;
                if let Some(pt) = spec.processing_time {
                    bp_cfg.processing_time = pt;
                }
                let mut actor = BPeerActor::new(
                    peer,
                    group,
                    members.clone(),
                    adv.clone(),
                    backend,
                    directory.clone(),
                    bp_cfg,
                );
                if let Some(ledger) = &self.ledger {
                    actor.set_ledger(ledger.clone());
                }
                if let Some(rec) = &self.recorder {
                    actor.set_recorder(rec.clone());
                }
                if let Some(cfg) = pulse_cfg {
                    actor.set_pulse(cfg);
                }
                if let Some(handle) = flight_of(idxs[pi]) {
                    actor.set_flight(handle);
                }
                let added = spawner.add(actor);
                debug_assert_eq!(added, NodeId::from_index(idxs[pi]));
                nodes.push(added);
            }
            group_nodes.push(nodes);
            group_ids.push(group);
            group_advs.push(adv);
        }

        let proxy_peer = peer_of(proxy_idx);
        let mut proxy_cfg = self.proxy.clone();
        proxy_cfg.strategy = strategy;
        let mut proxy = SwsProxyActor::new(
            proxy_peer,
            &self.service,
            self.ontology,
            directory.clone(),
            proxy_cfg,
        );
        for idxs in &group_node_idx {
            for &i in idxs {
                proxy.add_known_peer(peer_of(i));
            }
        }
        if let Some(r) = rendezvous_idx {
            proxy.add_known_peer(peer_of(r));
        }
        if let Some(rec) = &self.recorder {
            proxy.set_recorder(rec.clone());
        }
        if let Some(cfg) = pulse_cfg {
            proxy.set_pulse(cfg);
        }
        if let Some(handle) = flight_of(proxy_idx) {
            proxy.set_flight(handle);
        }
        let proxy_node = spawner.add(proxy);
        debug_assert_eq!(proxy_node, NodeId::from_index(proxy_idx));

        let mut client_nodes = Vec::new();
        for (ci, tpl) in self.clients.into_iter().enumerate() {
            let cc = ClientConfig {
                proxy_node,
                workload: tpl.workload,
                payloads: tpl.payloads,
                total: tpl.total,
                timeout: tpl.timeout,
                warmup: tpl.warmup,
            };
            let mut actor = ClientActor::new(cc);
            if let Some(rec) = &self.recorder {
                actor.set_recorder(rec.clone());
            }
            let added = spawner.add(actor);
            debug_assert_eq!(added, NodeId::from_index(client_idx[ci]));
            client_nodes.push(added);
        }

        let mut collector_node = None;
        if let (Some(p), Some(c)) = (self.pulse, collector_idx) {
            let added = spawner.add(PulseCollectorActor::new(p.store));
            debug_assert_eq!(added, NodeId::from_index(c));
            collector_node = Some(added);
        }

        Ok(Topology {
            rendezvous: rendezvous_idx.map(NodeId::from_index),
            group_nodes,
            group_ids,
            group_advs,
            proxy: proxy_node,
            clients: client_nodes,
            collector: collector_node,
            directory,
            strategy,
            node_count: next_node,
            flight: flight_plane,
        })
    }
}

/// Where a wired scenario's actors landed, substrate-independently.
pub struct Topology {
    /// The rendezvous node, when deployed with one.
    pub rendezvous: Option<NodeId>,
    /// B-peer nodes, group by group, in peer-id order.
    pub group_nodes: Vec<Vec<NodeId>>,
    /// Group ids, parallel to `group_nodes`.
    pub group_ids: Vec<GroupId>,
    /// The semantic advertisement each group publishes.
    pub group_advs: Vec<SemanticAdv>,
    /// The node hosting the Web service + SWS-proxy.
    pub proxy: NodeId,
    /// Client nodes, in configuration order.
    pub clients: Vec<NodeId>,
    /// The pulse collector node, when the pulse plane is wired.
    pub collector: Option<NodeId>,
    /// The peer↔node directory the actors share.
    pub directory: Directory,
    /// The discovery strategy the deployment uses.
    pub strategy: DiscoveryStrategy,
    /// Total nodes placed (the next free node index).
    pub node_count: usize,
    /// The flight-recorder plane, when wired: one handle per node, ready
    /// for [`FlightPlane::capture`] into an incident timeline.
    pub flight: Option<FlightPlane>,
}

impl Topology {
    /// Every b-peer node, across all groups.
    pub fn all_bpeers(&self) -> Vec<NodeId> {
        self.group_nodes.iter().flatten().copied().collect()
    }

    /// The peer id living on `node` (node index + 1 by construction).
    pub fn peer_of(&self, node: NodeId) -> PeerId {
        PeerId::new(node.index() as u64 + 1)
    }
}

/// Builds replica backends for a [`GroupBlueprint`]: one call per b-peer,
/// one fresh backend per boot.
pub type BackendFactory = Arc<dyn Fn() -> Box<dyn ServiceBackend> + Send + Sync>;

/// A b-peer group described by *how to build it* rather than by boxed
/// backend instances, so one [`Deployment`] can boot many networks.
pub struct GroupBlueprint {
    /// Symbolic group name (the syntactic identity).
    pub name: String,
    /// The WSDL-S operation the group serves (advertisement concepts are
    /// taken from its annotations).
    pub operation: String,
    /// Number of redundant b-peers.
    pub replicas: usize,
    /// Produces one backend per replica.
    pub backend: BackendFactory,
    /// Per-group override of the replica service time.
    pub processing_time: Option<SimDuration>,
}

impl GroupBlueprint {
    /// `replicas` interchangeable b-peers serving `operation`.
    pub fn replicated(
        name: impl Into<String>,
        operation: impl Into<String>,
        replicas: usize,
        backend: BackendFactory,
    ) -> GroupBlueprint {
        GroupBlueprint {
            name: name.into(),
            operation: operation.into(),
            replicas,
            backend,
            processing_time: None,
        }
    }
}

/// A substrate-agnostic Whisper deployment: the scenario as data, bootable
/// any number of times on any runtime.
///
/// # Examples
///
/// The same deployment on the simulator and on OS threads:
///
/// ```
/// use whisper::deploy::Deployment;
/// use whisper_simnet::{SimDuration, Substrate};
///
/// let dep = Deployment::student(3);
///
/// let mut sim = dep.boot_sim(42).expect("well-formed");
/// sim.net.advance(SimDuration::from_secs(2));
/// assert!(sim.net.metrics_snapshot().sent > 0);
///
/// let mut live = dep.boot_threadnet().expect("well-formed");
/// live.net.advance(SimDuration::from_millis(50));
/// assert!(live.net.metrics_snapshot().sent > 0);
/// live.net.shutdown();
/// ```
pub struct Deployment {
    /// The semantic Web service the proxy exposes.
    pub service: ServiceDescription,
    /// The shared deployment ontology.
    pub ontology: Ontology,
    /// B-peer groups, as blueprints.
    pub groups: Vec<GroupBlueprint>,
    /// Use a dedicated rendezvous peer instead of flooding.
    pub use_rendezvous: bool,
    /// B-peer tuning (strategy is overwritten to match the deployment).
    pub bpeer: BPeerConfig,
    /// Proxy tuning (strategy is overwritten to match the deployment).
    pub proxy: ProxyConfig,
    /// Clients to deploy.
    pub clients: Vec<ClientConfigTemplate>,
    /// Install a fresh [`AvailabilityLedger`] into every boot's b-peers.
    pub with_ledger: bool,
    /// Install the always-on flight recorder into every boot's nodes
    /// (ring budget [`whisper_obs::flight::DEFAULT_RING_BYTES`] per node).
    pub with_flight: bool,
}

/// A freshly booted deployment: the transport (any [`Substrate`]), where
/// the actors landed, and the observability handles wired at boot.
///
/// [`Substrate`]: whisper_simnet::Substrate
pub struct Booted<N> {
    /// The running (or, for the simulator, runnable) network.
    pub net: N,
    /// Where the scenario's actors landed.
    pub topology: Topology,
    /// The availability ledger, when the deployment asked for one.
    pub ledger: Option<AvailabilityLedger>,
    /// The flight-recorder plane, when the deployment asked for one
    /// (shared with `topology.flight`; handles are reference-counted).
    pub flight: Option<FlightPlane>,
}

impl Deployment {
    /// The paper's running example as a reusable deployment:
    /// `StudentManagement` served by one group of `replicas` operational-db
    /// b-peers, flood discovery, no clients, availability ledger on.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is zero.
    pub fn student(replicas: usize) -> Deployment {
        assert!(replicas > 0, "need at least one b-peer");
        Deployment {
            service: whisper_wsdl::samples::student_management(),
            ontology: whisper_ontology::samples::university_ontology(),
            groups: vec![GroupBlueprint::replicated(
                "StudentInfoGroup",
                "StudentInformation",
                replicas,
                Arc::new(|| Box::new(StudentRegistry::operational_db().with_sample_data())),
            )],
            use_rendezvous: false,
            bpeer: BPeerConfig::default(),
            proxy: ProxyConfig::default(),
            clients: Vec::new(),
            with_ledger: true,
            with_flight: true,
        }
    }

    /// Materializes one boot's wiring (fresh backends, fresh ledger).
    fn wiring(&self) -> Result<(ScenarioWiring, Option<AvailabilityLedger>), WhisperError> {
        let mut groups = Vec::with_capacity(self.groups.len());
        for b in &self.groups {
            if b.replicas == 0 {
                return Err(WhisperError::BadDeployment(format!(
                    "group {:?} has no b-peers",
                    b.name
                )));
            }
            let op = self.service.operation(&b.operation)?;
            let backends: Vec<Box<dyn ServiceBackend>> =
                (0..b.replicas).map(|_| (b.backend)()).collect();
            let mut spec = GroupSpec::from_operation(b.name.clone(), op, backends);
            spec.processing_time = b.processing_time;
            groups.push(spec);
        }
        let ledger = self.with_ledger.then(AvailabilityLedger::default);
        let wiring = ScenarioWiring {
            service: self.service.clone(),
            ontology: self.ontology.clone(),
            groups,
            use_rendezvous: self.use_rendezvous,
            firewall_bpeers: false,
            bpeer: self.bpeer.clone(),
            proxy: self.proxy.clone(),
            clients: self.clients.clone(),
            ledger: ledger.clone(),
            recorder: None,
            pulse: None,
            flight: self
                .with_flight
                .then_some(whisper_obs::flight::DEFAULT_RING_BYTES),
        };
        Ok((wiring, ledger))
    }

    /// Boots on the deterministic simulator (paper-testbed link model).
    ///
    /// # Errors
    ///
    /// See [`ScenarioWiring::wire`].
    pub fn boot_sim(&self, seed: u64) -> Result<Booted<SimNet<WhisperMsg>>, WhisperError> {
        let (wiring, ledger) = self.wiring()?;
        let mut net: SimNet<WhisperMsg> = SimNet::with_link(seed, SwitchedLan::paper_testbed());
        let topology = wiring.wire(&mut net)?;
        let flight = topology.flight.clone();
        Ok(Booted {
            net,
            topology,
            ledger,
            flight,
        })
    }

    /// Boots on OS threads and crossbeam channels (wall-clock time).
    ///
    /// # Errors
    ///
    /// See [`ScenarioWiring::wire`].
    pub fn boot_threadnet(&self) -> Result<Booted<ThreadNet<WhisperMsg>>, WhisperError> {
        let (wiring, ledger) = self.wiring()?;
        let mut builder = ThreadNetBuilder::new();
        let topology = wiring.wire(&mut builder)?;
        let flight = topology.flight.clone();
        Ok(Booted {
            net: builder.start(),
            topology,
            ledger,
            flight,
        })
    }

    /// Boots on real TCP loopback sockets (wall-clock time, every message
    /// encoded to bytes and framed).
    ///
    /// # Errors
    ///
    /// See [`ScenarioWiring::wire`]; additionally [`WhisperError::Io`] for
    /// socket errors while opening the loopback mesh.
    pub fn boot_tcp(&self) -> Result<Booted<TcpNet<WhisperMsg>>, WhisperError> {
        let (wiring, ledger) = self.wiring()?;
        let mut builder = TcpNetBuilder::new();
        let topology = wiring.wire(&mut builder)?;
        let flight = topology.flight.clone();
        Ok(Booted {
            net: builder.start()?,
            topology,
            ledger,
            flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_simnet::Substrate;

    /// The same deployment wires to the same topology on every substrate.
    #[test]
    fn layout_is_identical_across_substrates() {
        let dep = Deployment::student(3);
        let sim = dep.boot_sim(1).expect("sim boots");
        let live = dep.boot_threadnet().expect("threadnet boots");
        assert_eq!(sim.topology.node_count, live.topology.node_count);
        assert_eq!(sim.topology.proxy, live.topology.proxy);
        assert_eq!(sim.topology.all_bpeers(), live.topology.all_bpeers());
        assert_eq!(sim.topology.group_ids, live.topology.group_ids);
        live.net.shutdown();
    }

    /// The ledger handed back by boot is the one the b-peers feed.
    #[test]
    fn booted_ledger_is_live() {
        let dep = Deployment::student(3);
        let mut booted = dep.boot_sim(7).expect("sim boots");
        let ledger = booted.ledger.clone().expect("student() wires a ledger");
        Substrate::advance(&mut booted.net, SimDuration::from_secs(3));
        let report = ledger
            .service_report(
                booted.topology.group_ids[0].value(),
                Substrate::now(&booted.net),
            )
            .expect("b-peers fed the ledger");
        assert!(report.up, "group elected a coordinator: {report:?}");
        assert_eq!(report.coordinator, Some(3), "Bully winner is peer 3");
    }

    /// The always-on flight plane records substrate traffic and protocol
    /// milestones, and the merged timeline is causally ordered.
    #[test]
    fn booted_flight_plane_records_a_causal_timeline() {
        let dep = Deployment::student(3);
        let mut booted = dep.boot_sim(11).expect("sim boots");
        let flight = booted.flight.clone().expect("student() wires flight");
        assert_eq!(flight.handles().len(), booted.topology.node_count);
        Substrate::advance(&mut booted.net, SimDuration::from_secs(3));
        let timeline = flight.capture();
        assert!(!timeline.events().is_empty(), "rings saw traffic");
        assert!(timeline.causally_consistent(), "no recv before its send");
        // Protocol milestones made it in: the group elected a coordinator.
        let elected = timeline.events().iter().any(|e| {
            matches!(
                &e.kind,
                whisper_obs::FlightEventKind::Election { detail, .. } if detail == "elected"
            )
        });
        assert!(elected, "election milestone recorded");
    }

    #[test]
    fn blueprint_with_zero_replicas_is_rejected() {
        let mut dep = Deployment::student(2);
        dep.groups[0].replicas = 0;
        assert!(matches!(
            dep.boot_sim(0),
            Err(WhisperError::BadDeployment(_))
        ));
    }
}
