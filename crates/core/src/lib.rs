//! # whisper
//!
//! **Whisper** — a semantic Web service architecture for fault-tolerant B2B
//! integration, reproducing Cardoso's ICDCS 2006 system of the same name.
//!
//! Plain Web services (WSDL + SOAP) offer no availability mechanism beyond
//! `<soap:fault>`. Whisper backs every semantic Web service with a
//! peer-to-peer network of redundant **b-peers**: the service's SWS-proxy
//! discovers a *semantic b-peer group* whose advertised action/input/output
//! concepts match the service's WSDL-S annotations, binds to the group's
//! **coordinator** (elected with the Bully algorithm), and transparently
//! re-binds when the coordinator fails.
//!
//! The crate assembles the substrates into the full architecture:
//!
//! | Layer | Crate |
//! |-------|-------|
//! | XML | [`whisper_xml`] |
//! | Ontologies + matching | [`whisper_ontology`] |
//! | SOAP envelopes | [`whisper_soap`] |
//! | WSDL-S descriptions | [`whisper_wsdl`] |
//! | Simulated / threaded transport | [`whisper_simnet`] |
//! | JXTA-style P2P (advertisements, discovery) | [`whisper_p2p`] |
//! | Coordinator election | [`whisper_election`] |
//!
//! and adds the Whisper-specific pieces: the wire protocol
//! ([`WhisperMsg`]), service backends ([`ServiceBackend`] and the
//! student-registry implementations of the paper's running example), the
//! semantic matchmaker ([`matchmaker`]), the b-peer and SWS-proxy actors,
//! workload clients, and [`WhisperNet`] — a one-call deployment harness.
//!
//! # Quickstart
//!
//! ```
//! use whisper::{DeploymentConfig, WhisperNet};
//! use whisper_simnet::SimDuration;
//!
//! // Paper scenario: StudentManagement service backed by 3 b-peers.
//! let mut net = WhisperNet::student_scenario(3, 42);
//! net.run_for(SimDuration::from_secs(2)); // let the group elect + publish
//!
//! let client = net.client_ids()[0];
//! net.submit_student_request(client, "u1001");
//! net.run_for(SimDuration::from_secs(2));
//!
//! let stats = net.client_stats(client);
//! assert_eq!(stats.completed, 1);
//! assert_eq!(stats.faults, 0);
//! # let _ = DeploymentConfig::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bpeer;
mod client;
pub mod composition;
pub mod deploy;
mod directory;
mod error;
mod harness;
pub mod matchmaker;
mod msg;
mod proxy;
pub mod pulse;
mod qos;
mod routing;
pub mod trace;

pub use backend::{
    BackendError, ClaimProcessor, EchoBackend, FlakyBackend, OrderTracker, ServiceBackend,
    StudentRecord, StudentRegistry,
};
pub use bpeer::{BPeerActor, BPeerConfig};
pub use client::{ClientActor, ClientConfig, ClientStats, RequestOutcome, Workload};
pub use deploy::{
    BackendFactory, Booted, Deployment, GroupBlueprint, PulseWiring, ScenarioWiring, Topology,
};
pub use directory::Directory;
pub use error::WhisperError;
pub use harness::{ClientConfigTemplate, DeploymentConfig, GroupSpec, WhisperNet};
pub use msg::WhisperMsg;
pub use proxy::{ProxyConfig, ProxyStats, SwsProxyActor};
pub use pulse::{PulseCollectorActor, PulseConfig, SharedPulseStore};
pub use qos::{PeerHealth, QosMonitor, SelectionPolicy};
