//! The deployment harness: builds a complete Whisper network on the
//! simulator with one call.
//!
//! Node layout (insertion order is the directory order):
//! `[rendezvous?] [b-peers, group by group] [proxy] [clients...]`.

use crate::backend::{ServiceBackend, StudentRegistry};
use crate::bpeer::{BPeerActor, BPeerConfig};
use crate::client::{ClientActor, ClientStats};
use crate::deploy::{RendezvousActor, ScenarioWiring};
use crate::directory::Directory;
use crate::msg::WhisperMsg;
use crate::proxy::{ProxyConfig, ProxyStats, SwsProxyActor};
use crate::pulse::{self, PulseCollectorActor, PulseConfig, SharedPulseStore};
use crate::WhisperError;
use whisper_obs::{AvailabilityLedger, NodeSnapshot, Recorder};
use whisper_ontology::Ontology;
use whisper_p2p::{DiscoveryStrategy, GroupId, PeerId, QosSpec, SemanticAdv};
use whisper_simnet::{FaultPlan, Metrics, NodeId, SimDuration, SimNet, SimTime, SwitchedLan};
use whisper_soap::Envelope;
use whisper_wsdl::{Operation, ServiceDescription};
use whisper_xml::Element;

/// One semantic b-peer group to deploy: its advertisement concepts and one
/// backend per replica.
pub struct GroupSpec {
    /// Symbolic group name (the syntactic identity).
    pub name: String,
    /// Action concept advertised by the group.
    pub action: whisper_xml::QName,
    /// Input concepts, in signature order.
    pub inputs: Vec<whisper_xml::QName>,
    /// Output concepts, in signature order.
    pub outputs: Vec<whisper_xml::QName>,
    /// QoS claims placed on the advertisement, if any.
    pub qos: Option<QosSpec>,
    /// Per-group override of the replica service time.
    pub processing_time: Option<SimDuration>,
    /// One backend per b-peer; the group size is `backends.len()`.
    pub backends: Vec<Box<dyn ServiceBackend>>,
}

impl GroupSpec {
    /// Builds a spec whose concepts mirror a WSDL-S operation exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use whisper::{EchoBackend, GroupSpec, ServiceBackend};
    ///
    /// let service = whisper_wsdl::samples::student_management();
    /// let op = service.operation("StudentInformation").expect("sample op");
    /// let backends: Vec<Box<dyn ServiceBackend>> =
    ///     vec![Box::new(EchoBackend), Box::new(EchoBackend)];
    /// let group = GroupSpec::from_operation("InfoGroup", op, backends);
    /// assert_eq!(group.backends.len(), 2);
    /// assert_eq!(group.inputs.len(), 1);
    /// ```
    pub fn from_operation(
        name: impl Into<String>,
        op: &Operation,
        backends: Vec<Box<dyn ServiceBackend>>,
    ) -> Self {
        GroupSpec {
            name: name.into(),
            action: op.action.clone(),
            inputs: op.inputs.iter().map(|p| p.concept.clone()).collect(),
            outputs: op.outputs.iter().map(|p| p.concept.clone()).collect(),
            qos: None,
            processing_time: None,
            backends,
        }
    }
}

/// [`ClientConfig`](crate::client::ClientConfig) without the proxy node
/// (assigned by the harness).
#[derive(Debug, Clone)]
pub struct ClientConfigTemplate {
    /// Traffic generation mode.
    pub workload: crate::client::Workload,
    /// Request payloads, cycled.
    pub payloads: Vec<Element>,
    /// Stop after this many requests.
    pub total: Option<u64>,
    /// Client-side timeout.
    pub timeout: SimDuration,
    /// Delay before the first autonomous request.
    pub warmup: SimDuration,
}

impl Default for ClientConfigTemplate {
    fn default() -> Self {
        ClientConfigTemplate {
            workload: crate::client::Workload::Manual,
            payloads: Vec::new(),
            total: None,
            timeout: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(2),
        }
    }
}

/// Full configuration of a Whisper deployment.
pub struct DeploymentConfig {
    /// RNG seed for the simulator (reproducibility).
    pub seed: u64,
    /// The semantic Web service the proxy exposes.
    pub service: ServiceDescription,
    /// The shared deployment ontology.
    pub ontology: Ontology,
    /// B-peer groups to deploy.
    pub groups: Vec<GroupSpec>,
    /// Use a dedicated rendezvous peer instead of flooding.
    pub use_rendezvous: bool,
    /// Put every b-peer behind a firewall/NAT: its only reachable neighbour
    /// is the rendezvous peer, which doubles as its JXTA relay. Requires
    /// `use_rendezvous`; direct links are blocked on the simulator so any
    /// unrouted traffic shows up as partition drops.
    pub firewall_bpeers: bool,
    /// B-peer tuning (strategy is overwritten to match the deployment).
    pub bpeer: BPeerConfig,
    /// Proxy tuning (strategy is overwritten to match the deployment).
    pub proxy: ProxyConfig,
    /// Clients to deploy.
    pub clients: Vec<ClientConfigTemplate>,
    /// The link model.
    pub link: SwitchedLan,
}

impl Default for DeploymentConfig {
    /// The paper scenario skeleton: StudentManagement service over the
    /// university ontology, flood discovery, no groups or clients yet.
    fn default() -> Self {
        DeploymentConfig {
            seed: 0,
            service: whisper_wsdl::samples::student_management(),
            ontology: whisper_ontology::samples::university_ontology(),
            groups: Vec::new(),
            use_rendezvous: false,
            firewall_bpeers: false,
            bpeer: BPeerConfig::default(),
            proxy: ProxyConfig::default(),
            clients: vec![ClientConfigTemplate::default()],
            link: SwitchedLan::paper_testbed(),
        }
    }
}

/// A fully wired Whisper deployment on the deterministic simulator.
///
/// See the crate docs for a quickstart.
pub struct WhisperNet {
    net: SimNet<WhisperMsg>,
    directory: Directory,
    rendezvous_node: Option<NodeId>,
    group_nodes: Vec<Vec<NodeId>>,
    group_ids: Vec<GroupId>,
    group_advs: Vec<SemanticAdv>,
    proxy_node: NodeId,
    client_nodes: Vec<NodeId>,
    strategy: DiscoveryStrategy,
    bpeer_cfg: BPeerConfig,
    next_node_index: usize,
    obs: Option<Recorder>,
    ledger: Option<AvailabilityLedger>,
    pulse: Option<(SharedPulseStore, NodeId, SimDuration)>,
}

impl WhisperNet {
    /// Builds and wires a deployment.
    ///
    /// # Errors
    ///
    /// [`WhisperError::BadDeployment`] for structurally impossible
    /// configurations (no groups, empty group, unresolvable service
    /// annotations).
    pub fn build(cfg: DeploymentConfig) -> Result<Self, WhisperError> {
        let firewall_bpeers = cfg.firewall_bpeers;
        let bpeer_cfg = cfg.bpeer.clone();
        let wiring = ScenarioWiring {
            service: cfg.service,
            ontology: cfg.ontology,
            groups: cfg.groups,
            use_rendezvous: cfg.use_rendezvous,
            firewall_bpeers,
            bpeer: cfg.bpeer,
            proxy: cfg.proxy,
            clients: cfg.clients,
            ledger: None,
            recorder: None,
            pulse: None,
            flight: None,
        };
        let mut net: SimNet<WhisperMsg> = SimNet::with_link(cfg.seed, cfg.link);
        let topo = wiring.wire(&mut net)?;

        // Enforce the firewall on the wire: block every direct link that a
        // NATed b-peer must not use, leaving only b-peer↔rendezvous. Any
        // traffic that bypasses the relay then surfaces as a partition drop
        // in the metrics (asserted zero by the relay experiment). The
        // directory routes come from the wiring pass; the wire-level
        // blocks are a simulator capability, so they live here.
        if firewall_bpeers {
            let all_bpeers = topo.all_bpeers();
            let mut plan = FaultPlan::new();
            for (i, &a) in all_bpeers.iter().enumerate() {
                plan.block_at(a, topo.proxy, SimTime::ZERO);
                for &c in &topo.clients {
                    plan.block_at(a, c, SimTime::ZERO);
                }
                for &b in &all_bpeers[i + 1..] {
                    plan.block_at(a, b, SimTime::ZERO);
                }
            }
            net.apply_faults(&plan);
        }

        Ok(WhisperNet {
            net,
            directory: topo.directory,
            rendezvous_node: topo.rendezvous,
            group_nodes: topo.group_nodes,
            group_ids: topo.group_ids,
            group_advs: topo.group_advs,
            proxy_node: topo.proxy,
            client_nodes: topo.clients,
            strategy: topo.strategy,
            bpeer_cfg,
            next_node_index: topo.node_count,
            obs: None,
            ledger: None,
            pulse: None,
        })
    }

    /// Installs a shared observability [`Recorder`] into every actor of
    /// the deployment (proxy, b-peers, clients, rendezvous) plus the
    /// engine's network hook, and returns a handle to it. Idempotent:
    /// repeated calls return the same recorder.
    pub fn enable_obs(&mut self) -> Recorder {
        if let Some(rec) = &self.obs {
            return rec.clone();
        }
        let rec = Recorder::new();
        self.net.set_net_hook(Box::new(rec.clone()));
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .set_recorder(rec.clone());
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net.node_mut::<BPeerActor>(n).set_recorder(rec.clone());
        }
        let clients = self.client_nodes.clone();
        for c in clients {
            self.net
                .node_mut::<ClientActor>(c)
                .set_recorder(rec.clone());
        }
        if let Some(r) = self.rendezvous_node {
            let rv = self.net.node_mut::<RendezvousActor>(r);
            rv.disco.set_recorder(rec.clone());
            rv.obs = Some(rec.clone());
        }
        self.obs = Some(rec.clone());
        rec
    }

    /// The installed recorder, when [`WhisperNet::enable_obs`] has run.
    pub fn recorder(&self) -> Option<Recorder> {
        self.obs.clone()
    }

    /// Installs a shared [`AvailabilityLedger`] into every b-peer of the
    /// deployment and returns a handle to it. Heartbeats extend uptime,
    /// failure-detector suspicions open downtime intervals, and elections
    /// close the per-service ones — so reports are available *online*,
    /// while the deployment runs. Idempotent: repeated calls return the
    /// same ledger.
    pub fn enable_ledger(&mut self) -> AvailabilityLedger {
        if let Some(ledger) = &self.ledger {
            return ledger.clone();
        }
        let ledger = AvailabilityLedger::default();
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net
                .node_mut::<BPeerActor>(n)
                .set_ledger(ledger.clone());
        }
        self.ledger = Some(ledger.clone());
        ledger
    }

    /// The installed ledger, when [`WhisperNet::enable_ledger`] has run.
    pub fn ledger(&self) -> Option<AvailabilityLedger> {
        self.ledger.clone()
    }

    /// Deploys the pulse telemetry plane: adds a collector node and makes
    /// every actor (proxy, b-peers, rendezvous) push a
    /// [`WhisperMsg::PulseReport`] to it every `interval`. Returns the
    /// collector's shared store for windowed queries. Call before the
    /// deployment first runs (emission starts from each actor's
    /// `on_start`). Idempotent: repeated calls return the same store and
    /// ignore a changed interval.
    pub fn enable_pulse(&mut self, interval: SimDuration) -> SharedPulseStore {
        if let Some((store, _, _)) = &self.pulse {
            return store.clone();
        }
        // Bounds sized for long soaks: 256 windows/node, 128 traces, 4 MiB.
        let store = pulse::shared_store(256, 128, 4 << 20);
        let collector = self.net.add_node(PulseCollectorActor::new(store.clone()));
        self.next_node_index += 1;
        let cfg = PulseConfig::new(collector, interval);
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .set_pulse(cfg);
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net.node_mut::<BPeerActor>(n).set_pulse(cfg);
        }
        if let Some(r) = self.rendezvous_node {
            self.net.node_mut::<RendezvousActor>(r).pulse = Some(cfg);
        }
        self.pulse = Some((store.clone(), collector, interval));
        store
    }

    /// The pulse store, when [`WhisperNet::enable_pulse`] has run.
    pub fn pulse_store(&self) -> Option<SharedPulseStore> {
        self.pulse.as_ref().map(|(s, _, _)| s.clone())
    }

    /// The pulse collector node, when [`WhisperNet::enable_pulse`] has run.
    pub fn pulse_collector(&self) -> Option<NodeId> {
        self.pulse.as_ref().map(|&(_, n, _)| n)
    }

    /// The introspection snapshot of any non-client node, exactly as a
    /// [`WhisperMsg::ScopeRequest`] over the wire would see it.
    ///
    /// # Panics
    ///
    /// Panics when `node` is a client (clients serve no snapshot).
    pub fn scope_snapshot(&self, node: NodeId) -> NodeSnapshot {
        if node == self.proxy_node {
            return self.net.node::<SwsProxyActor>(node).scope_snapshot();
        }
        if Some(node) == self.rendezvous_node {
            return self.net.node::<RendezvousActor>(node).scope_snapshot();
        }
        assert!(
            !self.client_nodes.contains(&node),
            "clients serve no scope snapshot"
        );
        self.net.node::<BPeerActor>(node).scope_snapshot(self.now())
    }

    /// Adds a b-peer to group `gi` **at runtime** — the paper's §4.2:
    /// "b-peers may join or publish advertisements at different times …
    /// dynamically increasing the level of availability of a Web service".
    /// The newcomer gets the next peer id (so, being the highest, it will
    /// bully its way to coordinator), registers itself in the directory,
    /// and existing members learn it from its election and heartbeat
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range group index.
    pub fn add_bpeer(&mut self, gi: usize, backend: Box<dyn ServiceBackend>) -> NodeId {
        let group = self.group_ids[gi];
        let adv = self.group_advs[gi].clone();
        let peer = PeerId::new(
            self.directory
                .max_peer()
                .map(|p| p.value() + 1)
                .unwrap_or(1),
        );
        let node = NodeId::from_index(self.next_node_index);
        self.next_node_index += 1;
        self.directory.register(peer, node);

        let mut members: Vec<PeerId> = self.group_nodes[gi]
            .iter()
            .filter_map(|&n| self.directory.peer_of(n))
            .collect();
        members.push(peer);
        let mut cfg = self.bpeer_cfg.clone();
        cfg.strategy = self.strategy;
        let actor = BPeerActor::new(
            peer,
            group,
            members,
            adv,
            backend,
            self.directory.clone(),
            cfg,
        );
        let added = self.net.add_node(actor);
        debug_assert_eq!(added, node);
        if let Some(rec) = &self.obs {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_recorder(rec.clone());
        }
        if let Some(ledger) = &self.ledger {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_ledger(ledger.clone());
        }
        if let Some(&(_, collector, interval)) = self.pulse.as_ref() {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_pulse(PulseConfig::new(collector, interval));
        }
        self.group_nodes[gi].push(added);
        // the proxy may flood-query the newcomer too
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .add_known_peer(peer);
        added
    }

    /// The paper's running example: one `StudentManagement` service backed
    /// by one semantic group of `n_bpeers` replicas that alternate between
    /// the operational database and the data warehouse, plus one manual
    /// client. Flood discovery.
    ///
    /// # Panics
    ///
    /// Panics when `n_bpeers` is zero.
    pub fn student_scenario(n_bpeers: usize, seed: u64) -> WhisperNet {
        assert!(n_bpeers > 0, "need at least one b-peer");
        let service = whisper_wsdl::samples::student_management();
        let op = service
            .operation("StudentInformation")
            .expect("sample operation");
        let backends: Vec<Box<dyn ServiceBackend>> = (0..n_bpeers)
            .map(|i| -> Box<dyn ServiceBackend> {
                if i % 2 == 0 {
                    Box::new(StudentRegistry::operational_db().with_sample_data())
                } else {
                    Box::new(StudentRegistry::data_warehouse().with_sample_data())
                }
            })
            .collect();
        let group = GroupSpec::from_operation("StudentInfoGroup", op, backends);
        let cfg = DeploymentConfig {
            seed,
            groups: vec![group],
            ..DeploymentConfig::default()
        };
        WhisperNet::build(cfg).expect("student scenario is well-formed")
    }

    // --- Run control ---------------------------------------------------

    /// Runs `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.net.run_for(d);
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.net.run_until(deadline);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Network metrics so far.
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Resets the metrics (to measure one phase in isolation).
    pub fn reset_metrics(&mut self) {
        self.net.metrics_mut().reset();
    }

    /// Starts recording every message (see [`SimNet::enable_trace`]).
    pub fn enable_trace(&mut self) {
        self.net.enable_trace();
    }

    /// The recorded message log.
    pub fn trace(&self) -> &[whisper_simnet::TraceEvent] {
        self.net.trace()
    }

    // --- Topology accessors ---------------------------------------------

    /// The node hosting the Web service + SWS-proxy.
    pub fn proxy_node(&self) -> NodeId {
        self.proxy_node
    }

    /// Client nodes, in configuration order.
    pub fn client_ids(&self) -> &[NodeId] {
        &self.client_nodes
    }

    /// Nodes of group `gi`, in peer-id order.
    pub fn group_nodes(&self, gi: usize) -> &[NodeId] {
        &self.group_nodes[gi]
    }

    /// The rendezvous node when deployed with one.
    pub fn rendezvous_node(&self) -> Option<NodeId> {
        self.rendezvous_node
    }

    /// The peer↔node directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Number of deployed groups.
    pub fn group_count(&self) -> usize {
        self.group_nodes.len()
    }

    /// The id of group `gi`.
    pub fn group_id(&self, gi: usize) -> GroupId {
        self.group_ids[gi]
    }

    // --- Inspection -------------------------------------------------------

    /// The coordinator group `gi`'s live members currently agree on, if
    /// any (`None` during elections or total outage).
    pub fn coordinator_of(&self, gi: usize) -> Option<PeerId> {
        for &n in &self.group_nodes[gi] {
            if self.net.is_up(n) {
                let actor = self.net.node::<BPeerActor>(n);
                if actor.is_coordinator() {
                    return Some(actor.peer_id());
                }
            }
        }
        None
    }

    /// Read access to a b-peer actor.
    pub fn bpeer(&self, node: NodeId) -> &BPeerActor {
        self.net.node::<BPeerActor>(node)
    }

    /// Mutable access to a b-peer actor (fault injection on backends).
    pub fn bpeer_mut(&mut self, node: NodeId) -> &mut BPeerActor {
        self.net.node_mut::<BPeerActor>(node)
    }

    /// Proxy counters.
    pub fn proxy_stats(&self) -> ProxyStats {
        self.net.node::<SwsProxyActor>(self.proxy_node).stats()
    }

    /// The deployed SWS-proxy actor, for inspection (bindings, QoS
    /// monitors, the fail-slow detector's evidence).
    pub fn proxy(&self) -> &SwsProxyActor {
        self.net.node::<SwsProxyActor>(self.proxy_node)
    }

    /// Client counters.
    pub fn client_stats(&self, client: NodeId) -> ClientStats {
        self.net.node::<ClientActor>(client).stats().clone()
    }

    /// Per-request outcomes of a client.
    pub fn client_outcomes(&self, client: NodeId) -> Vec<crate::client::RequestOutcome> {
        self.net.node::<ClientActor>(client).outcomes().to_vec()
    }

    /// The most recent response envelope a client received.
    pub fn client_last_response(&self, client: NodeId) -> Option<String> {
        self.net
            .node::<ClientActor>(client)
            .last_response()
            .map(str::to_string)
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.net.is_up(node)
    }

    // --- Fault injection ---------------------------------------------------

    /// Kills the current coordinator of group `gi` immediately (a crash);
    /// returns the killed peer, or `None` when the group has no
    /// coordinator.
    pub fn kill_coordinator(&mut self, gi: usize) -> Option<PeerId> {
        let coord = self.coordinator_of(gi)?;
        let node = self.directory.node_of(coord)?;
        self.net.kill_node(node);
        Some(coord)
    }

    /// Kills an arbitrary node now (a crash).
    pub fn kill_node(&mut self, node: NodeId) {
        self.net.kill_node(node);
    }

    /// Restarts a crashed node now.
    pub fn restart_node(&mut self, node: NodeId) {
        self.net.restart_node(node);
    }

    /// Installs a pre-built fault plan.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        self.net.apply_faults(plan);
    }

    // --- Request injection --------------------------------------------------

    /// Injects `payload` as a SOAP request from `client`; returns the
    /// client-local request id.
    ///
    /// # Panics
    ///
    /// Panics when `client` is not a client node.
    pub fn submit_request(&mut self, client: NodeId, payload: Element) -> u64 {
        let now = self.net.now();
        let id = self
            .net
            .node_mut::<ClientActor>(client)
            .register_manual(now);
        // The client begins the trace itself once started; cover the
        // window before its `on_start` ran (injection at t=0).
        if let Some(rec) = &self.obs {
            let key = crate::trace::soap_key(client, id);
            if rec.lookup(crate::trace::NS_SOAP, key).is_none() {
                let req = rec.begin_request(format!("client{} #{id}", client.index()), now);
                rec.start_span("client.request", req, now);
                rec.bind(crate::trace::NS_SOAP, key, req);
                rec.incr("client.sent", 1);
            }
        }
        let envelope = Envelope::request(payload).to_xml_string();
        self.net.inject(
            client,
            self.proxy_node,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope,
            },
        );
        id
    }

    /// Injects the paper's `StudentInformation` request for `student_id`.
    pub fn submit_student_request(&mut self, client: NodeId, student_id: &str) -> u64 {
        let mut payload = Element::new("StudentInformation");
        payload.push_child(Element::with_text("StudentID", student_id));
        self.submit_request(client, payload)
    }

    /// Direct access to the underlying simulator for advanced experiments.
    pub fn sim(&mut self) -> &mut SimNet<WhisperMsg> {
        &mut self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_configs() {
        let cfg = DeploymentConfig::default();
        assert!(matches!(
            WhisperNet::build(cfg),
            Err(WhisperError::BadDeployment(_))
        ));
    }

    #[test]
    fn student_scenario_elects_highest_peer() {
        let mut net = WhisperNet::student_scenario(3, 7);
        net.run_for(SimDuration::from_secs(3));
        // peers are 1..=3 (proxy is 4): the Bully winner is peer 3
        assert_eq!(net.coordinator_of(0), Some(PeerId::new(3)));
        // every member agrees
        for &n in net.group_nodes(0) {
            assert_eq!(net.bpeer(n).coordinator(), Some(PeerId::new(3)));
        }
    }

    #[test]
    fn traced_request_produces_a_full_span_tree() {
        let mut net = WhisperNet::student_scenario(3, 11);
        let rec = net.enable_obs();
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));

        let req = rec
            .requests()
            .into_iter()
            .find(|r| r.label.starts_with("client"))
            .expect("the manual request is traced")
            .id;
        let spans = rec.spans_of(req);
        let find = |name: &str| spans.iter().find(|s| s.name == name);
        let root = find("client.request").expect("root span");
        let proxy = find("proxy.request").expect("proxy span");
        let invoke = find("proxy.invoke").expect("invoke span");
        let exec = find("backend.execute").expect("execute span");
        assert!(find("proxy.bind").is_some());
        assert!(find("proxy.discover").is_some(), "cold request discovers");
        // causal nesting across nodes
        assert_eq!(proxy.parent, Some(root.id));
        assert_eq!(exec.parent, Some(invoke.id));
        // every span of the request closed, children inside parents
        for s in &spans {
            let end = s.end.expect("span closed");
            assert!(s.start <= end);
            if let Some(pid) = s.parent {
                let parent = spans.iter().find(|p| p.id == pid).unwrap();
                assert!(parent.start <= s.start && end <= parent.end.unwrap());
            }
        }
        // network hook counted traffic; export round-trips losslessly
        let export = rec.export();
        let counter = |name: &str| {
            export
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert!(counter("net.sent.heartbeat") > 0);
        assert!(counter("net.sent.peer-request") > 0);
        let parsed = whisper_obs::Export::parse_jsonl(&export.to_jsonl()).expect("parses");
        assert_eq!(parsed, export);
    }

    #[test]
    fn pulse_plane_collects_frames_from_every_node() {
        let mut net = WhisperNet::student_scenario(3, 13);
        net.enable_obs();
        let store = net.enable_pulse(SimDuration::from_millis(500));
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));

        let store = store.lock().unwrap();
        // every b-peer and the proxy reported (nodes 0..=2 are b-peers,
        // node 3 is the proxy)
        assert_eq!(store.nodes(), vec![0, 1, 2, 3]);
        assert!(store.frames_ingested() >= 4 * 10, "6 s at 500 ms intervals");
        let agg = store.aggregate(64);
        // the proxy's recorder-derived counters and RTT series arrived
        assert_eq!(agg.counter("proxy.requests"), 1);
        assert_eq!(agg.counter("client.sent"), 1);
        assert!(agg.counter("tx.heartbeat") > 0, "b-peer traffic counters");
        let p99 = agg.quantile_us("proxy.rtt", 99.0).expect("rtt series");
        assert!(p99 > 0);
        // memory bound respected
        assert!(store.approx_bytes() <= store.max_bytes());
    }

    /// The student scenario with a custom proxy configuration.
    fn student_scenario_with_proxy(n_bpeers: usize, seed: u64, proxy: ProxyConfig) -> WhisperNet {
        let service = whisper_wsdl::samples::student_management();
        let op = service
            .operation("StudentInformation")
            .expect("sample operation");
        let backends: Vec<Box<dyn ServiceBackend>> = (0..n_bpeers)
            .map(|_| -> Box<dyn ServiceBackend> {
                Box::new(StudentRegistry::operational_db().with_sample_data())
            })
            .collect();
        let group = GroupSpec::from_operation("StudentInfoGroup", op, backends);
        let cfg = DeploymentConfig {
            seed,
            groups: vec![group],
            proxy,
            ..DeploymentConfig::default()
        };
        WhisperNet::build(cfg).expect("well-formed")
    }

    #[test]
    fn fail_slow_coordinator_is_demoted_without_an_election() {
        let mut net = student_scenario_with_proxy(
            3,
            21,
            ProxyConfig {
                fail_slow_after: Some(SimDuration::from_millis(5)),
                fail_slow_cooldown: SimDuration::from_secs(5),
                ..ProxyConfig::default()
            },
        );
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        let coord_node = *net.group_nodes(0).last().unwrap();
        let coord_peer = net.coordinator_of(0).expect("elected");

        // one healthy request establishes the binding
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(2));
        assert_eq!(net.proxy_stats().fail_slow_rebinds, 0);

        // the coordinator turns gray: up, answering, but 100x slower
        net.sim()
            .apply_action(whisper_simnet::FaultAction::Slow(coord_node, 10_000));
        for _ in 0..3 {
            net.submit_student_request(client, "u1004");
            net.run_for(SimDuration::from_secs(1));
        }
        let stats = net.proxy_stats();
        assert_eq!(stats.fail_slow_rebinds, 1, "stats: {stats:?}");
        assert_eq!(stats.rebinds, 0, "no timeout fired: {stats:?}");
        // demotion is not an election: the group still agrees on the
        // same coordinator
        assert_eq!(net.coordinator_of(0), Some(coord_peer));

        // traffic now bypasses the slow coordinator via delegated forwards
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(1));
        let gid = net.group_id(0);
        assert!(net.proxy().binding_is_delegated(gid));
        assert_ne!(net.proxy().binding_of(gid), Some(coord_peer));
        let cs = net.client_stats(client);
        assert_eq!(cs.completed, 5, "every request answered: {cs:?}");
        assert_eq!(cs.faults, 0);

        // after the cooldown the coordinator earns its traffic back
        net.sim()
            .apply_action(whisper_simnet::FaultAction::Slow(coord_node, 100));
        net.run_for(SimDuration::from_secs(6));
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(1));
        assert!(!net.proxy().binding_is_delegated(gid));
        assert_eq!(net.proxy().binding_of(gid), Some(coord_peer));
    }

    #[test]
    fn deadline_budget_caps_the_retry_ladder() {
        let mut net = student_scenario_with_proxy(
            3,
            23,
            ProxyConfig {
                deadline: Some(SimDuration::from_millis(800)),
                request_timeout: SimDuration::from_millis(250),
                // must close before the 250 ms request timeout fires
                gather_window: SimDuration::from_millis(50),
                ..ProxyConfig::default()
            },
        );
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        // warm the caches and the binding so the dead deployment exercises
        // the re-bind ladder rather than the no-group fast fault
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(2));
        for &n in net.group_nodes(0).to_vec().iter() {
            net.kill_node(n);
        }
        let sent_at = net.now();
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(5));
        let stats = net.proxy_stats();
        assert_eq!(stats.deadline_faults, 1, "stats: {stats:?}");
        let cs = net.client_stats(client);
        assert_eq!(cs.completed, 2);
        assert_eq!(cs.faults, 1);
        let done = net.client_outcomes(client)[1]
            .completed_at
            .expect("faulted in time");
        // budget 800 ms + at most one 250 ms timeout rung of overshoot;
        // without the budget this deployment burns 10 x 250 ms attempts
        assert!(
            done.since(sent_at) <= SimDuration::from_millis(1300),
            "deadline fault came at +{:?}",
            done.since(sent_at)
        );
    }

    #[test]
    fn duplicated_client_requests_are_answered_exactly_once() {
        let mut net = WhisperNet::student_scenario(3, 29);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        let proxy_node = net.proxy_node();

        let mut payload = Element::new("StudentInformation");
        payload.push_child(Element::with_text("StudentID", "u1004"));
        let envelope = Envelope::request(payload.clone()).to_xml_string();

        // duplicate of a completed request: re-served from the answer cache
        let id = net.submit_request(client, payload.clone());
        net.run_for(SimDuration::from_secs(2));
        net.sim().inject(
            client,
            proxy_node,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope: envelope.clone(),
            },
        );
        net.run_for(SimDuration::from_secs(1));
        let stats = net.proxy_stats();
        assert_eq!(stats.duplicate_requests, 1, "stats: {stats:?}");
        assert_eq!(stats.responses_forwarded, 1, "no second execution");

        // duplicate racing the original: joins the in-flight pipeline
        let id2 = net.submit_request(client, payload);
        net.sim().inject(
            client,
            proxy_node,
            WhisperMsg::SoapRequest {
                request_id: id2,
                envelope,
            },
        );
        net.run_for(SimDuration::from_secs(2));
        let stats = net.proxy_stats();
        assert_eq!(stats.duplicate_requests, 2, "stats: {stats:?}");
        assert_eq!(stats.responses_forwarded, 2);
        let cs = net.client_stats(client);
        assert_eq!(cs.completed, 2, "each request completed once: {cs:?}");
    }

    #[test]
    fn end_to_end_request_succeeds() {
        let mut net = WhisperNet::student_scenario(3, 11);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));
        let stats = net.client_stats(client);
        assert_eq!(stats.completed, 1, "stats: {stats:?}");
        assert_eq!(stats.faults, 0);
        assert_eq!(stats.rtt.count(), 1);
    }
}
