//! The deployment harness: builds a complete Whisper network on the
//! simulator with one call.
//!
//! Node layout (insertion order is the directory order):
//! `[rendezvous?] [b-peers, group by group] [proxy] [clients...]`.

use crate::backend::{ServiceBackend, StudentRegistry};
use crate::bpeer::{BPeerActor, BPeerConfig};
use crate::client::{ClientActor, ClientConfig, ClientStats};
use crate::directory::Directory;
use crate::msg::WhisperMsg;
use crate::proxy::{ProxyConfig, ProxyStats, SwsProxyActor};
use crate::pulse::{self, PulseCollectorActor, PulseConfig, SharedPulseStore};
use crate::WhisperError;
use whisper_obs::{AvailabilityLedger, NodeRole, NodeSnapshot, PulseEmitter, Recorder};
use whisper_ontology::Ontology;
use whisper_p2p::{
    DiscoveryService, DiscoveryStrategy, GroupId, P2pMessage, PeerId, QosSpec, SemanticAdv,
};
use whisper_simnet::{
    Actor, Context, FaultPlan, Metrics, NodeId, SimDuration, SimNet, SimTime, SwitchedLan, Wire,
};
use whisper_soap::Envelope;
use whisper_wsdl::{Operation, ServiceDescription};
use whisper_xml::Element;

/// One semantic b-peer group to deploy: its advertisement concepts and one
/// backend per replica.
pub struct GroupSpec {
    /// Symbolic group name (the syntactic identity).
    pub name: String,
    /// Action concept advertised by the group.
    pub action: whisper_xml::QName,
    /// Input concepts, in signature order.
    pub inputs: Vec<whisper_xml::QName>,
    /// Output concepts, in signature order.
    pub outputs: Vec<whisper_xml::QName>,
    /// QoS claims placed on the advertisement, if any.
    pub qos: Option<QosSpec>,
    /// Per-group override of the replica service time.
    pub processing_time: Option<SimDuration>,
    /// One backend per b-peer; the group size is `backends.len()`.
    pub backends: Vec<Box<dyn ServiceBackend>>,
}

impl GroupSpec {
    /// Builds a spec whose concepts mirror a WSDL-S operation exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use whisper::{EchoBackend, GroupSpec, ServiceBackend};
    ///
    /// let service = whisper_wsdl::samples::student_management();
    /// let op = service.operation("StudentInformation").expect("sample op");
    /// let backends: Vec<Box<dyn ServiceBackend>> =
    ///     vec![Box::new(EchoBackend), Box::new(EchoBackend)];
    /// let group = GroupSpec::from_operation("InfoGroup", op, backends);
    /// assert_eq!(group.backends.len(), 2);
    /// assert_eq!(group.inputs.len(), 1);
    /// ```
    pub fn from_operation(
        name: impl Into<String>,
        op: &Operation,
        backends: Vec<Box<dyn ServiceBackend>>,
    ) -> Self {
        GroupSpec {
            name: name.into(),
            action: op.action.clone(),
            inputs: op.inputs.iter().map(|p| p.concept.clone()).collect(),
            outputs: op.outputs.iter().map(|p| p.concept.clone()).collect(),
            qos: None,
            processing_time: None,
            backends,
        }
    }
}

/// [`ClientConfig`] without the proxy node (assigned by the harness).
#[derive(Debug, Clone)]
pub struct ClientConfigTemplate {
    /// Traffic generation mode.
    pub workload: crate::client::Workload,
    /// Request payloads, cycled.
    pub payloads: Vec<Element>,
    /// Stop after this many requests.
    pub total: Option<u64>,
    /// Client-side timeout.
    pub timeout: SimDuration,
    /// Delay before the first autonomous request.
    pub warmup: SimDuration,
}

impl Default for ClientConfigTemplate {
    fn default() -> Self {
        ClientConfigTemplate {
            workload: crate::client::Workload::Manual,
            payloads: Vec::new(),
            total: None,
            timeout: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(2),
        }
    }
}

/// Full configuration of a Whisper deployment.
pub struct DeploymentConfig {
    /// RNG seed for the simulator (reproducibility).
    pub seed: u64,
    /// The semantic Web service the proxy exposes.
    pub service: ServiceDescription,
    /// The shared deployment ontology.
    pub ontology: Ontology,
    /// B-peer groups to deploy.
    pub groups: Vec<GroupSpec>,
    /// Use a dedicated rendezvous peer instead of flooding.
    pub use_rendezvous: bool,
    /// Put every b-peer behind a firewall/NAT: its only reachable neighbour
    /// is the rendezvous peer, which doubles as its JXTA relay. Requires
    /// `use_rendezvous`; direct links are blocked on the simulator so any
    /// unrouted traffic shows up as partition drops.
    pub firewall_bpeers: bool,
    /// B-peer tuning (strategy is overwritten to match the deployment).
    pub bpeer: BPeerConfig,
    /// Proxy tuning (strategy is overwritten to match the deployment).
    pub proxy: ProxyConfig,
    /// Clients to deploy.
    pub clients: Vec<ClientConfigTemplate>,
    /// The link model.
    pub link: SwitchedLan,
}

impl Default for DeploymentConfig {
    /// The paper scenario skeleton: StudentManagement service over the
    /// university ontology, flood discovery, no groups or clients yet.
    fn default() -> Self {
        DeploymentConfig {
            seed: 0,
            service: whisper_wsdl::samples::student_management(),
            ontology: whisper_ontology::samples::university_ontology(),
            groups: Vec::new(),
            use_rendezvous: false,
            firewall_bpeers: false,
            bpeer: BPeerConfig::default(),
            proxy: ProxyConfig::default(),
            clients: vec![ClientConfigTemplate::default()],
            link: SwitchedLan::paper_testbed(),
        }
    }
}

/// A minimal rendezvous peer: caches publications, answers queries.
struct RendezvousActor {
    peer: PeerId,
    directory: Directory,
    disco: DiscoveryService,
    obs: Option<Recorder>,
    /// Per-kind traffic counters for the introspection snapshot.
    tx: Metrics,
    rx: Metrics,
    /// Telemetry plane: where/how often to push [`WhisperMsg::PulseReport`]s.
    pulse: Option<PulseConfig>,
    pulse_emitter: PulseEmitter,
}

/// The rendezvous' only timer: its pulse interval.
const RDV_TOKEN_PULSE: u64 = 1;

impl RendezvousActor {
    /// The introspection snapshot served to [`WhisperMsg::ScopeRequest`]:
    /// cache size, traffic counters and the obs registry dump.
    fn scope_snapshot(&self) -> NodeSnapshot {
        let mut snap = NodeSnapshot::empty(NodeRole::Rendezvous, self.peer.value());
        snap.queue_depth = self.disco.cache().len() as u64;
        snap.sent = self.tx.snapshot();
        snap.received = self.rx.snapshot();
        if let Some(rec) = &self.obs {
            snap.registry = rec.registry_dump();
        }
        snap
    }

    /// Builds and ships one telemetry frame, then re-arms the interval.
    fn emit_pulse(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        let Some(cfg) = self.pulse else {
            return;
        };
        let mut counters = pulse::traffic_counters(&self.tx, &self.rx);
        counters.sort();
        let gauges = vec![(
            "rendezvous.cache".to_string(),
            self.disco.cache().len() as i64,
        )];
        let delta = self.pulse_emitter.frame(
            ctx.now().as_micros(),
            cfg.interval.as_micros(),
            counters,
            gauges,
            Vec::new(),
            0,
        );
        let msg = WhisperMsg::PulseReport {
            delta: Box::new(delta),
            outliers: Vec::new(),
        };
        self.tx.on_send(msg.kind(), msg.wire_size());
        ctx.send(cfg.collector, msg);
        ctx.set_timer(cfg.interval, RDV_TOKEN_PULSE);
    }
}

impl Actor<WhisperMsg> for RendezvousActor {
    fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        if let Some(cfg) = self.pulse {
            ctx.set_timer(cfg.interval, RDV_TOKEN_PULSE);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WhisperMsg>, token: u64) {
        if token == RDV_TOKEN_PULSE {
            self.emit_pulse(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        let Some((from, msg)) =
            crate::routing::unwrap_or_forward(&self.directory, self.peer, ctx, from, msg)
        else {
            return;
        };
        self.rx.on_send(msg.kind(), msg.wire_size());
        if let WhisperMsg::ScopeRequest { request_id } = msg {
            let reply = WhisperMsg::ScopeResponse {
                request_id,
                snapshot: Box::new(self.scope_snapshot()),
            };
            self.tx.on_send(reply.kind(), reply.wire_size());
            match self.directory.peer_of(from) {
                Some(peer) => {
                    crate::routing::send_routed(&self.directory, self.peer, ctx, peer, reply)
                }
                None => ctx.send(from, reply),
            }
            return;
        }
        if let WhisperMsg::P2p(m) = msg {
            let origin = match &m {
                P2pMessage::Query { origin, .. } => *origin,
                P2pMessage::Heartbeat { from, .. } => *from,
                _ => self.peer,
            };
            if let (Some(rec), P2pMessage::Query { id, .. }) = (&self.obs, &m) {
                if let Some(req) = rec.lookup(crate::trace::NS_QUERY, *id) {
                    rec.instant("rendezvous.lookup", req, ctx.now());
                }
                rec.incr("rendezvous.queries", 1);
            }
            let (sends, _) = self.disco.handle_message(origin, m, ctx.now());
            for s in sends {
                let msg = WhisperMsg::P2p(s.msg);
                self.tx.on_send(msg.kind(), msg.wire_size());
                crate::routing::send_routed(&self.directory, self.peer, ctx, s.to, msg);
            }
        }
    }
}

/// A fully wired Whisper deployment on the deterministic simulator.
///
/// See the crate docs for a quickstart.
pub struct WhisperNet {
    net: SimNet<WhisperMsg>,
    directory: Directory,
    rendezvous_node: Option<NodeId>,
    group_nodes: Vec<Vec<NodeId>>,
    group_ids: Vec<GroupId>,
    group_advs: Vec<SemanticAdv>,
    proxy_node: NodeId,
    client_nodes: Vec<NodeId>,
    strategy: DiscoveryStrategy,
    bpeer_cfg: BPeerConfig,
    next_node_index: usize,
    obs: Option<Recorder>,
    ledger: Option<AvailabilityLedger>,
    pulse: Option<(SharedPulseStore, NodeId, SimDuration)>,
}

impl WhisperNet {
    /// Builds and wires a deployment.
    ///
    /// # Errors
    ///
    /// [`WhisperError::BadDeployment`] for structurally impossible
    /// configurations (no groups, empty group, unresolvable service
    /// annotations).
    pub fn build(cfg: DeploymentConfig) -> Result<Self, WhisperError> {
        if cfg.groups.is_empty() {
            return Err(WhisperError::BadDeployment(
                "no b-peer groups configured".into(),
            ));
        }
        if cfg.groups.iter().any(|g| g.backends.is_empty()) {
            return Err(WhisperError::BadDeployment("a group has no b-peers".into()));
        }
        if cfg.firewall_bpeers && !cfg.use_rendezvous {
            return Err(WhisperError::BadDeployment(
                "firewalled b-peers need a rendezvous to relay through".into(),
            ));
        }
        // Validate annotations up front (the proxy would panic otherwise).
        cfg.service.resolve_all(&cfg.ontology)?;

        // --- Assign node indices and peer ids -------------------------
        let mut next_node = 0usize;
        let rendezvous_idx = cfg.use_rendezvous.then(|| {
            let i = next_node;
            next_node += 1;
            i
        });
        let mut group_node_idx: Vec<Vec<usize>> = Vec::new();
        for g in &cfg.groups {
            let idxs = (0..g.backends.len())
                .map(|_| {
                    let i = next_node;
                    next_node += 1;
                    i
                })
                .collect();
            group_node_idx.push(idxs);
        }
        let proxy_idx = next_node;
        next_node += 1;
        let client_idx: Vec<usize> = (0..cfg.clients.len())
            .map(|_| {
                let i = next_node;
                next_node += 1;
                i
            })
            .collect();

        // Peers: every node except clients. PeerId = node index + 1.
        let peer_of = |idx: usize| PeerId::new(idx as u64 + 1);
        let mut pairs = Vec::new();
        if let Some(r) = rendezvous_idx {
            pairs.push((peer_of(r), NodeId::from_index(r)));
        }
        for idxs in &group_node_idx {
            for &i in idxs {
                pairs.push((peer_of(i), NodeId::from_index(i)));
            }
        }
        pairs.push((peer_of(proxy_idx), NodeId::from_index(proxy_idx)));
        let mut routes = Vec::new();
        if cfg.firewall_bpeers {
            let relay = peer_of(rendezvous_idx.expect("validated above"));
            for idxs in &group_node_idx {
                for &i in idxs {
                    routes.push((peer_of(i), relay));
                }
            }
        }
        let directory = Directory::with_routes(pairs, routes);

        let strategy = match rendezvous_idx {
            Some(r) => DiscoveryStrategy::Rendezvous(peer_of(r)),
            None => DiscoveryStrategy::Flood,
        };

        // --- Instantiate the network ----------------------------------
        let mut net: SimNet<WhisperMsg> = SimNet::with_link(cfg.seed, cfg.link);

        if let Some(r) = rendezvous_idx {
            let rdv_peer = peer_of(r);
            let added = net.add_node(RendezvousActor {
                peer: rdv_peer,
                directory: directory.clone(),
                disco: DiscoveryService::new(rdv_peer, DiscoveryStrategy::Rendezvous(rdv_peer)),
                obs: None,
                tx: Metrics::new(),
                rx: Metrics::new(),
                pulse: None,
                pulse_emitter: PulseEmitter::new(),
            });
            debug_assert_eq!(added, NodeId::from_index(r));
        }

        let mut group_nodes = Vec::new();
        let mut group_ids = Vec::new();
        let mut group_advs = Vec::new();
        for (gi, spec) in cfg.groups.into_iter().enumerate() {
            let group = GroupId::new(gi as u64 + 1);
            let idxs = &group_node_idx[gi];
            let members: Vec<PeerId> = idxs.iter().map(|&i| peer_of(i)).collect();
            let adv = SemanticAdv {
                group,
                name: spec.name.clone(),
                action: spec.action.clone(),
                inputs: spec.inputs.clone(),
                outputs: spec.outputs.clone(),
                qos: spec.qos,
            };
            let mut nodes = Vec::new();
            for (pi, backend) in spec.backends.into_iter().enumerate() {
                let peer = peer_of(idxs[pi]);
                let mut bp_cfg = cfg.bpeer.clone();
                bp_cfg.strategy = strategy;
                if let Some(pt) = spec.processing_time {
                    bp_cfg.processing_time = pt;
                }
                let actor = BPeerActor::new(
                    peer,
                    group,
                    members.clone(),
                    adv.clone(),
                    backend,
                    directory.clone(),
                    bp_cfg,
                );
                let added = net.add_node(actor);
                debug_assert_eq!(added, NodeId::from_index(idxs[pi]));
                nodes.push(added);
            }
            group_nodes.push(nodes);
            group_ids.push(group);
            group_advs.push(adv);
        }

        let proxy_peer = peer_of(proxy_idx);
        let mut proxy_cfg = cfg.proxy.clone();
        proxy_cfg.strategy = strategy;
        let mut proxy = SwsProxyActor::new(
            proxy_peer,
            &cfg.service,
            cfg.ontology,
            directory.clone(),
            proxy_cfg,
        );
        for idxs in &group_node_idx {
            for &i in idxs {
                proxy.add_known_peer(peer_of(i));
            }
        }
        if let Some(r) = rendezvous_idx {
            proxy.add_known_peer(peer_of(r));
        }
        let proxy_node = net.add_node(proxy);
        debug_assert_eq!(proxy_node, NodeId::from_index(proxy_idx));

        let mut client_nodes = Vec::new();
        for (ci, tpl) in cfg.clients.into_iter().enumerate() {
            let cc = ClientConfig {
                proxy_node,
                workload: tpl.workload,
                payloads: tpl.payloads,
                total: tpl.total,
                timeout: tpl.timeout,
                warmup: tpl.warmup,
            };
            let added = net.add_node(ClientActor::new(cc));
            debug_assert_eq!(added, NodeId::from_index(client_idx[ci]));
            client_nodes.push(added);
        }

        // Enforce the firewall on the wire: block every direct link that a
        // NATed b-peer must not use, leaving only b-peer↔rendezvous. Any
        // traffic that bypasses the relay then surfaces as a partition drop
        // in the metrics (asserted zero by the relay experiment).
        if cfg.firewall_bpeers {
            let all_bpeers: Vec<NodeId> = group_nodes.iter().flatten().copied().collect();
            let mut plan = FaultPlan::new();
            for (i, &a) in all_bpeers.iter().enumerate() {
                plan.block_at(a, proxy_node, SimTime::ZERO);
                for &c in &client_nodes {
                    plan.block_at(a, c, SimTime::ZERO);
                }
                for &b in &all_bpeers[i + 1..] {
                    plan.block_at(a, b, SimTime::ZERO);
                }
            }
            net.apply_faults(&plan);
        }

        Ok(WhisperNet {
            net,
            directory,
            rendezvous_node: rendezvous_idx.map(NodeId::from_index),
            group_nodes,
            group_ids,
            group_advs,
            proxy_node,
            client_nodes,
            strategy,
            bpeer_cfg: cfg.bpeer,
            next_node_index: next_node,
            obs: None,
            ledger: None,
            pulse: None,
        })
    }

    /// Installs a shared observability [`Recorder`] into every actor of
    /// the deployment (proxy, b-peers, clients, rendezvous) plus the
    /// engine's network hook, and returns a handle to it. Idempotent:
    /// repeated calls return the same recorder.
    pub fn enable_obs(&mut self) -> Recorder {
        if let Some(rec) = &self.obs {
            return rec.clone();
        }
        let rec = Recorder::new();
        self.net.set_net_hook(Box::new(rec.clone()));
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .set_recorder(rec.clone());
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net.node_mut::<BPeerActor>(n).set_recorder(rec.clone());
        }
        let clients = self.client_nodes.clone();
        for c in clients {
            self.net
                .node_mut::<ClientActor>(c)
                .set_recorder(rec.clone());
        }
        if let Some(r) = self.rendezvous_node {
            let rv = self.net.node_mut::<RendezvousActor>(r);
            rv.disco.set_recorder(rec.clone());
            rv.obs = Some(rec.clone());
        }
        self.obs = Some(rec.clone());
        rec
    }

    /// The installed recorder, when [`WhisperNet::enable_obs`] has run.
    pub fn recorder(&self) -> Option<Recorder> {
        self.obs.clone()
    }

    /// Installs a shared [`AvailabilityLedger`] into every b-peer of the
    /// deployment and returns a handle to it. Heartbeats extend uptime,
    /// failure-detector suspicions open downtime intervals, and elections
    /// close the per-service ones — so reports are available *online*,
    /// while the deployment runs. Idempotent: repeated calls return the
    /// same ledger.
    pub fn enable_ledger(&mut self) -> AvailabilityLedger {
        if let Some(ledger) = &self.ledger {
            return ledger.clone();
        }
        let ledger = AvailabilityLedger::default();
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net
                .node_mut::<BPeerActor>(n)
                .set_ledger(ledger.clone());
        }
        self.ledger = Some(ledger.clone());
        ledger
    }

    /// The installed ledger, when [`WhisperNet::enable_ledger`] has run.
    pub fn ledger(&self) -> Option<AvailabilityLedger> {
        self.ledger.clone()
    }

    /// Deploys the pulse telemetry plane: adds a collector node and makes
    /// every actor (proxy, b-peers, rendezvous) push a
    /// [`WhisperMsg::PulseReport`] to it every `interval`. Returns the
    /// collector's shared store for windowed queries. Call before the
    /// deployment first runs (emission starts from each actor's
    /// `on_start`). Idempotent: repeated calls return the same store and
    /// ignore a changed interval.
    pub fn enable_pulse(&mut self, interval: SimDuration) -> SharedPulseStore {
        if let Some((store, _, _)) = &self.pulse {
            return store.clone();
        }
        // Bounds sized for long soaks: 256 windows/node, 128 traces, 4 MiB.
        let store = pulse::shared_store(256, 128, 4 << 20);
        let collector = self.net.add_node(PulseCollectorActor::new(store.clone()));
        self.next_node_index += 1;
        let cfg = PulseConfig::new(collector, interval);
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .set_pulse(cfg);
        let bpeers: Vec<NodeId> = self.group_nodes.iter().flatten().copied().collect();
        for n in bpeers {
            self.net.node_mut::<BPeerActor>(n).set_pulse(cfg);
        }
        if let Some(r) = self.rendezvous_node {
            self.net.node_mut::<RendezvousActor>(r).pulse = Some(cfg);
        }
        self.pulse = Some((store.clone(), collector, interval));
        store
    }

    /// The pulse store, when [`WhisperNet::enable_pulse`] has run.
    pub fn pulse_store(&self) -> Option<SharedPulseStore> {
        self.pulse.as_ref().map(|(s, _, _)| s.clone())
    }

    /// The pulse collector node, when [`WhisperNet::enable_pulse`] has run.
    pub fn pulse_collector(&self) -> Option<NodeId> {
        self.pulse.as_ref().map(|&(_, n, _)| n)
    }

    /// The introspection snapshot of any non-client node, exactly as a
    /// [`WhisperMsg::ScopeRequest`] over the wire would see it.
    ///
    /// # Panics
    ///
    /// Panics when `node` is a client (clients serve no snapshot).
    pub fn scope_snapshot(&self, node: NodeId) -> NodeSnapshot {
        if node == self.proxy_node {
            return self.net.node::<SwsProxyActor>(node).scope_snapshot();
        }
        if Some(node) == self.rendezvous_node {
            return self.net.node::<RendezvousActor>(node).scope_snapshot();
        }
        assert!(
            !self.client_nodes.contains(&node),
            "clients serve no scope snapshot"
        );
        self.net.node::<BPeerActor>(node).scope_snapshot(self.now())
    }

    /// Adds a b-peer to group `gi` **at runtime** — the paper's §4.2:
    /// "b-peers may join or publish advertisements at different times …
    /// dynamically increasing the level of availability of a Web service".
    /// The newcomer gets the next peer id (so, being the highest, it will
    /// bully its way to coordinator), registers itself in the directory,
    /// and existing members learn it from its election and heartbeat
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range group index.
    pub fn add_bpeer(&mut self, gi: usize, backend: Box<dyn ServiceBackend>) -> NodeId {
        let group = self.group_ids[gi];
        let adv = self.group_advs[gi].clone();
        let peer = PeerId::new(
            self.directory
                .max_peer()
                .map(|p| p.value() + 1)
                .unwrap_or(1),
        );
        let node = NodeId::from_index(self.next_node_index);
        self.next_node_index += 1;
        self.directory.register(peer, node);

        let mut members: Vec<PeerId> = self.group_nodes[gi]
            .iter()
            .filter_map(|&n| self.directory.peer_of(n))
            .collect();
        members.push(peer);
        let mut cfg = self.bpeer_cfg.clone();
        cfg.strategy = self.strategy;
        let actor = BPeerActor::new(
            peer,
            group,
            members,
            adv,
            backend,
            self.directory.clone(),
            cfg,
        );
        let added = self.net.add_node(actor);
        debug_assert_eq!(added, node);
        if let Some(rec) = &self.obs {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_recorder(rec.clone());
        }
        if let Some(ledger) = &self.ledger {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_ledger(ledger.clone());
        }
        if let Some(&(_, collector, interval)) = self.pulse.as_ref() {
            self.net
                .node_mut::<BPeerActor>(added)
                .set_pulse(PulseConfig::new(collector, interval));
        }
        self.group_nodes[gi].push(added);
        // the proxy may flood-query the newcomer too
        self.net
            .node_mut::<SwsProxyActor>(self.proxy_node)
            .add_known_peer(peer);
        added
    }

    /// The paper's running example: one `StudentManagement` service backed
    /// by one semantic group of `n_bpeers` replicas that alternate between
    /// the operational database and the data warehouse, plus one manual
    /// client. Flood discovery.
    ///
    /// # Panics
    ///
    /// Panics when `n_bpeers` is zero.
    pub fn student_scenario(n_bpeers: usize, seed: u64) -> WhisperNet {
        assert!(n_bpeers > 0, "need at least one b-peer");
        let service = whisper_wsdl::samples::student_management();
        let op = service
            .operation("StudentInformation")
            .expect("sample operation");
        let backends: Vec<Box<dyn ServiceBackend>> = (0..n_bpeers)
            .map(|i| -> Box<dyn ServiceBackend> {
                if i % 2 == 0 {
                    Box::new(StudentRegistry::operational_db().with_sample_data())
                } else {
                    Box::new(StudentRegistry::data_warehouse().with_sample_data())
                }
            })
            .collect();
        let group = GroupSpec::from_operation("StudentInfoGroup", op, backends);
        let cfg = DeploymentConfig {
            seed,
            groups: vec![group],
            ..DeploymentConfig::default()
        };
        WhisperNet::build(cfg).expect("student scenario is well-formed")
    }

    // --- Run control ---------------------------------------------------

    /// Runs `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.net.run_for(d);
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.net.run_until(deadline);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Network metrics so far.
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }

    /// Resets the metrics (to measure one phase in isolation).
    pub fn reset_metrics(&mut self) {
        self.net.metrics_mut().reset();
    }

    /// Starts recording every message (see [`SimNet::enable_trace`]).
    pub fn enable_trace(&mut self) {
        self.net.enable_trace();
    }

    /// The recorded message log.
    pub fn trace(&self) -> &[whisper_simnet::TraceEvent] {
        self.net.trace()
    }

    // --- Topology accessors ---------------------------------------------

    /// The node hosting the Web service + SWS-proxy.
    pub fn proxy_node(&self) -> NodeId {
        self.proxy_node
    }

    /// Client nodes, in configuration order.
    pub fn client_ids(&self) -> &[NodeId] {
        &self.client_nodes
    }

    /// Nodes of group `gi`, in peer-id order.
    pub fn group_nodes(&self, gi: usize) -> &[NodeId] {
        &self.group_nodes[gi]
    }

    /// The rendezvous node when deployed with one.
    pub fn rendezvous_node(&self) -> Option<NodeId> {
        self.rendezvous_node
    }

    /// The peer↔node directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Number of deployed groups.
    pub fn group_count(&self) -> usize {
        self.group_nodes.len()
    }

    /// The id of group `gi`.
    pub fn group_id(&self, gi: usize) -> GroupId {
        self.group_ids[gi]
    }

    // --- Inspection -------------------------------------------------------

    /// The coordinator group `gi`'s live members currently agree on, if
    /// any (`None` during elections or total outage).
    pub fn coordinator_of(&self, gi: usize) -> Option<PeerId> {
        for &n in &self.group_nodes[gi] {
            if self.net.is_up(n) {
                let actor = self.net.node::<BPeerActor>(n);
                if actor.is_coordinator() {
                    return Some(actor.peer_id());
                }
            }
        }
        None
    }

    /// Read access to a b-peer actor.
    pub fn bpeer(&self, node: NodeId) -> &BPeerActor {
        self.net.node::<BPeerActor>(node)
    }

    /// Mutable access to a b-peer actor (fault injection on backends).
    pub fn bpeer_mut(&mut self, node: NodeId) -> &mut BPeerActor {
        self.net.node_mut::<BPeerActor>(node)
    }

    /// Proxy counters.
    pub fn proxy_stats(&self) -> ProxyStats {
        self.net.node::<SwsProxyActor>(self.proxy_node).stats()
    }

    /// Client counters.
    pub fn client_stats(&self, client: NodeId) -> ClientStats {
        self.net.node::<ClientActor>(client).stats().clone()
    }

    /// Per-request outcomes of a client.
    pub fn client_outcomes(&self, client: NodeId) -> Vec<crate::client::RequestOutcome> {
        self.net.node::<ClientActor>(client).outcomes().to_vec()
    }

    /// The most recent response envelope a client received.
    pub fn client_last_response(&self, client: NodeId) -> Option<String> {
        self.net
            .node::<ClientActor>(client)
            .last_response()
            .map(str::to_string)
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.net.is_up(node)
    }

    // --- Fault injection ---------------------------------------------------

    /// Crashes the current coordinator of group `gi` immediately; returns
    /// the crashed peer, or `None` when the group has no coordinator.
    pub fn crash_coordinator(&mut self, gi: usize) -> Option<PeerId> {
        let coord = self.coordinator_of(gi)?;
        let node = self.directory.node_of(coord)?;
        self.net.crash_now(node);
        Some(coord)
    }

    /// Crashes an arbitrary node now.
    pub fn crash_node(&mut self, node: NodeId) {
        self.net.crash_now(node);
    }

    /// Restarts a crashed node now.
    pub fn restart_node(&mut self, node: NodeId) {
        self.net.restart_now(node);
    }

    /// Installs a pre-built fault plan.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        self.net.apply_faults(plan);
    }

    // --- Request injection --------------------------------------------------

    /// Injects `payload` as a SOAP request from `client`; returns the
    /// client-local request id.
    ///
    /// # Panics
    ///
    /// Panics when `client` is not a client node.
    pub fn submit_request(&mut self, client: NodeId, payload: Element) -> u64 {
        let now = self.net.now();
        let id = self
            .net
            .node_mut::<ClientActor>(client)
            .register_manual(now);
        // The client begins the trace itself once started; cover the
        // window before its `on_start` ran (injection at t=0).
        if let Some(rec) = &self.obs {
            let key = crate::trace::soap_key(client, id);
            if rec.lookup(crate::trace::NS_SOAP, key).is_none() {
                let req = rec.begin_request(format!("client{} #{id}", client.index()), now);
                rec.start_span("client.request", req, now);
                rec.bind(crate::trace::NS_SOAP, key, req);
                rec.incr("client.sent", 1);
            }
        }
        let envelope = Envelope::request(payload).to_xml_string();
        self.net.inject(
            client,
            self.proxy_node,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope,
            },
        );
        id
    }

    /// Injects the paper's `StudentInformation` request for `student_id`.
    pub fn submit_student_request(&mut self, client: NodeId, student_id: &str) -> u64 {
        let mut payload = Element::new("StudentInformation");
        payload.push_child(Element::with_text("StudentID", student_id));
        self.submit_request(client, payload)
    }

    /// Direct access to the underlying simulator for advanced experiments.
    pub fn sim(&mut self) -> &mut SimNet<WhisperMsg> {
        &mut self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_configs() {
        let cfg = DeploymentConfig::default();
        assert!(matches!(
            WhisperNet::build(cfg),
            Err(WhisperError::BadDeployment(_))
        ));
    }

    #[test]
    fn student_scenario_elects_highest_peer() {
        let mut net = WhisperNet::student_scenario(3, 7);
        net.run_for(SimDuration::from_secs(3));
        // peers are 1..=3 (proxy is 4): the Bully winner is peer 3
        assert_eq!(net.coordinator_of(0), Some(PeerId::new(3)));
        // every member agrees
        for &n in net.group_nodes(0) {
            assert_eq!(net.bpeer(n).coordinator(), Some(PeerId::new(3)));
        }
    }

    #[test]
    fn traced_request_produces_a_full_span_tree() {
        let mut net = WhisperNet::student_scenario(3, 11);
        let rec = net.enable_obs();
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));

        let req = rec
            .requests()
            .into_iter()
            .find(|r| r.label.starts_with("client"))
            .expect("the manual request is traced")
            .id;
        let spans = rec.spans_of(req);
        let find = |name: &str| spans.iter().find(|s| s.name == name);
        let root = find("client.request").expect("root span");
        let proxy = find("proxy.request").expect("proxy span");
        let invoke = find("proxy.invoke").expect("invoke span");
        let exec = find("backend.execute").expect("execute span");
        assert!(find("proxy.bind").is_some());
        assert!(find("proxy.discover").is_some(), "cold request discovers");
        // causal nesting across nodes
        assert_eq!(proxy.parent, Some(root.id));
        assert_eq!(exec.parent, Some(invoke.id));
        // every span of the request closed, children inside parents
        for s in &spans {
            let end = s.end.expect("span closed");
            assert!(s.start <= end);
            if let Some(pid) = s.parent {
                let parent = spans.iter().find(|p| p.id == pid).unwrap();
                assert!(parent.start <= s.start && end <= parent.end.unwrap());
            }
        }
        // network hook counted traffic; export round-trips losslessly
        let export = rec.export();
        let counter = |name: &str| {
            export
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert!(counter("net.sent.heartbeat") > 0);
        assert!(counter("net.sent.peer-request") > 0);
        let parsed = whisper_obs::Export::parse_jsonl(&export.to_jsonl()).expect("parses");
        assert_eq!(parsed, export);
    }

    #[test]
    fn pulse_plane_collects_frames_from_every_node() {
        let mut net = WhisperNet::student_scenario(3, 13);
        net.enable_obs();
        let store = net.enable_pulse(SimDuration::from_millis(500));
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));

        let store = store.lock().unwrap();
        // every b-peer and the proxy reported (nodes 0..=2 are b-peers,
        // node 3 is the proxy)
        assert_eq!(store.nodes(), vec![0, 1, 2, 3]);
        assert!(store.frames_ingested() >= 4 * 10, "6 s at 500 ms intervals");
        let agg = store.aggregate(64);
        // the proxy's recorder-derived counters and RTT series arrived
        assert_eq!(agg.counter("proxy.requests"), 1);
        assert_eq!(agg.counter("client.sent"), 1);
        assert!(agg.counter("tx.heartbeat") > 0, "b-peer traffic counters");
        let p99 = agg.quantile_us("proxy.rtt", 99.0).expect("rtt series");
        assert!(p99 > 0);
        // memory bound respected
        assert!(store.approx_bytes() <= store.max_bytes());
    }

    #[test]
    fn end_to_end_request_succeeds() {
        let mut net = WhisperNet::student_scenario(3, 11);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1004");
        net.run_for(SimDuration::from_secs(3));
        let stats = net.client_stats(client);
        assert_eq!(stats.completed, 1, "stats: {stats:?}");
        assert_eq!(stats.faults, 0);
        assert_eq!(stats.rtt.count(), 1);
    }
}
