//! The pulse telemetry plane: emission config, the collector actor, and
//! span-tree capture.
//!
//! Every Whisper actor (proxy, b-peer, rendezvous) can be given a
//! [`PulseConfig`]; it then emits a [`WhisperMsg::PulseReport`] frame to
//! the collector node on a fixed interval, carrying the counters and
//! latency samples accumulated since its previous frame plus any outlier
//! span trees its tail sampler kept. The [`PulseCollectorActor`] ingests
//! reports into a shared [`PulseStore`] that exporters (the Prometheus
//! endpoint, `whisper-top --live`) read without touching the actors.

use crate::msg::WhisperMsg;
use std::sync::{Arc, Mutex};
use whisper_obs::{OutlierTrace, PulseSpan, Recorder, RequestId};
use whisper_simnet::{Actor, Context, NodeId, SimDuration, SimTime};

pub use whisper_obs::pulse::PulseStore;

/// Where and how often an actor pushes its telemetry frames.
#[derive(Debug, Clone, Copy)]
pub struct PulseConfig {
    /// The node running the [`PulseCollectorActor`].
    pub collector: NodeId,
    /// Frame interval; align it with the deployment's heartbeat period so
    /// telemetry rides the same cadence as liveness traffic.
    pub interval: SimDuration,
}

impl PulseConfig {
    /// A config emitting to `collector` every `interval`.
    pub fn new(collector: NodeId, interval: SimDuration) -> Self {
        PulseConfig {
            collector,
            interval,
        }
    }
}

/// A [`PulseStore`] shared between the collector actor and exporters.
pub type SharedPulseStore = Arc<Mutex<PulseStore>>;

/// Creates a shared store with the given bounds (see [`PulseStore::new`]).
pub fn shared_store(
    per_node_windows: usize,
    max_outliers: usize,
    max_bytes: usize,
) -> SharedPulseStore {
    Arc::new(Mutex::new(PulseStore::new(
        per_node_windows,
        max_outliers,
        max_bytes,
    )))
}

/// The collector: ingests [`WhisperMsg::PulseReport`] frames into a shared
/// store, keyed by the reporting node. Ignores every other message, so it
/// can sit on any deployment without joining the protocol.
pub struct PulseCollectorActor {
    store: SharedPulseStore,
}

impl PulseCollectorActor {
    /// A collector writing into `store`.
    pub fn new(store: SharedPulseStore) -> Self {
        PulseCollectorActor { store }
    }

    /// The shared store handle (for exporters and tests).
    pub fn store(&self) -> SharedPulseStore {
        self.store.clone()
    }
}

impl Actor<WhisperMsg> for PulseCollectorActor {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        if let WhisperMsg::PulseReport { delta, outliers } = msg {
            let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
            store.ingest(from.index() as u64, *delta, outliers);
        }
    }
}

/// Traffic counters of one node for a pulse frame, derived from its
/// private per-kind tallies: totals plus a per-kind breakdown of sends.
pub(crate) fn traffic_counters(
    tx: &whisper_simnet::Metrics,
    rx: &whisper_simnet::Metrics,
) -> Vec<(String, u64)> {
    let mut out = vec![
        ("tx.msgs".to_string(), tx.messages_sent()),
        ("tx.bytes".to_string(), tx.bytes_sent()),
        ("rx.msgs".to_string(), rx.messages_sent()),
        ("rx.bytes".to_string(), rx.bytes_sent()),
    ];
    for (kind, &n) in tx.sent_by_kind() {
        out.push((format!("tx.{kind}"), n));
    }
    out
}

/// Captures one request's span tree from a recorder as a wire-encodable
/// [`OutlierTrace`]. Span ids are remapped to dense indices; open spans
/// (a b-peer that never answered) are clamped to `now`.
pub fn capture_trace(
    rec: &Recorder,
    req: RequestId,
    label: String,
    total_us: u64,
    now: SimTime,
) -> OutlierTrace {
    let spans = rec.spans_of(req);
    let index_of = |id: whisper_obs::SpanId| spans.iter().position(|s| s.id == id);
    let pulse_spans = spans
        .iter()
        .map(|s| PulseSpan {
            id: index_of(s.id).expect("span is in its own list") as u32,
            parent: s.parent.and_then(index_of).map(|i| i as u32),
            name: s.name.clone().into_owned(),
            start_us: s.start.as_micros(),
            end_us: s.end.unwrap_or(now).as_micros(),
        })
        .collect();
    OutlierTrace {
        request: req.value(),
        label,
        total_us,
        spans: pulse_spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_remaps_span_ids_and_clamps_open_spans() {
        let rec = Recorder::new();
        // An unrelated request first, so recorder span ids are offset from
        // the captured trace's dense indices.
        let other = rec.begin_request("other", SimTime::ZERO);
        rec.start_span("noise", other, SimTime::ZERO);
        let req = rec.begin_request("r", SimTime::from_micros(10));
        let root = rec.start_span("proxy.request", req, SimTime::from_micros(10));
        let child = rec.start_span("proxy.invoke", req, SimTime::from_micros(20));
        rec.end_span(child, SimTime::from_micros(400));
        // root stays open: a request captured mid-flight
        let _ = root;
        let t = capture_trace(&rec, req, "op".into(), 490, SimTime::from_micros(500));
        assert_eq!(t.total_us, 490);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].id, 0);
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans[0].end_us, 500, "open span clamps to capture time");
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[1].end_us, 400);
    }

    #[test]
    fn collector_ingests_reports_and_ignores_noise() {
        use whisper_simnet::{SimNet, Wire};
        let store = shared_store(8, 8, 1 << 20);
        let mut net = SimNet::new(1);
        let collector = net.add_node(PulseCollectorActor::new(store.clone()));
        struct Emitter {
            to: NodeId,
        }
        impl Actor<WhisperMsg> for Emitter {
            fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
                let delta = whisper_obs::MetricsDelta {
                    seq: 0,
                    now_us: 0,
                    interval_us: 1_000_000,
                    counters: vec![("requests".into(), 7)],
                    gauges: vec![],
                    hists: vec![],
                    spans_dropped: 0,
                };
                ctx.send(
                    self.to,
                    WhisperMsg::PulseReport {
                        delta: Box::new(delta),
                        outliers: vec![],
                    },
                );
                // noise the collector must ignore
                ctx.send(self.to, WhisperMsg::ScopeRequest { request_id: 1 });
            }
            fn on_message(
                &mut self,
                _ctx: &mut Context<'_, WhisperMsg>,
                _from: NodeId,
                _msg: WhisperMsg,
            ) {
            }
        }
        let emitter = net.add_node(Emitter { to: collector });
        net.run_until_quiescent();
        let store = store.lock().unwrap();
        assert_eq!(store.frames_ingested(), 1);
        assert_eq!(store.nodes(), vec![emitter.index() as u64]);
        assert_eq!(store.aggregate(4).counter("requests"), 7);
        // sanity: the report has a kind for per-kind metrics
        assert_eq!(
            WhisperMsg::PulseReport {
                delta: Box::new(whisper_obs::MetricsDelta::default()),
                outliers: vec![]
            }
            .kind(),
            "pulse-report"
        );
    }
}
