//! QoS-aware selection policies and observed-QoS bookkeeping (the paper's
//! section 2.4: "this demands management of QoS metrics for peers").
//!
//! Advertisements carry *claimed* QoS; the proxy additionally *measures*
//! what each group actually delivers. [`SelectionPolicy::Adaptive`] prefers
//! the measurements once enough samples exist, so a group that oversells
//! itself loses traffic to an honestly better one.

use std::collections::HashMap;
use whisper_p2p::GroupId;
use whisper_simnet::SimDuration;

/// How the SWS-proxy chooses among semantically acceptable b-peer groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Highest semantic match score; ties broken by advertised QoS utility.
    /// The default and the policy the paper's section 2.4 sketches.
    #[default]
    SemanticThenQos,
    /// Advertised QoS utility only (among semantically acceptable
    /// candidates).
    QosOnly,
    /// Observed QoS once enough measurements exist, advertised QoS before
    /// that — the adaptive extension of section 2.4's metric management.
    Adaptive,
    /// Uniformly random among acceptable candidates — the baseline the
    /// QoS-selection experiment compares against.
    Random,
    /// First acceptable candidate in advertisement order (JXTA's naive
    /// "first hit" behaviour).
    FirstFound,
}

/// Per-group measurements accumulated by the proxy.
#[derive(Debug, Clone, Copy, Default)]
struct GroupObservation {
    /// Exponentially weighted moving average of response latency (µs).
    ewma_latency_us: f64,
    /// Total responses observed.
    responses: u64,
    /// Responses that were faults.
    faults: u64,
}

/// Observed-QoS bookkeeping for the groups a proxy has used.
///
/// # Examples
///
/// ```
/// use whisper::QosMonitor;
/// use whisper_p2p::GroupId;
/// use whisper_simnet::SimDuration;
///
/// let mut m = QosMonitor::new(3);
/// let g = GroupId::new(1);
/// assert!(m.observed_utility(g).is_none()); // too few samples
/// for _ in 0..3 {
///     m.record_response(g, SimDuration::from_millis(2), false);
/// }
/// assert!(m.observed_utility(g).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct QosMonitor {
    observations: HashMap<GroupId, GroupObservation>,
    /// Samples required before observations outrank advertisements.
    min_samples: u64,
    /// EWMA smoothing factor for latency.
    alpha: f64,
}

impl QosMonitor {
    /// Creates a monitor that trusts its measurements after `min_samples`
    /// responses per group.
    pub fn new(min_samples: u64) -> Self {
        QosMonitor {
            observations: HashMap::new(),
            min_samples,
            alpha: 0.3,
        }
    }

    /// Records one response from `group`: its latency and whether it was a
    /// fault.
    pub fn record_response(&mut self, group: GroupId, latency: SimDuration, fault: bool) {
        let o = self.observations.entry(group).or_default();
        let l = latency.as_micros() as f64;
        o.ewma_latency_us = if o.responses == 0 {
            l
        } else {
            self.alpha * l + (1.0 - self.alpha) * o.ewma_latency_us
        };
        o.responses += 1;
        if fault {
            o.faults += 1;
        }
    }

    /// Number of responses observed from `group`.
    pub fn sample_count(&self, group: GroupId) -> u64 {
        self.observations
            .get(&group)
            .map(|o| o.responses)
            .unwrap_or(0)
    }

    /// Observed fraction of non-fault responses, once any sample exists.
    pub fn observed_reliability(&self, group: GroupId) -> Option<f64> {
        let o = self.observations.get(&group)?;
        if o.responses == 0 {
            return None;
        }
        Some(1.0 - o.faults as f64 / o.responses as f64)
    }

    /// A utility comparable to
    /// [`QosSpec::utility`](whisper_p2p::QosSpec::utility) (minus the cost
    /// term, which is not observable), computed from measurements; `None`
    /// until `min_samples` responses arrived.
    pub fn observed_utility(&self, group: GroupId) -> Option<f64> {
        let o = self.observations.get(&group)?;
        if o.responses < self.min_samples {
            return None;
        }
        let reliability = 1.0 - o.faults as f64 / o.responses as f64;
        let speed = 5.0 / (1.0 + o.ewma_latency_us / 1_000.0);
        Some(reliability * 10.0 + speed)
    }
}

impl Default for QosMonitor {
    /// Trusts measurements after 5 samples.
    fn default() -> Self {
        QosMonitor::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_semantic_then_qos() {
        assert_eq!(SelectionPolicy::default(), SelectionPolicy::SemanticThenQos);
    }

    #[test]
    fn utility_needs_min_samples() {
        let mut m = QosMonitor::new(3);
        let g = GroupId::new(1);
        m.record_response(g, SimDuration::from_millis(1), false);
        m.record_response(g, SimDuration::from_millis(1), false);
        assert_eq!(m.observed_utility(g), None);
        assert_eq!(m.sample_count(g), 2);
        m.record_response(g, SimDuration::from_millis(1), false);
        assert!(m.observed_utility(g).is_some());
    }

    #[test]
    fn faults_reduce_utility_latency_reduces_utility() {
        let mut fast = QosMonitor::new(1);
        let mut slow = QosMonitor::new(1);
        let mut flaky = QosMonitor::new(1);
        let g = GroupId::new(1);
        for _ in 0..10 {
            fast.record_response(g, SimDuration::from_micros(300), false);
            slow.record_response(g, SimDuration::from_millis(20), false);
            flaky.record_response(g, SimDuration::from_micros(300), true);
        }
        let (f, s, fl) = (
            fast.observed_utility(g).expect("samples"),
            slow.observed_utility(g).expect("samples"),
            flaky.observed_utility(g).expect("samples"),
        );
        assert!(f > s, "fast {f} should beat slow {s}");
        assert!(f > fl, "reliable {f} should beat flaky {fl}");
        assert!(s > fl, "reliability dominates speed: {s} vs {fl}");
    }

    #[test]
    fn ewma_tracks_recent_latency() {
        let mut m = QosMonitor::new(1);
        let g = GroupId::new(1);
        for _ in 0..20 {
            m.record_response(g, SimDuration::from_millis(1), false);
        }
        let before = m.observed_utility(g).expect("samples");
        for _ in 0..20 {
            m.record_response(g, SimDuration::from_millis(50), false);
        }
        let after = m.observed_utility(g).expect("samples");
        assert!(after < before, "degradation must show: {after} vs {before}");
    }

    #[test]
    fn reliability_accessor() {
        let mut m = QosMonitor::new(1);
        let g = GroupId::new(2);
        assert_eq!(m.observed_reliability(g), None);
        m.record_response(g, SimDuration::from_millis(1), false);
        m.record_response(g, SimDuration::from_millis(1), true);
        assert_eq!(m.observed_reliability(g), Some(0.5));
    }
}
