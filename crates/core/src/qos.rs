//! QoS-aware selection policies and observed-QoS bookkeeping (the paper's
//! section 2.4: "this demands management of QoS metrics for peers").
//!
//! Advertisements carry *claimed* QoS; the proxy additionally *measures*
//! what each group actually delivers. [`SelectionPolicy::Adaptive`] prefers
//! the measurements once enough samples exist, so a group that oversells
//! itself loses traffic to an honestly better one.

use std::collections::HashMap;
use whisper_p2p::{GroupId, PeerId};
use whisper_simnet::SimDuration;

/// How the SWS-proxy chooses among semantically acceptable b-peer groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Highest semantic match score; ties broken by advertised QoS utility.
    /// The default and the policy the paper's section 2.4 sketches.
    #[default]
    SemanticThenQos,
    /// Advertised QoS utility only (among semantically acceptable
    /// candidates).
    QosOnly,
    /// Observed QoS once enough measurements exist, advertised QoS before
    /// that — the adaptive extension of section 2.4's metric management.
    Adaptive,
    /// Uniformly random among acceptable candidates — the baseline the
    /// QoS-selection experiment compares against.
    Random,
    /// First acceptable candidate in advertisement order (JXTA's naive
    /// "first hit" behaviour).
    FirstFound,
}

/// Per-group measurements accumulated by the proxy.
#[derive(Debug, Clone, Copy, Default)]
struct GroupObservation {
    /// Exponentially weighted moving average of response latency (µs).
    ewma_latency_us: f64,
    /// Total responses observed.
    responses: u64,
    /// Responses that were faults.
    faults: u64,
}

/// Observed-QoS bookkeeping for the groups a proxy has used.
///
/// # Examples
///
/// ```
/// use whisper::QosMonitor;
/// use whisper_p2p::GroupId;
/// use whisper_simnet::SimDuration;
///
/// let mut m = QosMonitor::new(3);
/// let g = GroupId::new(1);
/// assert!(m.observed_utility(g).is_none()); // too few samples
/// for _ in 0..3 {
///     m.record_response(g, SimDuration::from_millis(2), false);
/// }
/// assert!(m.observed_utility(g).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct QosMonitor {
    observations: HashMap<GroupId, GroupObservation>,
    /// Samples required before observations outrank advertisements.
    min_samples: u64,
    /// EWMA smoothing factor for latency.
    alpha: f64,
}

impl QosMonitor {
    /// Creates a monitor that trusts its measurements after `min_samples`
    /// responses per group.
    pub fn new(min_samples: u64) -> Self {
        QosMonitor {
            observations: HashMap::new(),
            min_samples,
            alpha: 0.3,
        }
    }

    /// Records one response from `group`: its latency and whether it was a
    /// fault.
    pub fn record_response(&mut self, group: GroupId, latency: SimDuration, fault: bool) {
        let o = self.observations.entry(group).or_default();
        let l = latency.as_micros() as f64;
        o.ewma_latency_us = if o.responses == 0 {
            l
        } else {
            self.alpha * l + (1.0 - self.alpha) * o.ewma_latency_us
        };
        o.responses += 1;
        if fault {
            o.faults += 1;
        }
    }

    /// Number of responses observed from `group`.
    pub fn sample_count(&self, group: GroupId) -> u64 {
        self.observations
            .get(&group)
            .map(|o| o.responses)
            .unwrap_or(0)
    }

    /// Observed fraction of non-fault responses, once any sample exists.
    pub fn observed_reliability(&self, group: GroupId) -> Option<f64> {
        let o = self.observations.get(&group)?;
        if o.responses == 0 {
            return None;
        }
        Some(1.0 - o.faults as f64 / o.responses as f64)
    }

    /// A utility comparable to
    /// [`QosSpec::utility`](whisper_p2p::QosSpec::utility) (minus the cost
    /// term, which is not observable), computed from measurements; `None`
    /// until `min_samples` responses arrived.
    pub fn observed_utility(&self, group: GroupId) -> Option<f64> {
        let o = self.observations.get(&group)?;
        if o.responses < self.min_samples {
            return None;
        }
        let reliability = 1.0 - o.faults as f64 / o.responses as f64;
        let speed = 5.0 / (1.0 + o.ewma_latency_us / 1_000.0);
        Some(reliability * 10.0 + speed)
    }
}

impl Default for QosMonitor {
    /// Trusts measurements after 5 samples.
    fn default() -> Self {
        QosMonitor::new(5)
    }
}

/// Per-peer latency record backing [`PeerHealth`].
#[derive(Debug, Clone, Copy, Default)]
struct PeerObservation {
    ewma_latency_us: f64,
    responses: u64,
}

/// Per-*peer* response-latency EWMA — the fail-slow detector's evidence.
///
/// [`QosMonitor`] aggregates per *group* and cannot tell a slow coordinator
/// from a slow group; this tracker attributes each response to the peer
/// that produced it, so the proxy can demote one gray member while the
/// rest of its group keeps serving.
///
/// # Examples
///
/// ```
/// use whisper::PeerHealth;
/// use whisper_p2p::PeerId;
/// use whisper_simnet::SimDuration;
///
/// let mut h = PeerHealth::new(3);
/// let p = PeerId::new(7);
/// let slow = SimDuration::from_millis(50);
/// for _ in 0..3 {
///     h.record_response(p, slow);
/// }
/// assert!(h.is_fail_slow(p, SimDuration::from_millis(10)));
/// assert!(!h.is_fail_slow(p, SimDuration::from_millis(100)));
/// ```
#[derive(Debug, Clone)]
pub struct PeerHealth {
    observations: HashMap<PeerId, PeerObservation>,
    /// Samples required before a peer can be declared fail-slow.
    min_samples: u64,
    /// EWMA smoothing factor for latency.
    alpha: f64,
}

impl PeerHealth {
    /// Creates a tracker that can flag a peer after `min_samples`
    /// responses.
    pub fn new(min_samples: u64) -> Self {
        PeerHealth {
            observations: HashMap::new(),
            min_samples,
            alpha: 0.3,
        }
    }

    /// Records one response from `peer` with the observed latency.
    pub fn record_response(&mut self, peer: PeerId, latency: SimDuration) {
        let o = self.observations.entry(peer).or_default();
        let l = latency.as_micros() as f64;
        o.ewma_latency_us = if o.responses == 0 {
            l
        } else {
            self.alpha * l + (1.0 - self.alpha) * o.ewma_latency_us
        };
        o.responses += 1;
    }

    /// Number of responses observed from `peer` since the last reset.
    pub fn sample_count(&self, peer: PeerId) -> u64 {
        self.observations
            .get(&peer)
            .map(|o| o.responses)
            .unwrap_or(0)
    }

    /// Smoothed response latency of `peer`, once any sample exists.
    pub fn ewma_latency(&self, peer: PeerId) -> Option<SimDuration> {
        let o = self.observations.get(&peer)?;
        if o.responses == 0 {
            return None;
        }
        Some(SimDuration::from_micros(o.ewma_latency_us as u64))
    }

    /// Whether `peer` looks fail-slow: at least `min_samples` responses
    /// observed and a smoothed latency above `threshold`. A peer that
    /// stops answering entirely never trips this — that is the crash
    /// detector's (timeout's) job, not the gray detector's.
    pub fn is_fail_slow(&self, peer: PeerId, threshold: SimDuration) -> bool {
        let Some(o) = self.observations.get(&peer) else {
            return false;
        };
        o.responses >= self.min_samples && o.ewma_latency_us > threshold.as_micros() as f64
    }

    /// Forgets `peer`'s history — called when a demotion's cooldown
    /// expires, so re-trip needs fresh evidence instead of the stale EWMA.
    pub fn reset(&mut self, peer: PeerId) {
        self.observations.remove(&peer);
    }
}

impl Default for PeerHealth {
    /// Flags a peer after 3 samples.
    fn default() -> Self {
        PeerHealth::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_semantic_then_qos() {
        assert_eq!(SelectionPolicy::default(), SelectionPolicy::SemanticThenQos);
    }

    #[test]
    fn utility_needs_min_samples() {
        let mut m = QosMonitor::new(3);
        let g = GroupId::new(1);
        m.record_response(g, SimDuration::from_millis(1), false);
        m.record_response(g, SimDuration::from_millis(1), false);
        assert_eq!(m.observed_utility(g), None);
        assert_eq!(m.sample_count(g), 2);
        m.record_response(g, SimDuration::from_millis(1), false);
        assert!(m.observed_utility(g).is_some());
    }

    #[test]
    fn faults_reduce_utility_latency_reduces_utility() {
        let mut fast = QosMonitor::new(1);
        let mut slow = QosMonitor::new(1);
        let mut flaky = QosMonitor::new(1);
        let g = GroupId::new(1);
        for _ in 0..10 {
            fast.record_response(g, SimDuration::from_micros(300), false);
            slow.record_response(g, SimDuration::from_millis(20), false);
            flaky.record_response(g, SimDuration::from_micros(300), true);
        }
        let (f, s, fl) = (
            fast.observed_utility(g).expect("samples"),
            slow.observed_utility(g).expect("samples"),
            flaky.observed_utility(g).expect("samples"),
        );
        assert!(f > s, "fast {f} should beat slow {s}");
        assert!(f > fl, "reliable {f} should beat flaky {fl}");
        assert!(s > fl, "reliability dominates speed: {s} vs {fl}");
    }

    #[test]
    fn ewma_tracks_recent_latency() {
        let mut m = QosMonitor::new(1);
        let g = GroupId::new(1);
        for _ in 0..20 {
            m.record_response(g, SimDuration::from_millis(1), false);
        }
        let before = m.observed_utility(g).expect("samples");
        for _ in 0..20 {
            m.record_response(g, SimDuration::from_millis(50), false);
        }
        let after = m.observed_utility(g).expect("samples");
        assert!(after < before, "degradation must show: {after} vs {before}");
    }

    #[test]
    fn peer_health_needs_min_samples_before_flagging() {
        let mut h = PeerHealth::new(3);
        let p = whisper_p2p::PeerId::new(1);
        let threshold = SimDuration::from_millis(5);
        h.record_response(p, SimDuration::from_millis(50));
        h.record_response(p, SimDuration::from_millis(50));
        assert!(!h.is_fail_slow(p, threshold), "2 samples < min 3");
        h.record_response(p, SimDuration::from_millis(50));
        assert!(h.is_fail_slow(p, threshold));
        assert_eq!(h.sample_count(p), 3);
        assert!(h.ewma_latency(p).expect("samples") >= SimDuration::from_millis(49));
    }

    #[test]
    fn peer_health_tracks_recovery_and_reset() {
        let mut h = PeerHealth::new(1);
        let p = whisper_p2p::PeerId::new(2);
        let threshold = SimDuration::from_millis(5);
        for _ in 0..5 {
            h.record_response(p, SimDuration::from_millis(50));
        }
        assert!(h.is_fail_slow(p, threshold));
        // enough fast samples drag the EWMA back under the threshold
        for _ in 0..20 {
            h.record_response(p, SimDuration::from_micros(300));
        }
        assert!(!h.is_fail_slow(p, threshold), "recovered peer un-flags");
        h.record_response(p, SimDuration::from_millis(50));
        h.reset(p);
        assert_eq!(h.sample_count(p), 0);
        assert!(!h.is_fail_slow(p, threshold), "reset forgets history");
    }

    #[test]
    fn reliability_accessor() {
        let mut m = QosMonitor::new(1);
        let g = GroupId::new(2);
        assert_eq!(m.observed_reliability(g), None);
        m.record_response(g, SimDuration::from_millis(1), false);
        m.record_response(g, SimDuration::from_millis(1), true);
        assert_eq!(m.observed_reliability(g), Some(0.5));
    }
}
