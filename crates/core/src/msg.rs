//! The Whisper wire protocol: everything that travels between nodes.

use whisper_election::ElectionMsg;
use whisper_obs::{FlightEvent, MetricsDelta, NodeSnapshot, OutlierTrace};
use whisper_p2p::{GroupId, P2pMessage, PeerId};
use whisper_simnet::Wire;
use whisper_wire::{Decode, Encode, Reader, WireError};

/// Every message exchanged in a Whisper deployment.
///
/// SOAP payloads travel as serialized XML text, exactly as they would over
/// HTTP; the metrics layer therefore sees realistic wire sizes: every
/// variant's [`Wire::wire_size`] is exactly `self.encode().len()`, and the
/// TCP transport ships those same bytes over real sockets.
#[derive(Debug, Clone, PartialEq)]
pub enum WhisperMsg {
    /// P2P substrate traffic (discovery, publication, heartbeats).
    P2p(P2pMessage),
    /// Election traffic within a b-peer group.
    Election {
        /// The group holding the election.
        group: GroupId,
        /// The protocol message.
        msg: ElectionMsg,
    },
    /// Client → Web service: a SOAP request envelope.
    SoapRequest {
        /// Client-chosen correlation id.
        request_id: u64,
        /// Serialized SOAP envelope.
        envelope: String,
    },
    /// Web service → client: the SOAP response (or fault) envelope.
    SoapResponse {
        /// Correlation id of the request.
        request_id: u64,
        /// Serialized SOAP envelope.
        envelope: String,
    },
    /// SWS-proxy → b-peer: carry out a service request.
    PeerRequest {
        /// Proxy-chosen correlation id.
        request_id: u64,
        /// The peer the [`WhisperMsg::PeerResponse`] must go to (the proxy;
        /// it survives coordinator→delegate forwarding).
        reply_to: PeerId,
        /// Set when a coordinator with an unavailable backend forwards the
        /// request to a semantically equivalent member: the delegate must
        /// process it even though it is not the coordinator.
        delegated: bool,
        /// Serialized SOAP envelope of the client request.
        envelope: String,
    },
    /// B-peer coordinator → SWS-proxy: the processing result.
    PeerResponse {
        /// Correlation id of the peer request.
        request_id: u64,
        /// Serialized SOAP envelope (response or fault).
        envelope: String,
    },
    /// A message in transit via a relay peer (JXTA relay service): the
    /// relay unwraps it and forwards `inner` to `dest`.
    Relayed {
        /// Final destination.
        dest: PeerId,
        /// Original sender (for reply addressing at the destination).
        origin: PeerId,
        /// The carried message.
        inner: Box<WhisperMsg>,
    },
    /// Non-coordinator b-peer → SWS-proxy: try the coordinator instead.
    PeerRedirect {
        /// Correlation id of the peer request.
        request_id: u64,
        /// The coordinator the b-peer currently believes in, if any.
        coordinator: Option<PeerId>,
    },
    /// Introspection plane ("whisper-scope"): ask a node to describe
    /// itself. Any proxy, b-peer, or rendezvous answers with a
    /// [`WhisperMsg::ScopeResponse`] to the sender.
    ScopeRequest {
        /// Prober-chosen correlation id, echoed in the response.
        request_id: u64,
    },
    /// Introspection plane: a node's self-description.
    ScopeResponse {
        /// Correlation id of the scope request.
        request_id: u64,
        /// The answering node's state at response time (boxed so the
        /// rarely-sent introspection reply doesn't inflate every message).
        snapshot: Box<NodeSnapshot>,
    },
    /// Telemetry plane ("whisper-pulse"): a node's periodic metrics-delta
    /// frame, pushed to the pulse collector.
    PulseReport {
        /// Counters/gauges/histograms accumulated since the previous
        /// frame (boxed: the periodic report must not inflate every
        /// message variant).
        delta: Box<MetricsDelta>,
        /// Span trees the emitter's tail sampler kept this interval
        /// (usually empty).
        outliers: Vec<OutlierTrace>,
    },
    /// Flight-recorder plane ("whisper-flight"): a snapshot of one node's
    /// flight ring, or — with empty `events` — a collector's solicitation
    /// for one. A node answering a solicitation replies with its ring
    /// contents under the same `request_id`.
    FlightDump {
        /// Collector-chosen correlation id, echoed in the reply.
        request_id: u64,
        /// The node whose ring this is (the *target* in a solicitation).
        node: u64,
        /// The retained flight events, oldest first; empty in a
        /// solicitation.
        events: Vec<FlightEvent>,
    },
    /// Worker pool → its own b-peer actor loop: an offloaded backend
    /// execution finished. Always self-addressed (the worker injects it
    /// back into the loop that parked the request), so it never crosses a
    /// peer boundary — but it still encodes, because on the TCP substrate
    /// even self-sends are loopback frames.
    JobDone {
        /// The b-peer-local job key the actor parked the request under
        /// (request ids alone are proxy-scoped, not unique at a delegate).
        job: u64,
        /// Correlation id of the underlying peer request, for flight/trace
        /// stitching.
        request_id: u64,
        /// Whether the backend handled the request successfully (counts
        /// toward `requests_handled`).
        handled: bool,
        /// Whether the backend reported itself unavailable — the actor may
        /// still fail the request over to an equivalent member.
        unavailable: bool,
        /// Serialized SOAP envelope (response or fault).
        envelope: String,
    },
}

impl Wire for WhisperMsg {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }

    fn kind(&self) -> &'static str {
        match self {
            WhisperMsg::P2p(m) => m.kind(),
            WhisperMsg::Election { msg, .. } => msg.kind(),
            WhisperMsg::SoapRequest { .. } => "soap-request",
            WhisperMsg::SoapResponse { .. } => "soap-response",
            WhisperMsg::PeerRequest { .. } => "peer-request",
            WhisperMsg::PeerResponse { .. } => "peer-response",
            WhisperMsg::PeerRedirect { .. } => "peer-redirect",
            WhisperMsg::Relayed { .. } => "relayed",
            WhisperMsg::ScopeRequest { .. } => "scope-request",
            WhisperMsg::ScopeResponse { .. } => "scope-response",
            WhisperMsg::PulseReport { .. } => "pulse-report",
            WhisperMsg::FlightDump { .. } => "flight-dump",
            WhisperMsg::JobDone { .. } => "job-done",
        }
    }

    fn correlation(&self) -> Option<u64> {
        match self {
            WhisperMsg::SoapRequest { request_id, .. }
            | WhisperMsg::SoapResponse { request_id, .. }
            | WhisperMsg::PeerRequest { request_id, .. }
            | WhisperMsg::PeerResponse { request_id, .. }
            | WhisperMsg::PeerRedirect { request_id, .. }
            | WhisperMsg::ScopeRequest { request_id }
            | WhisperMsg::ScopeResponse { request_id, .. }
            | WhisperMsg::FlightDump { request_id, .. }
            | WhisperMsg::JobDone { request_id, .. } => Some(*request_id),
            WhisperMsg::Relayed { inner, .. } => inner.correlation(),
            WhisperMsg::P2p(_) | WhisperMsg::Election { .. } | WhisperMsg::PulseReport { .. } => {
                None
            }
        }
    }

    fn is_telemetry(&self) -> bool {
        // Pulse reports are best-effort: a shed frame loses one window's
        // deltas (the gap shows in the `seq` numbers) but never corrupts
        // later frames. The TCP transport may drop them instead of
        // blocking on a contended link.
        matches!(self, WhisperMsg::PulseReport { .. })
    }
}

impl Encode for WhisperMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WhisperMsg::P2p(m) => {
                out.push(0);
                m.encode_into(out);
            }
            WhisperMsg::Election { group, msg } => {
                out.push(1);
                group.encode_into(out);
                msg.encode_into(out);
            }
            WhisperMsg::SoapRequest {
                request_id,
                envelope,
            } => {
                out.push(2);
                request_id.encode_into(out);
                envelope.encode_into(out);
            }
            WhisperMsg::SoapResponse {
                request_id,
                envelope,
            } => {
                out.push(3);
                request_id.encode_into(out);
                envelope.encode_into(out);
            }
            WhisperMsg::PeerRequest {
                request_id,
                reply_to,
                delegated,
                envelope,
            } => {
                out.push(4);
                request_id.encode_into(out);
                reply_to.encode_into(out);
                delegated.encode_into(out);
                envelope.encode_into(out);
            }
            WhisperMsg::PeerResponse {
                request_id,
                envelope,
            } => {
                out.push(5);
                request_id.encode_into(out);
                envelope.encode_into(out);
            }
            WhisperMsg::Relayed {
                dest,
                origin,
                inner,
            } => {
                out.push(6);
                dest.encode_into(out);
                origin.encode_into(out);
                inner.encode_into(out);
            }
            WhisperMsg::PeerRedirect {
                request_id,
                coordinator,
            } => {
                out.push(7);
                request_id.encode_into(out);
                coordinator.encode_into(out);
            }
            WhisperMsg::ScopeRequest { request_id } => {
                out.push(8);
                request_id.encode_into(out);
            }
            WhisperMsg::ScopeResponse {
                request_id,
                snapshot,
            } => {
                out.push(9);
                request_id.encode_into(out);
                snapshot.encode_into(out);
            }
            WhisperMsg::PulseReport { delta, outliers } => {
                out.push(10);
                delta.encode_into(out);
                outliers.encode_into(out);
            }
            WhisperMsg::FlightDump {
                request_id,
                node,
                events,
            } => {
                out.push(11);
                request_id.encode_into(out);
                node.encode_into(out);
                events.encode_into(out);
            }
            WhisperMsg::JobDone {
                job,
                request_id,
                handled,
                unavailable,
                envelope,
            } => {
                out.push(12);
                job.encode_into(out);
                request_id.encode_into(out);
                handled.encode_into(out);
                unavailable.encode_into(out);
                envelope.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WhisperMsg::P2p(m) => m.encoded_len(),
            WhisperMsg::Election { group, msg } => group.encoded_len() + msg.encoded_len(),
            WhisperMsg::SoapRequest {
                request_id,
                envelope,
            }
            | WhisperMsg::SoapResponse {
                request_id,
                envelope,
            }
            | WhisperMsg::PeerResponse {
                request_id,
                envelope,
            } => request_id.encoded_len() + envelope.encoded_len(),
            WhisperMsg::PeerRequest {
                request_id,
                reply_to,
                delegated,
                envelope,
            } => {
                request_id.encoded_len()
                    + reply_to.encoded_len()
                    + delegated.encoded_len()
                    + envelope.encoded_len()
            }
            WhisperMsg::Relayed {
                dest,
                origin,
                inner,
            } => dest.encoded_len() + origin.encoded_len() + inner.encoded_len(),
            WhisperMsg::PeerRedirect {
                request_id,
                coordinator,
            } => request_id.encoded_len() + coordinator.encoded_len(),
            WhisperMsg::ScopeRequest { request_id } => request_id.encoded_len(),
            WhisperMsg::ScopeResponse {
                request_id,
                snapshot,
            } => request_id.encoded_len() + snapshot.encoded_len(),
            WhisperMsg::PulseReport { delta, outliers } => {
                delta.encoded_len() + outliers.encoded_len()
            }
            WhisperMsg::FlightDump {
                request_id,
                node,
                events,
            } => request_id.encoded_len() + node.encoded_len() + events.encoded_len(),
            WhisperMsg::JobDone {
                job,
                request_id,
                handled,
                unavailable,
                envelope,
            } => {
                job.encoded_len()
                    + request_id.encoded_len()
                    + handled.encoded_len()
                    + unavailable.encoded_len()
                    + envelope.encoded_len()
            }
        }
    }
}

impl Decode for WhisperMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WhisperMsg::P2p(P2pMessage::decode_from(r)?)),
            1 => Ok(WhisperMsg::Election {
                group: GroupId::decode_from(r)?,
                msg: ElectionMsg::decode_from(r)?,
            }),
            2 => Ok(WhisperMsg::SoapRequest {
                request_id: u64::decode_from(r)?,
                envelope: String::decode_from(r)?,
            }),
            3 => Ok(WhisperMsg::SoapResponse {
                request_id: u64::decode_from(r)?,
                envelope: String::decode_from(r)?,
            }),
            4 => Ok(WhisperMsg::PeerRequest {
                request_id: u64::decode_from(r)?,
                reply_to: PeerId::decode_from(r)?,
                delegated: bool::decode_from(r)?,
                envelope: String::decode_from(r)?,
            }),
            5 => Ok(WhisperMsg::PeerResponse {
                request_id: u64::decode_from(r)?,
                envelope: String::decode_from(r)?,
            }),
            6 => {
                let dest = PeerId::decode_from(r)?;
                let origin = PeerId::decode_from(r)?;
                // The recursion is depth-guarded: a hostile frame that is
                // just a chain of Relayed headers errors out instead of
                // exhausting the decoder's stack.
                let inner = r.nested(|r| WhisperMsg::decode_from(r))?;
                Ok(WhisperMsg::Relayed {
                    dest,
                    origin,
                    inner: Box::new(inner),
                })
            }
            7 => Ok(WhisperMsg::PeerRedirect {
                request_id: u64::decode_from(r)?,
                coordinator: Option::decode_from(r)?,
            }),
            8 => Ok(WhisperMsg::ScopeRequest {
                request_id: u64::decode_from(r)?,
            }),
            9 => Ok(WhisperMsg::ScopeResponse {
                request_id: u64::decode_from(r)?,
                snapshot: Box::new(NodeSnapshot::decode_from(r)?),
            }),
            10 => Ok(WhisperMsg::PulseReport {
                delta: Box::new(MetricsDelta::decode_from(r)?),
                outliers: Vec::decode_from(r)?,
            }),
            11 => Ok(WhisperMsg::FlightDump {
                request_id: u64::decode_from(r)?,
                node: u64::decode_from(r)?,
                events: Vec::decode_from(r)?,
            }),
            12 => Ok(WhisperMsg::JobDone {
                job: u64::decode_from(r)?,
                request_id: u64::decode_from(r)?,
                handled: bool::decode_from(r)?,
                unavailable: bool::decode_from(r)?,
                envelope: String::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "WhisperMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_p2p::AdvFilter;

    #[test]
    fn kinds_delegate_to_inner_protocols() {
        let q = WhisperMsg::P2p(P2pMessage::Query {
            id: 0,
            filter: AdvFilter::any(),
            origin: PeerId::new(0),
        });
        assert_eq!(q.kind(), "discovery-query");
        let e = WhisperMsg::Election {
            group: GroupId::new(1),
            msg: ElectionMsg::Election {
                from: PeerId::new(1),
            },
        };
        assert_eq!(e.kind(), "election");
        assert_eq!(
            WhisperMsg::PeerRedirect {
                request_id: 1,
                coordinator: None
            }
            .kind(),
            "peer-redirect"
        );
    }

    #[test]
    fn soap_wire_size_tracks_envelope_length() {
        let small = WhisperMsg::SoapRequest {
            request_id: 1,
            envelope: "x".repeat(10),
        };
        let big = WhisperMsg::SoapRequest {
            request_id: 1,
            envelope: "x".repeat(1000),
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(small.wire_size(), small.encode().len());
        assert_eq!(big.wire_size(), big.encode().len());
    }

    /// One message per `WhisperMsg` variant, nontrivially populated.
    fn one_of_each() -> Vec<WhisperMsg> {
        vec![
            WhisperMsg::P2p(P2pMessage::Query {
                id: 77,
                filter: AdvFilter::any(),
                origin: PeerId::new(3),
            }),
            WhisperMsg::Election {
                group: GroupId::new(4),
                msg: ElectionMsg::RingElection {
                    origin: PeerId::new(1),
                    candidates: vec![PeerId::new(1), PeerId::new(2)],
                },
            },
            WhisperMsg::SoapRequest {
                request_id: 1,
                envelope: "<e>req</e>".into(),
            },
            WhisperMsg::SoapResponse {
                request_id: 1,
                envelope: "<e>resp</e>".into(),
            },
            WhisperMsg::PeerRequest {
                request_id: 2,
                reply_to: PeerId::new(9),
                delegated: true,
                envelope: "<e/>".into(),
            },
            WhisperMsg::PeerResponse {
                request_id: 2,
                envelope: "<e/>".into(),
            },
            WhisperMsg::Relayed {
                dest: PeerId::new(5),
                origin: PeerId::new(6),
                inner: Box::new(WhisperMsg::PeerResponse {
                    request_id: 3,
                    envelope: "<e/>".into(),
                }),
            },
            WhisperMsg::PeerRedirect {
                request_id: 4,
                coordinator: Some(PeerId::new(8)),
            },
            WhisperMsg::ScopeRequest { request_id: 5 },
            WhisperMsg::ScopeResponse {
                request_id: 5,
                snapshot: Box::new(sample_snapshot()),
            },
            WhisperMsg::PulseReport {
                delta: Box::new(sample_delta()),
                outliers: vec![sample_outlier()],
            },
            WhisperMsg::FlightDump {
                request_id: 6,
                node: 2,
                events: vec![sample_flight_event()],
            },
            WhisperMsg::JobDone {
                job: 7,
                request_id: 8,
                handled: true,
                unavailable: false,
                envelope: "<e>done</e>".into(),
            },
        ]
    }

    /// A nontrivially populated flight-recorder event.
    fn sample_flight_event() -> FlightEvent {
        use whisper_obs::FlightEventKind;
        use whisper_simnet::SimTime;
        FlightEvent {
            seq: 12,
            lamport: 40,
            at: SimTime::from_micros(2_500_000),
            node: 2,
            kind: FlightEventKind::MsgRecv {
                from: 0,
                kind: "peer-request".into(),
                bytes: 412,
                correlation: Some(6),
                sent_clock: 39,
            },
        }
    }

    /// A nontrivially populated snapshot exercising every field group.
    fn sample_snapshot() -> NodeSnapshot {
        use whisper_obs::{ElectionView, NodeRole};
        let mut s = NodeSnapshot::empty(NodeRole::BPeer, 7);
        s.group = Some(2);
        s.election = Some(ElectionView {
            coordinator: Some(9),
            is_coordinator: false,
            term: 3,
            elections_started: 1,
            phase: "idle".into(),
        });
        s.heartbeat_ages_us = vec![(6, 100), (9, 420)];
        s.bindings = vec![(2, 9)];
        s.queue_depth = 1;
        s.registry.counters = vec![("requests.handled".into(), 4)];
        s.registry.spans_dropped = 2;
        s
    }

    /// A nontrivially populated pulse delta frame.
    fn sample_delta() -> MetricsDelta {
        use whisper_simnet::{Histogram, SimDuration};
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(120));
        h.record(SimDuration::from_micros(44_000));
        MetricsDelta {
            seq: 6,
            now_us: 3_000_000,
            interval_us: 500_000,
            counters: vec![("requests.handled".into(), 12)],
            gauges: vec![("queue.depth".into(), -1)],
            hists: vec![("proxy.rtt".into(), h)],
            spans_dropped: 1,
        }
    }

    /// A nontrivially populated outlier trace.
    fn sample_outlier() -> OutlierTrace {
        use whisper_obs::PulseSpan;
        OutlierTrace {
            request: 9,
            label: "StudentInformation".into(),
            total_us: 44_000,
            spans: vec![
                PulseSpan {
                    id: 0,
                    parent: None,
                    name: "proxy.request".into(),
                    start_us: 0,
                    end_us: 44_000,
                },
                PulseSpan {
                    id: 1,
                    parent: Some(0),
                    name: "peer.execute".into(),
                    start_us: 500,
                    end_us: 43_500,
                },
            ],
        }
    }

    #[test]
    fn every_variant_wire_size_is_exactly_encoded_len() {
        let msgs = one_of_each();
        assert_eq!(msgs.len(), 13, "update one_of_each when adding variants");
        for m in msgs {
            assert_eq!(m.wire_size(), m.encode().len(), "{m:?}");
        }
    }

    #[test]
    fn every_variant_round_trips() {
        for m in one_of_each() {
            assert_eq!(WhisperMsg::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn correlation_surfaces_request_ids_through_relays() {
        for m in one_of_each() {
            match &m {
                WhisperMsg::SoapRequest { request_id, .. }
                | WhisperMsg::SoapResponse { request_id, .. }
                | WhisperMsg::PeerRequest { request_id, .. }
                | WhisperMsg::PeerResponse { request_id, .. }
                | WhisperMsg::PeerRedirect { request_id, .. }
                | WhisperMsg::ScopeRequest { request_id }
                | WhisperMsg::ScopeResponse { request_id, .. }
                | WhisperMsg::FlightDump { request_id, .. }
                | WhisperMsg::JobDone { request_id, .. } => {
                    assert_eq!(m.correlation(), Some(*request_id), "{m:?}");
                }
                // a relay is transparent: the inner request id shows through
                WhisperMsg::Relayed { inner, .. } => {
                    assert_eq!(m.correlation(), inner.correlation(), "{m:?}");
                    assert!(m.correlation().is_some());
                }
                _ => assert_eq!(m.correlation(), None, "{m:?}"),
            }
        }
    }

    #[test]
    fn relayed_nesting_is_depth_bounded() {
        let mut m = WhisperMsg::PeerRedirect {
            request_id: 0,
            coordinator: None,
        };
        for _ in 0..whisper_wire::MAX_DEPTH {
            m = WhisperMsg::Relayed {
                dest: PeerId::new(1),
                origin: PeerId::new(2),
                inner: Box::new(m),
            };
        }
        // MAX_DEPTH levels of relaying decode fine...
        assert_eq!(WhisperMsg::decode(&m.encode()).unwrap(), m);
        // ...one more is rejected with a typed error, not a stack overflow.
        let deeper = WhisperMsg::Relayed {
            dest: PeerId::new(1),
            origin: PeerId::new(2),
            inner: Box::new(m),
        };
        assert_eq!(
            WhisperMsg::decode(&deeper.encode()),
            Err(WireError::DepthExceeded(whisper_wire::MAX_DEPTH))
        );
    }
}
