//! The Whisper wire protocol: everything that travels between nodes.

use whisper_election::ElectionMsg;
use whisper_p2p::{GroupId, P2pMessage, PeerId};
use whisper_simnet::Wire;

/// Every message exchanged in a Whisper deployment.
///
/// SOAP payloads travel as serialized XML text, exactly as they would over
/// HTTP; the metrics layer therefore sees realistic wire sizes.
#[derive(Debug, Clone)]
pub enum WhisperMsg {
    /// P2P substrate traffic (discovery, publication, heartbeats).
    P2p(P2pMessage),
    /// Election traffic within a b-peer group.
    Election {
        /// The group holding the election.
        group: GroupId,
        /// The protocol message.
        msg: ElectionMsg,
    },
    /// Client → Web service: a SOAP request envelope.
    SoapRequest {
        /// Client-chosen correlation id.
        request_id: u64,
        /// Serialized SOAP envelope.
        envelope: String,
    },
    /// Web service → client: the SOAP response (or fault) envelope.
    SoapResponse {
        /// Correlation id of the request.
        request_id: u64,
        /// Serialized SOAP envelope.
        envelope: String,
    },
    /// SWS-proxy → b-peer: carry out a service request.
    PeerRequest {
        /// Proxy-chosen correlation id.
        request_id: u64,
        /// The peer the [`WhisperMsg::PeerResponse`] must go to (the proxy;
        /// it survives coordinator→delegate forwarding).
        reply_to: PeerId,
        /// Set when a coordinator with an unavailable backend forwards the
        /// request to a semantically equivalent member: the delegate must
        /// process it even though it is not the coordinator.
        delegated: bool,
        /// Serialized SOAP envelope of the client request.
        envelope: String,
    },
    /// B-peer coordinator → SWS-proxy: the processing result.
    PeerResponse {
        /// Correlation id of the peer request.
        request_id: u64,
        /// Serialized SOAP envelope (response or fault).
        envelope: String,
    },
    /// A message in transit via a relay peer (JXTA relay service): the
    /// relay unwraps it and forwards `inner` to `dest`.
    Relayed {
        /// Final destination.
        dest: PeerId,
        /// Original sender (for reply addressing at the destination).
        origin: PeerId,
        /// The carried message.
        inner: Box<WhisperMsg>,
    },
    /// Non-coordinator b-peer → SWS-proxy: try the coordinator instead.
    PeerRedirect {
        /// Correlation id of the peer request.
        request_id: u64,
        /// The coordinator the b-peer currently believes in, if any.
        coordinator: Option<PeerId>,
    },
}

impl Wire for WhisperMsg {
    fn wire_size(&self) -> usize {
        match self {
            WhisperMsg::P2p(m) => m.wire_size(),
            WhisperMsg::Election { msg, .. } => msg.wire_size(),
            WhisperMsg::SoapRequest { envelope, .. }
            | WhisperMsg::SoapResponse { envelope, .. }
            | WhisperMsg::PeerRequest { envelope, .. }
            | WhisperMsg::PeerResponse { envelope, .. } => 128 + envelope.len(),
            WhisperMsg::PeerRedirect { .. } => 160,
            WhisperMsg::Relayed { inner, .. } => 64 + inner.wire_size(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            WhisperMsg::P2p(m) => m.kind(),
            WhisperMsg::Election { msg, .. } => msg.kind(),
            WhisperMsg::SoapRequest { .. } => "soap-request",
            WhisperMsg::SoapResponse { .. } => "soap-response",
            WhisperMsg::PeerRequest { .. } => "peer-request",
            WhisperMsg::PeerResponse { .. } => "peer-response",
            WhisperMsg::PeerRedirect { .. } => "peer-redirect",
            WhisperMsg::Relayed { .. } => "relayed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_p2p::AdvFilter;

    #[test]
    fn kinds_delegate_to_inner_protocols() {
        let q = WhisperMsg::P2p(P2pMessage::Query {
            id: 0,
            filter: AdvFilter::any(),
            origin: PeerId::new(0),
        });
        assert_eq!(q.kind(), "discovery-query");
        let e = WhisperMsg::Election {
            group: GroupId::new(1),
            msg: ElectionMsg::Election {
                from: PeerId::new(1),
            },
        };
        assert_eq!(e.kind(), "election");
        assert_eq!(
            WhisperMsg::PeerRedirect {
                request_id: 1,
                coordinator: None
            }
            .kind(),
            "peer-redirect"
        );
    }

    #[test]
    fn soap_wire_size_tracks_envelope_length() {
        let small = WhisperMsg::SoapRequest {
            request_id: 1,
            envelope: "x".repeat(10),
        };
        let big = WhisperMsg::SoapRequest {
            request_id: 1,
            envelope: "x".repeat(1000),
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size(), 128 + 1000);
    }
}
