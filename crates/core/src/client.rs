//! Workload clients: the B2B applications invoking the Web service.

use crate::msg::WhisperMsg;
use crate::trace;
use whisper_obs::Recorder;
use whisper_simnet::{Actor, Context, Histogram, NodeId, SimDuration, SimTime};
use whisper_soap::Envelope;
use whisper_xml::Element;

/// How a client generates requests.
///
/// # Examples
///
/// ```
/// use whisper::Workload;
/// use whisper_simnet::SimDuration;
///
/// // 200 requests/second Poisson arrivals, regardless of responses.
/// let open = Workload::Open {
///     interval: SimDuration::from_micros(5_000),
///     poisson: true,
/// };
/// // one request at a time with 50 ms think time
/// let closed = Workload::Closed { think: SimDuration::from_millis(50), window: 1 };
/// // eight requests in flight at once (the proxy pipelines them)
/// let windowed = Workload::Closed { think: SimDuration::ZERO, window: 8 };
/// # let _ = (open, closed, windowed);
/// ```
#[derive(Debug, Clone)]
pub enum Workload {
    /// No autonomous traffic; requests are injected by the harness
    /// ([`WhisperNet::submit_request`](crate::WhisperNet::submit_request)).
    Manual,
    /// Closed loop: keep `window` requests in flight; every response (or
    /// timeout) is replaced after `think`.
    Closed {
        /// Think time between a response and its replacement request.
        think: SimDuration,
        /// Concurrent in-flight requests this client maintains. `1` is the
        /// classic closed loop; larger windows pipeline through the
        /// proxy's pending map and measure the deployment's concurrency,
        /// not just its sequential round-trip.
        window: u32,
    },
    /// Open loop: fire at fixed or exponential intervals regardless of
    /// outstanding requests.
    Open {
        /// Mean inter-arrival interval.
        interval: SimDuration,
        /// Exponentially distributed inter-arrivals (Poisson process)
        /// instead of fixed spacing.
        poisson: bool,
    },
}

/// Configuration of one client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Node hosting the Web service (its SWS-proxy).
    pub proxy_node: NodeId,
    /// Traffic generation mode.
    pub workload: Workload,
    /// Request payloads, cycled in order.
    pub payloads: Vec<Element>,
    /// Stop after this many requests (`None` = until the run ends).
    pub total: Option<u64>,
    /// Client-side timeout; an unanswered request counts as failed.
    pub timeout: SimDuration,
    /// Delay before the first autonomous request (lets the b-peer groups
    /// elect and publish).
    pub warmup: SimDuration,
}

impl ClientConfig {
    /// A manual client pointed at `proxy_node`.
    pub fn manual(proxy_node: NodeId) -> Self {
        ClientConfig {
            proxy_node,
            workload: Workload::Manual,
            payloads: Vec::new(),
            total: None,
            timeout: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(2),
        }
    }
}

/// The fate of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Client-local request id.
    pub id: u64,
    /// When the request left the client.
    pub sent_at: SimTime,
    /// When the response arrived (`None` while pending or after timeout).
    pub completed_at: Option<SimTime>,
    /// Whether the response was a `<soap:fault>`.
    pub fault: bool,
    /// Whether the client-side timeout fired first.
    pub timed_out: bool,
}

/// Aggregated client counters.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Requests sent.
    pub sent: u64,
    /// Responses received (faults included).
    pub completed: u64,
    /// Responses that were faults.
    pub faults: u64,
    /// Requests that hit the client-side timeout.
    pub timeouts: u64,
    /// Round-trip times of successful (non-fault) responses.
    pub rtt: Histogram,
}

impl ClientStats {
    /// Requests neither answered nor timed out when the run stopped.
    pub fn in_flight(&self) -> u64 {
        self.sent - self.completed - self.timeouts
    }

    /// Fraction of sent requests that completed without fault or timeout,
    /// ignoring still-in-flight ones. `None` before any request resolved.
    pub fn availability(&self) -> Option<f64> {
        let resolved = self.completed + self.timeouts;
        if resolved == 0 {
            return None;
        }
        let good = self.completed - self.faults;
        Some(good as f64 / resolved as f64)
    }
}

const TOKEN_SEND: u64 = 1;
const TOKEN_THINK: u64 = 3;
const PURPOSE_REQ_TIMEOUT: u64 = 2;

fn req_token(id: u64) -> u64 {
    (id << 2) | PURPOSE_REQ_TIMEOUT
}

/// A client application node.
pub struct ClientActor {
    config: ClientConfig,
    next_id: u64,
    payload_cursor: usize,
    outcomes: Vec<RequestOutcome>,
    stats: ClientStats,
    last_response: Option<String>,
    obs: Option<Recorder>,
    my_id: Option<NodeId>,
}

impl ClientActor {
    /// Creates a client.
    pub fn new(config: ClientConfig) -> Self {
        ClientActor {
            config,
            next_id: 0,
            payload_cursor: 0,
            outcomes: Vec::new(),
            stats: ClientStats::default(),
            last_response: None,
            obs: None,
            my_id: None,
        }
    }

    /// Installs an observability recorder: every request becomes a traced
    /// request with a `client.request` root span.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = Some(rec);
    }

    /// Aggregated counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Per-request outcomes in send order.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// The most recent response envelope, for display and inspection.
    pub fn last_response(&self) -> Option<&str> {
        self.last_response.as_deref()
    }

    /// Registers a harness-injected request so the eventual response is
    /// accounted for. Returns the request id to inject with.
    pub fn register_manual(&mut self, now: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.outcomes.push(RequestOutcome {
            id,
            sent_at: now,
            completed_at: None,
            fault: false,
            timed_out: false,
        });
        self.stats.sent += 1;
        if let (Some(rec), Some(me)) = (&self.obs, self.my_id) {
            let req = rec.begin_request(format!("client{} #{id}", me.index()), now);
            rec.start_span("client.request", req, now);
            rec.bind(trace::NS_SOAP, trace::soap_key(me, id), req);
            rec.incr("client.sent", 1);
        }
        id
    }

    fn quota_left(&self) -> bool {
        match self.config.total {
            Some(t) => self.stats.sent < t,
            None => true,
        }
    }

    fn interval(&self, ctx: &mut Context<'_, WhisperMsg>) -> SimDuration {
        match &self.config.workload {
            Workload::Open { interval, poisson } => {
                if *poisson {
                    use rand::Rng;
                    let u: f64 = ctx.rng().gen_range(1e-9..1.0);
                    let scaled = -(u.ln()) * interval.as_micros() as f64;
                    SimDuration::from_micros(scaled.max(1.0) as u64)
                } else {
                    *interval
                }
            }
            Workload::Closed { think, .. } => *think,
            Workload::Manual => SimDuration::ZERO,
        }
    }

    fn send_next(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        if !self.quota_left() || self.config.payloads.is_empty() {
            return;
        }
        let payload =
            self.config.payloads[self.payload_cursor % self.config.payloads.len()].clone();
        self.payload_cursor += 1;
        let id = self.register_manual(ctx.now());
        let envelope = Envelope::request(payload).to_xml_string();
        ctx.send(
            self.config.proxy_node,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope,
            },
        );
        ctx.set_timer(self.config.timeout, req_token(id));
        if let Workload::Open { .. } = self.config.workload {
            let next = self.interval(ctx);
            ctx.set_timer(next, TOKEN_SEND);
        }
    }

    fn complete(&mut self, id: u64, now: SimTime, envelope: &str) {
        let Some(outcome) = self.outcomes.iter_mut().find(|o| o.id == id) else {
            return;
        };
        if outcome.completed_at.is_some() || outcome.timed_out {
            return; // duplicate or late response
        }
        outcome.completed_at = Some(now);
        self.last_response = Some(envelope.to_string());
        let fault = Envelope::parse(envelope)
            .map(|e| e.is_fault())
            .unwrap_or(true);
        outcome.fault = fault;
        self.stats.completed += 1;
        let sent_at = outcome.sent_at;
        if fault {
            self.stats.faults += 1;
        } else {
            self.stats.rtt.record(now.since(sent_at));
        }
        if let (Some(rec), Some(me)) = (&self.obs, self.my_id) {
            let key = trace::soap_key(me, id);
            if let Some(req) = rec.lookup(trace::NS_SOAP, key) {
                rec.end_named(req, "client.request", now);
                rec.unbind(trace::NS_SOAP, key);
            }
            rec.incr(
                if fault {
                    "client.faults"
                } else {
                    "client.completed"
                },
                1,
            );
            if !fault {
                rec.record_duration("client.rtt", now.since(sent_at));
            }
        }
    }
}

impl Actor<WhisperMsg> for ClientActor {
    fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        self.my_id = Some(ctx.id());
        if !matches!(self.config.workload, Workload::Manual) {
            ctx.set_timer(self.config.warmup, TOKEN_SEND);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        if let WhisperMsg::SoapResponse {
            request_id,
            envelope,
        } = msg
        {
            self.complete(request_id, ctx.now(), &envelope);
            if let Workload::Closed { .. } = self.config.workload {
                if self.quota_left() {
                    let think = self.interval(ctx);
                    ctx.set_timer(think, TOKEN_THINK);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WhisperMsg>, token: u64) {
        match token {
            // The warmup fire opens a closed loop's whole window at once;
            // afterwards each completion replaces exactly one request.
            TOKEN_SEND => {
                if let Workload::Closed { window, .. } = self.config.workload {
                    for _ in 0..window.max(1) {
                        self.send_next(ctx);
                    }
                } else {
                    self.send_next(ctx);
                }
            }
            TOKEN_THINK => self.send_next(ctx),
            t if t & 0b11 == PURPOSE_REQ_TIMEOUT => {
                let id = t >> 2;
                if let Some(o) = self.outcomes.iter_mut().find(|o| o.id == id) {
                    if o.completed_at.is_none() && !o.timed_out {
                        o.timed_out = true;
                        self.stats.timeouts += 1;
                        if let (Some(rec), Some(me)) = (&self.obs, self.my_id) {
                            let key = trace::soap_key(me, id);
                            if let Some(req) = rec.lookup(trace::NS_SOAP, key) {
                                rec.end_named(req, "client.request", ctx.now());
                                rec.unbind(trace::NS_SOAP, key);
                            }
                            rec.incr("client.timeouts", 1);
                        }
                        // keep a closed loop alive after a loss
                        if let Workload::Closed { .. } = self.config.workload {
                            if self.quota_left() {
                                ctx.set_timer(SimDuration::ZERO, TOKEN_THINK);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Element {
        let mut p = Element::new("StudentInformation");
        p.push_child(Element::with_text("StudentID", "u1000"));
        p
    }

    #[test]
    fn manual_registration_and_completion() {
        let mut c = ClientActor::new(ClientConfig::manual(NodeId::from_index(0)));
        let id = c.register_manual(SimTime::from_micros(100));
        assert_eq!(c.stats().sent, 1);
        let resp = Envelope::request(payload()).to_xml_string();
        c.complete(id, SimTime::from_micros(700), &resp);
        let s = c.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.faults, 0);
        assert_eq!(s.rtt.count(), 1);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.availability(), Some(1.0));
        assert_eq!(
            c.outcomes()[0].completed_at,
            Some(SimTime::from_micros(700))
        );
    }

    #[test]
    fn fault_responses_counted_separately() {
        let mut c = ClientActor::new(ClientConfig::manual(NodeId::from_index(0)));
        let id = c.register_manual(SimTime::ZERO);
        let fault = Envelope::fault(whisper_soap::Fault::new(
            whisper_soap::FaultCode::Receiver,
            "down",
        ))
        .to_xml_string();
        c.complete(id, SimTime::from_micros(10), &fault);
        assert_eq!(c.stats().faults, 1);
        assert_eq!(c.stats().rtt.count(), 0);
        assert_eq!(c.stats().availability(), Some(0.0));
    }

    #[test]
    fn duplicate_responses_ignored() {
        let mut c = ClientActor::new(ClientConfig::manual(NodeId::from_index(0)));
        let id = c.register_manual(SimTime::ZERO);
        let resp = Envelope::request(payload()).to_xml_string();
        c.complete(id, SimTime::from_micros(10), &resp);
        c.complete(id, SimTime::from_micros(20), &resp);
        assert_eq!(c.stats().completed, 1);
        // unknown ids ignored too
        c.complete(99, SimTime::from_micros(30), &resp);
        assert_eq!(c.stats().completed, 1);
    }

    #[test]
    fn unparseable_response_counts_as_fault() {
        let mut c = ClientActor::new(ClientConfig::manual(NodeId::from_index(0)));
        let id = c.register_manual(SimTime::ZERO);
        c.complete(id, SimTime::from_micros(10), "garbage");
        assert_eq!(c.stats().faults, 1);
    }

    #[test]
    fn availability_none_before_any_resolution() {
        let mut c = ClientActor::new(ClientConfig::manual(NodeId::from_index(0)));
        assert_eq!(c.stats().availability(), None);
        let _ = c.register_manual(SimTime::ZERO);
        assert_eq!(c.stats().availability(), None);
        assert_eq!(c.stats().in_flight(), 1);
    }

    #[test]
    fn req_token_round_trip() {
        let t = req_token(41);
        assert_eq!(t & 0b11, PURPOSE_REQ_TIMEOUT);
        assert_eq!(t >> 2, 41);
    }
}
