//! The b-peer actor: a replica of a service's business logic inside a
//! semantic b-peer group.
//!
//! B-peers (paper, section 4.2) implement the service functionality plus the
//! Bully election algorithm. Within a group all replicas are active (static
//! redundancy); the coordinator processes requests. Heartbeats form a star
//! around the coordinator — members beacon the coordinator, the coordinator
//! beacons the members — so steady-state chatter grows *linearly* with group
//! size, which is what the paper's Figure 4 observes.

use crate::backend::{BackendError, ServiceBackend};
use crate::directory::Directory;
use crate::msg::WhisperMsg;
use crate::pulse::{self, PulseConfig};
use crate::trace;
use whisper_election::{BullyConfig, BullyNode, ElectionMsg, ElectionProtocol, Output};
use whisper_obs::{
    AvailabilityLedger, ElectionView, FlightHandle, NodeRole, NodeSnapshot, PulseEmitter, Recorder,
    SpanId,
};
use whisper_p2p::{
    Advertisement, DiscoveryService, DiscoveryStrategy, FailureDetector, GroupId, P2pMessage,
    PeerAdv, PeerId, PipeId, SemanticAdv,
};
use whisper_simnet::{Actor, Context, Metrics, NodeId, SimDuration, SimTime, Wire};
use whisper_soap::{Envelope, Fault, FaultCode};

/// Timer tokens (election tokens live in the high half of the space).
const TOKEN_HEARTBEAT: u64 = 1;
const TOKEN_FD_CHECK: u64 = 2;
const TOKEN_REPUBLISH: u64 = 3;
const TOKEN_PULSE: u64 = 4;
const ELECTION_TOKEN_BASE: u64 = 1 << 63;
const RESPONSE_TOKEN_BASE: u64 = 1 << 62;

/// Tuning knobs of a b-peer.
///
/// # Examples
///
/// ```
/// use whisper::BPeerConfig;
/// use whisper_simnet::SimDuration;
///
/// // Aggressive failure detection (see the failover_sensitivity bench).
/// let cfg = BPeerConfig {
///     heartbeat_period: SimDuration::from_millis(100),
///     failure_timeout: SimDuration::from_millis(300),
///     ..BPeerConfig::default()
/// };
/// assert!(cfg.failure_timeout > cfg.heartbeat_period);
/// ```
#[derive(Debug, Clone)]
pub struct BPeerConfig {
    /// Heartbeat beacon period.
    pub heartbeat_period: SimDuration,
    /// Silence after which a peer is suspected dead.
    pub failure_timeout: SimDuration,
    /// Lifetime requested for published advertisements.
    pub adv_lifetime: SimDuration,
    /// Bully algorithm timeouts.
    pub bully: BullyConfig,
    /// Discovery strategy (must match the deployment's).
    pub strategy: DiscoveryStrategy,
    /// Time the replica needs to process one request. Requests queue behind
    /// each other (an M/D/1-style server), so offered load beyond
    /// `1/processing_time` saturates the replica — the knob behind the
    /// load-scalability experiment.
    pub processing_time: SimDuration,
    /// When set, the coordinator spreads requests round-robin over the live
    /// members instead of executing everything itself (the paper's
    /// "scalability requirements through load-sharing").
    pub load_share: bool,
    /// Parallel execution width ("whisper-surge"). `0` (the default) keeps
    /// backend execution inline on the actor loop. With `k > 0` and a
    /// replicable backend ([`ServiceBackend::replicate`]), the thread and
    /// TCP substrates offload execution onto `k` worker threads — requests
    /// complete out of order across clients (per-client order is
    /// preserved by sharding), and the actor loop stays free to answer
    /// heartbeats and elections while requests execute. On the
    /// deterministic simulator the same `k` widens the virtual-time server
    /// model instead: `processing_time` is served by `k` virtual servers,
    /// so E-load results stay exactly reproducible.
    pub workers: usize,
}

impl Default for BPeerConfig {
    /// Paper-era defaults: 500 ms heartbeats, 1.5 s failure timeout,
    /// 10 min advertisement lifetime.
    fn default() -> Self {
        BPeerConfig {
            heartbeat_period: SimDuration::from_millis(500),
            failure_timeout: SimDuration::from_millis(1500),
            adv_lifetime: SimDuration::from_secs(600),
            bully: BullyConfig::default(),
            strategy: DiscoveryStrategy::Flood,
            processing_time: SimDuration::ZERO,
            load_share: false,
            workers: 0,
        }
    }
}

/// Runs one serialized request envelope against a backend, free of any
/// actor state so workers can call it off-loop: parse, dispatch, wrap.
/// Returns the response envelope, whether the backend handled the request
/// (counts toward `requests_handled`), and whether it reported itself
/// unavailable (failover may still mask that with a delegation).
fn run_backend(backend: &mut dyn ServiceBackend, envelope: &str) -> (String, bool, bool) {
    let parsed = match Envelope::parse(envelope) {
        Ok(env) => env,
        Err(e) => {
            return (
                BPeerActor::fault_envelope(FaultCode::Sender, format!("unparseable request: {e}")),
                false,
                false,
            )
        }
    };
    let Some(payload) = parsed.body_payload() else {
        return (
            BPeerActor::fault_envelope(FaultCode::Sender, "empty request body".to_string()),
            false,
            false,
        );
    };
    let operation = payload.name.clone();
    match backend.handle(&operation, payload) {
        Ok(result) => (Envelope::request(result).to_xml_string(), true, false),
        Err(BackendError::Unavailable(what)) => (
            BPeerActor::fault_envelope(FaultCode::Receiver, format!("backend unavailable: {what}")),
            false,
            true,
        ),
        Err(
            e @ (BackendError::BadRequest(_)
            | BackendError::UnsupportedOperation(_)
            | BackendError::NotFound(_)),
        ) => (
            BPeerActor::fault_envelope(FaultCode::Sender, e.to_string()),
            false,
            false,
        ),
    }
}

/// One offloaded request on its way to a worker.
struct Job {
    job: u64,
    request_id: u64,
    envelope: String,
}

/// The parallel execution plane of one b-peer: `k` worker threads, each
/// owning an independent backend replica and a FIFO job queue. Completions
/// re-enter the actor loop as self-injected [`WhisperMsg::JobDone`]
/// messages, so all protocol state stays single-threaded.
struct WorkerPool {
    senders: Vec<std::sync::mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(
        replicas: Vec<Box<dyn ServiceBackend>>,
        injector: whisper_simnet::SelfInjector<WhisperMsg>,
        processing_time: SimDuration,
    ) -> Self {
        let mut senders = Vec::with_capacity(replicas.len());
        let mut handles = Vec::with_capacity(replicas.len());
        for mut backend in replicas {
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            let injector = injector.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    if processing_time > SimDuration::ZERO {
                        // Model the configured service time for real, so
                        // the three substrates agree on what a "busy"
                        // replica means.
                        std::thread::sleep(std::time::Duration::from_micros(
                            processing_time.as_micros(),
                        ));
                    }
                    let (envelope, handled, unavailable) =
                        run_backend(backend.as_mut(), &job.envelope);
                    injector.inject(WhisperMsg::JobDone {
                        job: job.job,
                        request_id: job.request_id,
                        handled,
                        unavailable,
                        envelope,
                    });
                }
            }));
            senders.push(tx);
        }
        WorkerPool { senders, handles }
    }

    /// Shards by the replying proxy: one client's requests always land on
    /// the same worker queue, so per-client FIFO survives the pool even
    /// though completions across clients arrive out of order.
    fn submit(&self, reply_to: PeerId, job: Job) {
        let shard = (reply_to.value() as usize) % self.senders.len();
        // workers only exit once their sender drops, so this cannot fail
        let _ = self.senders[shard].send(job);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the queues; each worker drains what it has and exits.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Lazily probed state of the worker pool (probing needs a live
/// [`Context`] to learn whether the substrate supports self-injection).
enum PoolState {
    Unprobed,
    Disabled,
    Ready(WorkerPool),
}

/// Actor-side context of an offloaded request, keyed by job id until its
/// [`WhisperMsg::JobDone`] arrives.
struct JobCtx {
    request_id: u64,
    reply_to: PeerId,
    delegated: bool,
    /// Original request envelope, retained only while failover-by-
    /// delegation is still possible (i.e. the request was not itself a
    /// delegation).
    envelope: Option<String>,
    /// The request's still-open `backend.execute` span, closed when the
    /// response finally leaves.
    span: Option<SpanId>,
}

/// A b-peer: group member, election participant, request executor.
pub struct BPeerActor {
    peer: PeerId,
    group: GroupId,
    members: Vec<PeerId>,
    directory: Directory,
    disco: DiscoveryService,
    election: BullyNode,
    fd: FailureDetector,
    backend: Box<dyn ServiceBackend>,
    semantic_adv: SemanticAdv,
    config: BPeerConfig,
    requests_handled: u64,
    name: String,
    /// Virtual-time server model: per-slot instants the replica's servers
    /// become free again (`config.workers.max(1)` slots — one slot is the
    /// classic M/D/1 server, `k` slots model the parallel pool).
    busy_slots: Vec<whisper_simnet::SimTime>,
    /// Parallel execution plane, probed lazily on the first request.
    pool: PoolState,
    /// Requests parked with the worker pool, keyed by job id until their
    /// [`WhisperMsg::JobDone`] completion re-enters the loop.
    jobs: std::collections::HashMap<u64, JobCtx>,
    next_job: u64,
    /// Deferred responses keyed by stash id (token payload); the span is
    /// the request's still-open `backend.execute`, closed when the
    /// response finally leaves.
    stash: std::collections::HashMap<u64, (PeerId, WhisperMsg, Option<SpanId>)>,
    next_stash: u64,
    /// Round-robin cursor for load sharing.
    rr_cursor: usize,
    obs: Option<Recorder>,
    /// Per-kind traffic counters for the introspection snapshot.
    tx: Metrics,
    rx: Metrics,
    /// Online availability bookkeeping (shared across the deployment).
    ledger: Option<AvailabilityLedger>,
    /// Telemetry plane: where/how often to push [`WhisperMsg::PulseReport`]s.
    pulse: Option<PulseConfig>,
    pulse_emitter: PulseEmitter,
    /// Always-on flight recorder ("whisper-flight"): protocol-level
    /// transitions recorded into the same Lamport-stamped ring the
    /// transport writes message events to.
    flight: Option<FlightHandle>,
    /// Peers currently flagged as heartbeat-missing in the flight ring,
    /// so each suspicion records one miss and one restore, not one per
    /// detector sweep.
    flight_suspects: std::collections::BTreeSet<u64>,
}

impl BPeerActor {
    /// Creates a b-peer for `peer`, member of `group` with `members`
    /// (which must include `peer`), executing `backend`.
    pub fn new(
        peer: PeerId,
        group: GroupId,
        members: Vec<PeerId>,
        semantic_adv: SemanticAdv,
        backend: Box<dyn ServiceBackend>,
        directory: Directory,
        config: BPeerConfig,
    ) -> Self {
        let name = format!("b-peer {peer} of {}", semantic_adv.name);
        let server_slots = config.workers.max(1);
        BPeerActor {
            peer,
            group,
            election: BullyNode::new(peer, members.iter().copied(), config.bully),
            fd: FailureDetector::new(config.failure_timeout),
            disco: DiscoveryService::new(peer, config.strategy),
            members,
            directory,
            backend,
            semantic_adv,
            config,
            requests_handled: 0,
            name,
            busy_slots: vec![whisper_simnet::SimTime::ZERO; server_slots],
            pool: PoolState::Unprobed,
            jobs: std::collections::HashMap::new(),
            next_job: 0,
            stash: std::collections::HashMap::new(),
            next_stash: 0,
            rr_cursor: 0,
            obs: None,
            tx: Metrics::new(),
            rx: Metrics::new(),
            ledger: None,
            pulse: None,
            pulse_emitter: PulseEmitter::new(),
            flight: None,
            flight_suspects: std::collections::BTreeSet::new(),
        }
    }

    /// Installs an observability recorder into this b-peer, its discovery
    /// service, and its election protocol. Requests it executes get
    /// `backend.execute` spans correlated back to the proxy's trace.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.disco.set_recorder(rec.clone());
        self.election.set_recorder(rec.clone());
        self.obs = Some(rec);
    }

    /// This peer's id.
    pub fn peer_id(&self) -> PeerId {
        self.peer
    }

    /// The group this peer belongs to.
    pub fn group_id(&self) -> GroupId {
        self.group
    }

    /// Whether this peer currently believes it is the group coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.election.is_coordinator()
    }

    /// The coordinator this peer currently believes in.
    pub fn coordinator(&self) -> Option<PeerId> {
        self.election.coordinator()
    }

    /// How many requests this replica has executed.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// How many elections this peer initiated.
    pub fn elections_started(&self) -> u64 {
        self.election.elections_started()
    }

    /// The backend label (e.g. `"operational-db"`).
    pub fn backend_label(&self) -> &str {
        self.backend.label()
    }

    /// Direct mutable access to the backend, for fault-injection in tests
    /// and experiments (e.g. taking the operational database offline).
    pub fn backend_mut(&mut self) -> &mut dyn ServiceBackend {
        self.backend.as_mut()
    }

    /// Read access to this peer's discovery state (advertisement cache,
    /// bound pipes).
    pub fn discovery(&self) -> &DiscoveryService {
        &self.disco
    }

    /// The group members this peer currently knows, in id order.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Installs the deployment-wide availability ledger. Every b-peer feeds
    /// the same (cheaply cloneable) ledger: heartbeats extend uptime,
    /// failure-detector suspicions open downtime intervals, elections close
    /// the per-service ones.
    pub fn set_ledger(&mut self, ledger: AvailabilityLedger) {
        self.ledger = Some(ledger);
    }

    /// Joins the pulse telemetry plane: the b-peer then pushes a
    /// [`WhisperMsg::PulseReport`] with its traffic and execution counters
    /// to `cfg.collector` every `cfg.interval`.
    pub fn set_pulse(&mut self, cfg: PulseConfig) {
        self.pulse = Some(cfg);
    }

    /// Installs this node's flight recorder handle. The same handle must
    /// be installed into the substrate (`Spawner::set_flight_hook`) so
    /// protocol transitions and message traffic share one Lamport clock.
    pub fn set_flight(&mut self, flight: FlightHandle) {
        self.flight = Some(flight);
    }

    /// Builds and ships one telemetry frame, then re-arms the interval.
    /// B-peers report only node-local tallies — recorder-derived series are
    /// reported once, by the proxy, because the recorder is shared.
    fn emit_pulse(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        let Some(cfg) = self.pulse else {
            return;
        };
        let mut counters = vec![("bpeer.handled".to_string(), self.requests_handled)];
        counters.extend(pulse::traffic_counters(&self.tx, &self.rx));
        counters.sort();
        let gauges = vec![
            ("bpeer.jobs".to_string(), self.jobs.len() as i64),
            ("bpeer.stash".to_string(), self.stash.len() as i64),
        ];
        let delta = self.pulse_emitter.frame(
            ctx.now().as_micros(),
            cfg.interval.as_micros(),
            counters,
            gauges,
            Vec::new(),
            0,
        );
        let msg = WhisperMsg::PulseReport {
            delta: Box::new(delta),
            outliers: Vec::new(),
        };
        // The collector is a plain node, not a peer: send directly.
        self.tx.on_send(msg.kind(), msg.wire_size());
        ctx.send(cfg.collector, msg);
        ctx.set_timer(cfg.interval, TOKEN_PULSE);
    }

    /// The introspection snapshot served to [`WhisperMsg::ScopeRequest`]:
    /// role, election view, heartbeat ages, queue depth, traffic counters
    /// and the obs registry dump.
    pub fn scope_snapshot(&self, now: SimTime) -> NodeSnapshot {
        let mut snap = NodeSnapshot::empty(NodeRole::BPeer, self.peer.value());
        snap.group = Some(self.group.value());
        snap.election = Some(ElectionView {
            coordinator: self.election.coordinator().map(|p| p.value()),
            is_coordinator: self.election.is_coordinator(),
            term: self.election.epoch(),
            elections_started: self.election.elections_started(),
            phase: self.election.phase_name().to_string(),
        });
        snap.heartbeat_ages_us = self
            .fd
            .ages(now)
            .into_iter()
            .map(|(p, age)| (p.value(), age.as_micros()))
            .collect();
        snap.queue_depth = (self.stash.len() + self.jobs.len()) as u64;
        snap.sent = self.tx.snapshot();
        snap.received = self.rx.snapshot();
        if let Some(rec) = &self.obs {
            snap.registry = rec.registry_dump();
        }
        snap
    }

    fn send_to_peer(&mut self, ctx: &mut Context<'_, WhisperMsg>, to: PeerId, msg: WhisperMsg) {
        self.tx.on_send(msg.kind(), msg.wire_size());
        crate::routing::send_routed(&self.directory, self.peer, ctx, to, msg);
    }

    /// Symbolic name of the group's request pipe.
    fn pipe_name(&self) -> String {
        format!("{}-requests", self.semantic_adv.name)
    }

    /// Advertisements are refreshed at half their lifetime.
    fn republish_period(&self) -> SimDuration {
        SimDuration::from_micros((self.config.adv_lifetime.as_micros() / 2).max(1))
    }

    /// Learns a group member that joined after this peer started — JXTA
    /// networks "are inherently dynamic", and a bigger group means higher
    /// availability (paper, §4.2).
    fn note_member(&mut self, peer: PeerId, now: whisper_simnet::SimTime) {
        if peer == self.peer || self.members.contains(&peer) {
            return;
        }
        self.members.push(peer);
        self.members.sort();
        self.election.set_members(&self.members);
        self.disco.add_known_peer(peer);
        self.fd.record(peer, now);
    }

    fn route_election_output(&mut self, ctx: &mut Context<'_, WhisperMsg>, out: Output) {
        for (to, msg) in out.sends {
            self.send_to_peer(
                ctx,
                to,
                WhisperMsg::Election {
                    group: self.group,
                    msg,
                },
            );
        }
        for t in out.timers {
            ctx.set_timer(t.delay, ELECTION_TOKEN_BASE | t.token);
        }
        for ev in out.events {
            let whisper_election::ElectionEvent::CoordinatorElected(winner) = ev;
            if let Some(ledger) = &self.ledger {
                ledger.coordinator_elected(self.group.value(), winner.value(), ctx.now());
            }
            if let Some(flight) = &self.flight {
                flight.note_election(
                    ctx.now(),
                    self.election.epoch(),
                    Some(winner.value()),
                    "elected",
                );
            }
            if winner == self.peer {
                // A new coordinator re-binds the group's request pipe
                // (JXTA input-pipe creation); senders re-resolve it — the
                // paper's "new binding between the SWS-proxy and the
                // elected b-peer".
                let name = self.pipe_name();
                if let Some(flight) = &self.flight {
                    flight.note_bind(
                        ctx.now(),
                        name.clone(),
                        self.peer.value(),
                        self.election.epoch() > 1,
                    );
                }
                let sends = self.disco.bind_input_pipe(
                    PipeId::new(self.group.value()),
                    name,
                    self.config.adv_lifetime,
                    ctx.now(),
                );
                for s in sends {
                    self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
                }
            }
        }
    }

    fn publish_advertisements(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        let now = ctx.now();
        let peer_adv = Advertisement::Peer(PeerAdv {
            peer: self.peer,
            name: self.name.clone(),
            group: Some(self.group),
        });
        let sem_adv = Advertisement::Semantic(self.semantic_adv.clone());
        for adv in [peer_adv, sem_adv] {
            for send in self.disco.publish(adv, self.config.adv_lifetime, now) {
                self.send_to_peer(ctx, send.to, WhisperMsg::P2p(send.msg));
            }
        }
    }

    fn heartbeat_targets(&self) -> Vec<PeerId> {
        match self.election.coordinator() {
            Some(c) if c == self.peer => {
                // coordinator beacons every member
                self.members
                    .iter()
                    .copied()
                    .filter(|&p| p != self.peer)
                    .collect()
            }
            Some(c) => vec![c],
            // no coordinator known (election in flight): beacon everyone so
            // liveness information keeps flowing
            None => self
                .members
                .iter()
                .copied()
                .filter(|&p| p != self.peer)
                .collect(),
        }
    }

    fn fault_envelope(code: FaultCode, reason: String) -> String {
        Envelope::fault(Fault::new(code, reason)).to_xml_string()
    }

    /// Inline execution of one envelope (the worker pool calls
    /// [`run_backend`] directly); kept for unit tests of the wrap/count
    /// behaviour.
    #[cfg(test)]
    fn execute(&mut self, envelope: &str) -> String {
        let (response, handled, _unavailable) = run_backend(self.backend.as_mut(), envelope);
        if handled {
            self.requests_handled += 1;
        }
        response
    }

    /// Whether the parallel execution plane is usable, spawning it on
    /// first use. Requires `config.workers > 0`, a substrate that supports
    /// self-injection (thread/TCP — never the deterministic simulator),
    /// and a backend that opts into replication.
    fn ensure_pool(&mut self, ctx: &Context<'_, WhisperMsg>) -> bool {
        if self.config.workers == 0 {
            return false;
        }
        match self.pool {
            PoolState::Ready(_) => return true,
            PoolState::Disabled => return false,
            PoolState::Unprobed => {}
        }
        let Some(injector) = ctx.self_injector() else {
            // SimNet: stay inline; the k-slot virtual-time server model
            // provides the parallelism deterministically.
            self.pool = PoolState::Disabled;
            return false;
        };
        let mut replicas = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            match self.backend.replicate() {
                Some(b) => replicas.push(b),
                None => {
                    self.pool = PoolState::Disabled;
                    return false;
                }
            }
        }
        self.pool = PoolState::Ready(WorkerPool::spawn(
            replicas,
            injector,
            self.config.processing_time,
        ));
        true
    }

    /// A worker finished an offloaded request: close it out exactly like
    /// the inline path would — count it, maybe fail it over, answer the
    /// proxy. Completions arrive out of order across clients; the job id
    /// correlates each one to the request parked in `jobs`, so cross-talk
    /// is impossible. Stale completions (job parked before a crash) find
    /// no entry and are dropped — the proxy's timeout already re-bound.
    fn finish_job(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        job: u64,
        handled: bool,
        unavailable: bool,
        envelope: String,
    ) {
        let Some(jctx) = self.jobs.remove(&job) else {
            return;
        };
        if handled {
            self.requests_handled += 1;
        }
        if let Some(flight) = &self.flight {
            flight.note_queue_depth(ctx.now(), (self.stash.len() + self.jobs.len()) as u64);
        }
        if unavailable && !jctx.delegated {
            if let (Some(delegate), Some(original)) =
                (self.delegate_target(ctx.now()), jctx.envelope)
            {
                if let (Some(rec), Some(s)) = (&self.obs, jctx.span) {
                    rec.set_attr(s, "outcome", "unavailable");
                    rec.end_span(s, ctx.now());
                }
                self.obs_delegate(ctx.now(), jctx.reply_to, jctx.request_id, delegate);
                self.send_to_peer(
                    ctx,
                    delegate,
                    WhisperMsg::PeerRequest {
                        request_id: jctx.request_id,
                        reply_to: jctx.reply_to,
                        delegated: true,
                        envelope: original,
                    },
                );
                return;
            }
        }
        if let (Some(rec), Some(s)) = (&self.obs, jctx.span) {
            rec.end_span(s, ctx.now());
        }
        self.send_to_peer(
            ctx,
            jctx.reply_to,
            WhisperMsg::PeerResponse {
                request_id: jctx.request_id,
                envelope,
            },
        );
    }

    /// Picks a live member other than us to delegate to when our own
    /// backend is unavailable (the operational-DB → data-warehouse failover
    /// of section 4.1).
    fn delegate_target(&self, now: whisper_simnet::SimTime) -> Option<PeerId> {
        let alive = self.fd.alive(now);
        self.members
            .iter()
            .copied()
            .filter(|&p| p != self.peer && alive.contains(&p))
            .max()
    }

    fn handle_peer_request(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        reply_to: PeerId,
        delegated: bool,
        envelope: String,
    ) {
        if !delegated && !self.is_coordinator() {
            // paper: "the b-peer found may not be the coordinator" — point
            // the proxy at the peer we believe is coordinating.
            let coordinator = self.election.coordinator().filter(|&c| c != self.peer);
            if let Some(rec) = &self.obs {
                if let Some(req) = rec.lookup(trace::NS_PEER, trace::peer_key(reply_to, request_id))
                {
                    let s = rec.instant("bpeer.redirect", req, ctx.now());
                    rec.set_attr(s, "peer", self.peer.value());
                    if let Some(c) = coordinator {
                        rec.set_attr(s, "coordinator", c.value());
                    }
                }
                rec.incr("bpeer.redirects", 1);
            }
            self.send_to_peer(
                ctx,
                reply_to,
                WhisperMsg::PeerRedirect {
                    request_id,
                    coordinator,
                },
            );
            return;
        }
        // Load sharing: the coordinator spreads work across live members.
        if !delegated && self.config.load_share {
            let mut pool = self.fd.alive(ctx.now());
            pool.retain(|p| self.members.contains(p));
            pool.push(self.peer);
            pool.sort();
            pool.dedup();
            if pool.len() > 1 {
                let target = pool[self.rr_cursor % pool.len()];
                self.rr_cursor += 1;
                if target != self.peer {
                    self.obs_delegate(ctx.now(), reply_to, request_id, target);
                    self.send_to_peer(
                        ctx,
                        target,
                        WhisperMsg::PeerRequest {
                            request_id,
                            reply_to,
                            delegated: true,
                            envelope,
                        },
                    );
                    return;
                }
            }
        }
        // Probe the backend by executing; on unavailability, try to
        // delegate to a semantically equivalent member.
        let exec_span = self.obs.as_ref().and_then(|rec| {
            let req = rec.lookup(trace::NS_PEER, trace::peer_key(reply_to, request_id))?;
            let s = rec.start_span("backend.execute", req, ctx.now());
            rec.set_attr(s, "peer", self.peer.value());
            rec.set_attr(s, "backend", self.backend.label().to_string());
            if delegated {
                rec.set_attr(s, "delegated", 1u64);
            }
            rec.incr("bpeer.executed", 1);
            Some(s)
        });
        // Parallel plane: park the request with the worker pool and let
        // its out-of-order completion (a self-injected JobDone) finish it.
        if self.ensure_pool(&*ctx) {
            let job = self.next_job;
            self.next_job += 1;
            self.jobs.insert(
                job,
                JobCtx {
                    request_id,
                    reply_to,
                    delegated,
                    envelope: (!delegated).then(|| envelope.clone()),
                    span: exec_span,
                },
            );
            if let Some(flight) = &self.flight {
                flight.note_queue_depth(ctx.now(), (self.stash.len() + self.jobs.len()) as u64);
            }
            let PoolState::Ready(pool) = &self.pool else {
                unreachable!("ensure_pool returned true");
            };
            pool.submit(
                reply_to,
                Job {
                    job,
                    request_id,
                    envelope,
                },
            );
            return;
        }
        let (response, handled, unavailable) = run_backend(self.backend.as_mut(), &envelope);
        if handled {
            self.requests_handled += 1;
        }
        if unavailable && !delegated {
            if let Some(delegate) = self.delegate_target(ctx.now()) {
                if let (Some(rec), Some(s)) = (&self.obs, exec_span) {
                    rec.set_attr(s, "outcome", "unavailable");
                    rec.end_span(s, ctx.now());
                }
                self.obs_delegate(ctx.now(), reply_to, request_id, delegate);
                self.send_to_peer(
                    ctx,
                    delegate,
                    WhisperMsg::PeerRequest {
                        request_id,
                        reply_to,
                        delegated: true,
                        envelope,
                    },
                );
                return;
            }
        }
        let msg = WhisperMsg::PeerResponse {
            request_id,
            envelope: response,
        };
        if self.config.processing_time == SimDuration::ZERO {
            if let (Some(rec), Some(s)) = (&self.obs, exec_span) {
                rec.end_span(s, ctx.now());
            }
            self.send_to_peer(ctx, reply_to, msg);
        } else {
            // Serve like a k-server queue (k = 1 unless `workers` widens
            // it): each request occupies the earliest-free virtual server,
            // queueing behind it when all are busy. The execute span stays
            // open until the response leaves, so it measures queueing +
            // service time.
            let now = ctx.now();
            let slot = self
                .busy_slots
                .iter_mut()
                .min()
                .expect("at least one server slot");
            let start = (*slot).max(now);
            *slot = start + self.config.processing_time;
            let ready_at = *slot;
            let stash_id = self.next_stash;
            self.next_stash += 1;
            self.stash.insert(stash_id, (reply_to, msg, exec_span));
            if let Some(flight) = &self.flight {
                flight.note_queue_depth(now, (self.stash.len() + self.jobs.len()) as u64);
            }
            ctx.set_timer(ready_at.since(now), RESPONSE_TOKEN_BASE | stash_id);
        }
    }

    /// Marks a hand-off of a request to another member on its trace.
    fn obs_delegate(
        &self,
        now: whisper_simnet::SimTime,
        reply_to: PeerId,
        request_id: u64,
        target: PeerId,
    ) {
        if let Some(rec) = &self.obs {
            if let Some(req) = rec.lookup(trace::NS_PEER, trace::peer_key(reply_to, request_id)) {
                let s = rec.instant("bpeer.delegate", req, now);
                rec.set_attr(s, "from", self.peer.value());
                rec.set_attr(s, "to", target.value());
            }
            rec.incr("bpeer.delegated", 1);
        }
    }
}

impl Actor<WhisperMsg> for BPeerActor {
    fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        // Give every member an initial grace period before suspecting it.
        for &m in &self.members {
            if m != self.peer {
                self.fd.record(m, ctx.now());
                self.disco.add_known_peer(m);
            }
        }
        self.publish_advertisements(ctx);
        let out = self.election.start_election(ctx.now());
        self.route_election_output(ctx, out);
        ctx.set_timer(self.config.heartbeat_period, TOKEN_HEARTBEAT);
        ctx.set_timer(self.config.heartbeat_period, TOKEN_FD_CHECK);
        // Refresh advertisements at half their lifetime so they never
        // expire from caches while the peer is alive.
        ctx.set_timer(self.republish_period(), TOKEN_REPUBLISH);
        if let Some(cfg) = self.pulse {
            ctx.set_timer(cfg.interval, TOKEN_PULSE);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        // A recovered peer rejoins: re-publish, re-elect (it may be the
        // rightful highest-id coordinator), restart beacons. Requests
        // parked with the worker pool before the crash are abandoned —
        // their completions find no job entry and are dropped, and the
        // proxy's timeout has already failed the requests over.
        self.jobs.clear();
        self.fd = FailureDetector::new(self.config.failure_timeout);
        self.election = BullyNode::new(self.peer, self.members.iter().copied(), self.config.bully);
        // the fresh BullyNode must observe through the same recorder
        if let Some(rec) = &self.obs {
            self.election.set_recorder(rec.clone());
        }
        self.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        // Unwrap (or forward, if we are the relay) relayed envelopes first.
        let Some((from, msg)) =
            crate::routing::unwrap_or_forward(&self.directory, self.peer, ctx, from, msg)
        else {
            return;
        };
        self.rx.on_send(msg.kind(), msg.wire_size());
        // Any traffic from a peer proves it is alive.
        if let Some(peer) = self.directory.peer_of(from) {
            self.fd.record(peer, ctx.now());
            if let Some(ledger) = &self.ledger {
                ledger.peer_heartbeat(peer.value(), ctx.now());
            }
        }
        match msg {
            WhisperMsg::P2p(m) => {
                let from_peer = match &m {
                    P2pMessage::Heartbeat { from, .. } => *from,
                    _ => self.directory.peer_of(from).unwrap_or(self.peer),
                };
                if let P2pMessage::Heartbeat {
                    from: hb_from,
                    group,
                } = &m
                {
                    if *group == self.group {
                        self.note_member(*hb_from, ctx.now());
                    }
                    self.fd.record(*hb_from, ctx.now());
                    if let Some(ledger) = &self.ledger {
                        ledger.peer_heartbeat(hb_from.value(), ctx.now());
                    }
                }
                let (sends, _events) = self.disco.handle_message(from_peer, m, ctx.now());
                for s in sends {
                    self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
                }
            }
            WhisperMsg::Election { group, msg } => {
                if group != self.group {
                    return;
                }
                let from_peer = match &msg {
                    ElectionMsg::Election { from }
                    | ElectionMsg::Answer { from }
                    | ElectionMsg::Coordinator { from } => *from,
                    ElectionMsg::RingElection { origin, .. }
                    | ElectionMsg::RingCoordinator { origin, .. } => *origin,
                };
                self.note_member(from_peer, ctx.now());
                self.fd.record(from_peer, ctx.now());
                let out = self.election.on_message(from_peer, msg, ctx.now());
                self.route_election_output(ctx, out);
            }
            WhisperMsg::PeerRequest {
                request_id,
                reply_to,
                delegated,
                envelope,
            } => {
                self.handle_peer_request(ctx, request_id, reply_to, delegated, envelope);
            }
            WhisperMsg::JobDone {
                job,
                request_id: _,
                handled,
                unavailable,
                envelope,
            } => {
                self.finish_job(ctx, job, handled, unavailable, envelope);
            }
            WhisperMsg::ScopeRequest { request_id } => {
                let reply = WhisperMsg::ScopeResponse {
                    request_id,
                    snapshot: Box::new(self.scope_snapshot(ctx.now())),
                };
                match self.directory.peer_of(from) {
                    Some(peer) => self.send_to_peer(ctx, peer, reply),
                    None => {
                        // Probes (whisper-top) are not in the peer directory;
                        // answer the node directly.
                        self.tx.on_send(reply.kind(), reply.wire_size());
                        ctx.send(from, reply);
                    }
                }
            }
            // An empty-events dump is a collector's solicitation: answer
            // with this node's ring. Filled dumps are collector traffic.
            WhisperMsg::FlightDump {
                request_id, events, ..
            } if events.is_empty() => {
                let reply = WhisperMsg::FlightDump {
                    request_id,
                    node: self.peer.value(),
                    events: self
                        .flight
                        .as_ref()
                        .map(FlightHandle::snapshot)
                        .unwrap_or_default(),
                };
                match self.directory.peer_of(from) {
                    Some(peer) => self.send_to_peer(ctx, peer, reply),
                    None => {
                        self.tx.on_send(reply.kind(), reply.wire_size());
                        ctx.send(from, reply);
                    }
                }
            }
            // B-peers neither originate SOAP traffic nor receive responses;
            // nested relay envelopes are already unwrapped above, and
            // telemetry frames are consumed by the collector alone.
            WhisperMsg::SoapRequest { .. }
            | WhisperMsg::SoapResponse { .. }
            | WhisperMsg::PeerResponse { .. }
            | WhisperMsg::PeerRedirect { .. }
            | WhisperMsg::ScopeResponse { .. }
            | WhisperMsg::Relayed { .. }
            | WhisperMsg::PulseReport { .. }
            | WhisperMsg::FlightDump { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WhisperMsg>, token: u64) {
        if token & ELECTION_TOKEN_BASE != 0 {
            let out = self
                .election
                .on_timer(token & !ELECTION_TOKEN_BASE, ctx.now());
            self.route_election_output(ctx, out);
            return;
        }
        if token & RESPONSE_TOKEN_BASE != 0 {
            if let Some((reply_to, msg, span)) = self.stash.remove(&(token & !RESPONSE_TOKEN_BASE))
            {
                if let (Some(rec), Some(s)) = (&self.obs, span) {
                    rec.end_span(s, ctx.now());
                }
                self.send_to_peer(ctx, reply_to, msg);
            }
            return;
        }
        match token {
            TOKEN_HEARTBEAT => {
                for target in self.heartbeat_targets() {
                    self.send_to_peer(
                        ctx,
                        target,
                        WhisperMsg::P2p(P2pMessage::Heartbeat {
                            group: self.group,
                            from: self.peer,
                        }),
                    );
                }
                ctx.set_timer(self.config.heartbeat_period, TOKEN_HEARTBEAT);
            }
            TOKEN_REPUBLISH => {
                self.publish_advertisements(ctx);
                if self.is_coordinator() {
                    let name = self.pipe_name();
                    let sends = self.disco.bind_input_pipe(
                        PipeId::new(self.group.value()),
                        name,
                        self.config.adv_lifetime,
                        ctx.now(),
                    );
                    for s in sends {
                        self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
                    }
                }
                ctx.set_timer(self.republish_period(), TOKEN_REPUBLISH);
            }
            TOKEN_FD_CHECK => {
                let now = ctx.now();
                let suspected = self.fd.suspected(now);
                if let Some(flight) = &self.flight {
                    // record suspicion *transitions*: one miss when a
                    // monitored peer goes silent, one restore when it is
                    // heard from again
                    let monitored = self.heartbeat_targets();
                    for &p in suspected.iter().filter(|p| monitored.contains(p)) {
                        if self.flight_suspects.insert(p.value()) {
                            let last_seen = self.fd.last_seen(p).unwrap_or(now);
                            flight.note_heartbeat_miss(now, p.value(), last_seen);
                        }
                    }
                    let restored: Vec<u64> = self
                        .flight_suspects
                        .iter()
                        .copied()
                        .filter(|&p| !suspected.iter().any(|s| s.value() == p))
                        .collect();
                    for p in restored {
                        self.flight_suspects.remove(&p);
                        flight.note_heartbeat_restore(now, p);
                    }
                }
                if let Some(ledger) = &self.ledger {
                    // Heartbeats form a star, so silence is only evidence
                    // for peers whose beacons this node expects: members
                    // monitor the coordinator, the coordinator monitors
                    // every member. The fd map also holds stale entries
                    // from boot-time election traffic; reporting those
                    // would oscillate the ledger against the beacons the
                    // coordinator keeps receiving.
                    let monitored = self.heartbeat_targets();
                    for &p in suspected.iter().filter(|p| monitored.contains(p)) {
                        let last_seen = self.fd.last_seen(p).unwrap_or(now);
                        ledger.peer_down(p.value(), last_seen, now);
                    }
                }
                if let Some(coord) = self.election.coordinator() {
                    if coord != self.peer && suspected.contains(&coord) {
                        // the coordinator went silent: the service is down
                        // from the coordinator's last sign of life until a
                        // successor takes over — elect a new one.
                        if let Some(ledger) = &self.ledger {
                            let last_seen = self.fd.last_seen(coord).unwrap_or(now);
                            ledger.coordinator_down(
                                self.group.value(),
                                coord.value(),
                                last_seen,
                                now,
                            );
                        }
                        if let Some(flight) = &self.flight {
                            flight.note_election(
                                now,
                                self.election.epoch(),
                                self.election.coordinator().map(|p| p.value()),
                                "started",
                            );
                        }
                        let out = self.election.start_election(now);
                        self.route_election_output(ctx, out);
                    }
                }
                ctx.set_timer(self.config.heartbeat_period, TOKEN_FD_CHECK);
            }
            TOKEN_PULSE => self.emit_pulse(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::EchoBackend;
    use whisper_xml::QName;

    fn sem_adv(group: GroupId) -> SemanticAdv {
        SemanticAdv {
            group,
            name: "test-group".into(),
            action: QName::with_ns("urn:u", "Act"),
            inputs: vec![],
            outputs: vec![],
            qos: None,
        }
    }

    fn peer_actor(peer: u64, members: &[u64]) -> BPeerActor {
        let g = GroupId::new(1);
        let member_ids: Vec<PeerId> = members.iter().map(|&m| PeerId::new(m)).collect();
        let directory = Directory::new(
            member_ids
                .iter()
                .map(|&p| (p, whisper_simnet::NodeId::from_index(p.value() as usize))),
        );
        BPeerActor::new(
            PeerId::new(peer),
            g,
            member_ids,
            sem_adv(g),
            Box::new(EchoBackend),
            directory,
            BPeerConfig::default(),
        )
    }

    #[test]
    fn accessors_and_construction() {
        let p = peer_actor(2, &[1, 2, 3]);
        assert_eq!(p.peer_id(), PeerId::new(2));
        assert_eq!(p.group_id(), GroupId::new(1));
        assert!(!p.is_coordinator());
        assert_eq!(p.requests_handled(), 0);
        assert_eq!(p.backend_label(), "echo");
    }

    #[test]
    fn heartbeat_targets_depend_on_role() {
        let mut p = peer_actor(3, &[1, 2, 3]);
        // no coordinator yet: beacon everyone
        assert_eq!(p.heartbeat_targets().len(), 2);
        // become coordinator: beacon all members
        let _ = p.election.start_election(whisper_simnet::SimTime::ZERO);
        assert!(p.is_coordinator());
        assert_eq!(p.heartbeat_targets(), vec![PeerId::new(1), PeerId::new(2)]);

        let mut member = peer_actor(1, &[1, 2, 3]);
        let _ = member.election.on_message(
            PeerId::new(3),
            ElectionMsg::Coordinator {
                from: PeerId::new(3),
            },
            whisper_simnet::SimTime::ZERO,
        );
        // member beacons only the coordinator
        assert_eq!(member.heartbeat_targets(), vec![PeerId::new(3)]);
    }

    #[test]
    fn execute_wraps_backend_results_and_faults() {
        let mut p = peer_actor(1, &[1]);
        let req = Envelope::request(whisper_xml::Element::with_text("Ping", "x")).to_xml_string();
        let resp = p.execute(&req);
        let env = Envelope::parse(&resp).unwrap();
        assert!(!env.is_fault());
        assert_eq!(env.body_payload().unwrap().name, "Echo");
        assert_eq!(p.requests_handled(), 1);

        let garbage = p.execute("not xml at all");
        let env = Envelope::parse(&garbage).unwrap();
        assert_eq!(env.as_fault().unwrap().code, FaultCode::Sender);

        let empty = p.execute(&Envelope::empty().to_xml_string());
        assert!(Envelope::parse(&empty).unwrap().is_fault());
    }

    #[test]
    fn unavailable_backend_yields_receiver_fault_when_alone() {
        let g = GroupId::new(1);
        let directory = Directory::new([(PeerId::new(1), whisper_simnet::NodeId::from_index(1))]);
        let mut reg = crate::backend::StudentRegistry::operational_db().with_sample_data();
        reg.set_available(false);
        let mut p = BPeerActor::new(
            PeerId::new(1),
            g,
            vec![PeerId::new(1)],
            sem_adv(g),
            Box::new(reg),
            directory,
            BPeerConfig::default(),
        );
        let mut payload = whisper_xml::Element::new("StudentInformation");
        payload.push_child(whisper_xml::Element::with_text("StudentID", "u1000"));
        let req = Envelope::request(payload).to_xml_string();
        let resp = p.execute(&req);
        let env = Envelope::parse(&resp).unwrap();
        assert_eq!(env.as_fault().unwrap().code, FaultCode::Receiver);
    }
}
