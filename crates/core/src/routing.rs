//! Relay routing: JXTA's relay service for firewalled peers.
//!
//! The paper (§5) credits JXTA with "transporting messages between peers,
//! either directly, or via relay peers capable of both enabling multi-hop
//! routing of messages, and traversing firewall or NAT equipment that
//! isolates peers from public networks". Whisper models that: the
//! [`Directory`] carries static relay routes, every actor sends through
//! [`send_routed`], and relays forward [`WhisperMsg::Relayed`] envelopes
//! with [`forward_relayed`]. A firewalled peer exchanges traffic only with
//! its relay; everyone else addresses it through that relay.

use crate::directory::Directory;
use crate::msg::WhisperMsg;
use whisper_p2p::PeerId;
use whisper_simnet::Context;

/// Sends `msg` from peer `me` to peer `to`, wrapping it in a
/// [`WhisperMsg::Relayed`] envelope when either endpoint sits behind a
/// relay. Unroutable destinations are dropped silently, like datagrams.
pub(crate) fn send_routed(
    directory: &Directory,
    me: PeerId,
    ctx: &mut Context<'_, WhisperMsg>,
    to: PeerId,
    msg: WhisperMsg,
) {
    // Our own relay carries everything except traffic to the relay itself;
    // otherwise the destination's relay (if any) fronts it.
    let via = match directory.relay_of(me) {
        Some(r) if to != r => Some(r),
        _ => match directory.relay_of(to) {
            Some(r) if r != me => Some(r),
            _ => None,
        },
    };
    match via {
        Some(relay) => {
            if let Some(node) = directory.node_of(relay) {
                ctx.send(
                    node,
                    WhisperMsg::Relayed {
                        dest: to,
                        origin: me,
                        inner: Box::new(msg),
                    },
                );
            }
        }
        None => {
            if let Some(node) = directory.node_of(to) {
                ctx.send(node, msg);
            }
        }
    }
}

/// Forwards a relayed envelope one hop closer to `dest` (called by the
/// relay). When `dest` itself sits behind another relay, the envelope is
/// handed to that relay; otherwise it is delivered directly.
pub(crate) fn forward_relayed(
    directory: &Directory,
    me: PeerId,
    ctx: &mut Context<'_, WhisperMsg>,
    dest: PeerId,
    origin: PeerId,
    inner: Box<WhisperMsg>,
) {
    let next = match directory.relay_of(dest) {
        Some(r) if r != me => r,
        _ => dest,
    };
    if let Some(node) = directory.node_of(next) {
        ctx.send(
            node,
            WhisperMsg::Relayed {
                dest,
                origin,
                inner,
            },
        );
    }
}

/// The receive-side counterpart: resolves a possibly-relayed message into
/// `(effective_sender_node, payload)` for `me`, or forwards it and returns
/// `None` when `me` is just a hop.
pub(crate) fn unwrap_or_forward(
    directory: &Directory,
    me: PeerId,
    ctx: &mut Context<'_, WhisperMsg>,
    from: whisper_simnet::NodeId,
    msg: WhisperMsg,
) -> Option<(whisper_simnet::NodeId, WhisperMsg)> {
    match msg {
        WhisperMsg::Relayed {
            dest,
            origin,
            inner,
        } => {
            if dest == me {
                let effective_from = directory.node_of(origin).unwrap_or(from);
                Some((effective_from, *inner))
            } else {
                forward_relayed(directory, me, ctx, dest, origin, inner);
                None
            }
        }
        other => Some((from, other)),
    }
}
