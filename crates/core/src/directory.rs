//! The peer↔node directory: Whisper's stand-in for JXTA endpoint
//! resolution.
//!
//! JXTA resolves peer ids to transport endpoints through its endpoint
//! service. In a Whisper deployment the mapping is fixed at wiring time, so
//! a shared immutable table is both realistic and simple.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use whisper_p2p::PeerId;
use whisper_simnet::NodeId;

/// Shared bidirectional peer↔node mapping used by all actors of a
/// deployment — Whisper's stand-in for JXTA endpoint resolution. Cloning is
/// cheap (an `Arc` bump); peers joining at runtime [`register`] themselves,
/// which every clone observes immediately.
///
/// [`register`]: Directory::register
#[derive(Debug, Clone, Default)]
pub struct Directory {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    peer_to_node: BTreeMap<PeerId, NodeId>,
    node_to_peer: BTreeMap<NodeId, PeerId>,
    /// Destination peer → relay peer. JXTA's relay service: traffic for a
    /// firewalled peer is sent to its relay, which forwards it.
    routes: BTreeMap<PeerId, PeerId>,
}

impl Directory {
    /// Builds a directory from explicit pairs.
    ///
    /// # Panics
    ///
    /// Panics when a peer or node appears twice — a wiring bug.
    pub fn new(pairs: impl IntoIterator<Item = (PeerId, NodeId)>) -> Self {
        Directory::with_routes(pairs, [])
    }

    /// Builds a directory with relay routes: traffic for each `(dest,
    /// relay)` pair is delivered to `relay`, which forwards it (JXTA's
    /// relay service for firewalled peers).
    ///
    /// # Panics
    ///
    /// Panics on duplicate peers/nodes, a route whose destination or relay
    /// is unknown, a self-relaying route, or a relay that is itself routed
    /// (one hop only — JXTA relays are edge services, not an overlay).
    pub fn with_routes(
        pairs: impl IntoIterator<Item = (PeerId, NodeId)>,
        routes: impl IntoIterator<Item = (PeerId, PeerId)>,
    ) -> Self {
        let mut inner = Inner::default();
        for (p, n) in pairs {
            assert!(
                inner.peer_to_node.insert(p, n).is_none(),
                "peer {p} registered twice"
            );
            assert!(
                inner.node_to_peer.insert(n, p).is_none(),
                "node {n} registered twice"
            );
        }
        for (dest, relay) in routes {
            assert!(dest != relay, "peer {dest} cannot relay itself");
            assert!(
                inner.peer_to_node.contains_key(&dest),
                "unknown routed peer {dest}"
            );
            assert!(
                inner.peer_to_node.contains_key(&relay),
                "unknown relay {relay}"
            );
            inner.routes.insert(dest, relay);
        }
        for relay in inner.routes.values() {
            assert!(
                !inner.routes.contains_key(relay),
                "relay {relay} is itself behind a relay"
            );
        }
        Directory {
            inner: Arc::new(RwLock::new(inner)),
        }
    }

    /// Registers a peer that joined at runtime (JXTA networks "are
    /// inherently dynamic"). Every clone of the directory sees the new
    /// entry immediately.
    ///
    /// # Panics
    ///
    /// Panics when the peer or node is already registered.
    pub fn register(&self, peer: PeerId, node: NodeId) {
        let mut inner = self.inner.write().expect("directory lock poisoned");
        assert!(
            inner.peer_to_node.insert(peer, node).is_none(),
            "peer {peer} registered twice"
        );
        assert!(
            inner.node_to_peer.insert(node, peer).is_none(),
            "node {node} registered twice"
        );
    }

    /// The highest registered peer id, if any (used to mint ids for
    /// late-joining peers).
    pub fn max_peer(&self) -> Option<PeerId> {
        let inner = self.inner.read().expect("directory lock poisoned");
        inner.peer_to_node.keys().next_back().copied()
    }

    /// The relay fronting `peer`, when it is firewalled.
    pub fn relay_of(&self, peer: PeerId) -> Option<PeerId> {
        self.inner
            .read()
            .expect("directory lock poisoned")
            .routes
            .get(&peer)
            .copied()
    }

    /// The node hosting `peer`.
    pub fn node_of(&self, peer: PeerId) -> Option<NodeId> {
        self.inner
            .read()
            .expect("directory lock poisoned")
            .peer_to_node
            .get(&peer)
            .copied()
    }

    /// The peer hosted on `node` (clients have no peer identity).
    pub fn peer_of(&self, node: NodeId) -> Option<PeerId> {
        self.inner
            .read()
            .expect("directory lock poisoned")
            .node_to_peer
            .get(&node)
            .copied()
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("directory lock poisoned")
            .peer_to_node
            .len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All peers, in id order (snapshot).
    pub fn peers(&self) -> Vec<PeerId> {
        self.inner
            .read()
            .expect("directory lock poisoned")
            .peer_to_node
            .keys()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_lookup() {
        let d = Directory::new([
            (PeerId::new(1), NodeId::from_index(0)),
            (PeerId::new(2), NodeId::from_index(1)),
        ]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.node_of(PeerId::new(2)), Some(NodeId::from_index(1)));
        assert_eq!(d.peer_of(NodeId::from_index(0)), Some(PeerId::new(1)));
        assert_eq!(d.node_of(PeerId::new(9)), None);
        assert_eq!(d.peers().len(), 2);
    }

    #[test]
    fn runtime_registration_is_visible_to_clones() {
        let d = Directory::new([(PeerId::new(1), NodeId::from_index(0))]);
        let clone = d.clone();
        d.register(PeerId::new(2), NodeId::from_index(1));
        assert_eq!(clone.node_of(PeerId::new(2)), Some(NodeId::from_index(1)));
        assert_eq!(clone.max_peer(), Some(PeerId::new(2)));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn runtime_duplicate_rejected() {
        let d = Directory::new([(PeerId::new(1), NodeId::from_index(0))]);
        d.register(PeerId::new(1), NodeId::from_index(5));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_peer_panics() {
        let _ = Directory::new([
            (PeerId::new(1), NodeId::from_index(0)),
            (PeerId::new(1), NodeId::from_index(1)),
        ]);
    }

    #[test]
    fn relay_routes_resolve() {
        let p = |n| PeerId::new(n);
        let d = Directory::with_routes(
            [
                (p(1), NodeId::from_index(0)),
                (p(2), NodeId::from_index(1)),
                (p(3), NodeId::from_index(2)),
            ],
            [(p(1), p(3))],
        );
        assert_eq!(d.relay_of(p(1)), Some(p(3)));
        assert_eq!(d.relay_of(p(2)), None);
        assert_eq!(d.relay_of(p(3)), None);
    }

    #[test]
    #[should_panic(expected = "cannot relay itself")]
    fn self_relay_rejected() {
        let p = |n| PeerId::new(n);
        let _ = Directory::with_routes([(p(1), NodeId::from_index(0))], [(p(1), p(1))]);
    }

    #[test]
    #[should_panic(expected = "itself behind a relay")]
    fn chained_relays_rejected() {
        let p = |n| PeerId::new(n);
        let _ = Directory::with_routes(
            [
                (p(1), NodeId::from_index(0)),
                (p(2), NodeId::from_index(1)),
                (p(3), NodeId::from_index(2)),
            ],
            [(p(1), p(2)), (p(2), p(3))],
        );
    }

    #[test]
    #[should_panic(expected = "unknown relay")]
    fn unknown_relay_rejected() {
        let p = |n| PeerId::new(n);
        let _ = Directory::with_routes([(p(1), NodeId::from_index(0))], [(p(1), p(9))]);
    }

    #[test]
    fn empty_directory() {
        let d = Directory::default();
        assert!(d.is_empty());
        assert_eq!(d.node_of(PeerId::new(0)), None);
    }
}
