//! The semantic matchmaker: deciding whether a discovered semantic
//! advertisement can serve a Web-service operation, and ranking candidates.
//!
//! This is the heart of Whisper's "semantic integration": the SWS-proxy
//! fetches semantic advertisements from the P2P network and matches their
//! action/input/output concepts against the WSDL-S annotations of the
//! service (paper, section 3.2). The matching is directional:
//!
//! * **action** — the advertised capability must be the requested action or
//!   a *specialization* of it (degree Exact or Subsume);
//! * **inputs** — the peer must accept what the service supplies, so the
//!   advertised input concept may be equal or *more general* (Exact or
//!   PlugIn);
//! * **outputs** — the peer must produce what the service promises, so the
//!   advertised output concept may be equal or *more specific* (Exact or
//!   Subsume).
//!
//! The paper's own listing checks plain equality (`equals`); equality always
//! satisfies these rules, so the matchmaker is a strict generalization, and
//! the discovery-quality experiment quantifies what the generalization buys.

use crate::qos::{QosMonitor, SelectionPolicy};
use rand::Rng;
use whisper_ontology::{MatchDegree, Ontology};
use whisper_p2p::SemanticAdv;
use whisper_wsdl::OperationSemantics;

/// The result of matching one advertisement against one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// Degree for the action concept.
    pub action: MatchDegree,
    /// Weakest input degree (Exact when there are no inputs).
    pub inputs: MatchDegree,
    /// Weakest output degree (Exact when there are no outputs).
    pub outputs: MatchDegree,
    /// Mean numeric score over all compared concept pairs, for ranking.
    pub score: f64,
}

impl MatchOutcome {
    /// Whether the advertisement satisfies the directional acceptance rules
    /// and can therefore serve the operation.
    pub fn is_acceptable(&self) -> bool {
        matches!(self.action, MatchDegree::Exact | MatchDegree::Subsume)
            && matches!(self.inputs, MatchDegree::Exact | MatchDegree::PlugIn)
            && matches!(self.outputs, MatchDegree::Exact | MatchDegree::Subsume)
    }
}

/// Matches `adv` against the resolved semantics of one operation.
///
/// Concepts that do not resolve in `onto` yield [`MatchDegree::Fail`] for
/// their position; signature-arity mismatches fail the whole position.
pub fn match_semantic_adv(
    onto: &Ontology,
    request: &OperationSemantics,
    adv: &SemanticAdv,
) -> MatchOutcome {
    let resolve = |q: &whisper_xml::QName| onto.class_by_qname(q);

    let action = match resolve(&adv.action) {
        Some(a) => onto.match_concepts(request.action, a),
        None => MatchDegree::Fail,
    };

    let list_degree = |requested: &[whisper_ontology::ClassId],
                       advertised: &[whisper_xml::QName]|
     -> (MatchDegree, f64) {
        if requested.len() != advertised.len() {
            return (MatchDegree::Fail, 0.0);
        }
        if requested.is_empty() {
            return (MatchDegree::Exact, 1.0);
        }
        let mut weakest = MatchDegree::Exact;
        let mut sum = 0.0;
        for (r, aq) in requested.iter().zip(advertised) {
            let d = match resolve(aq) {
                Some(a) => onto.match_concepts(*r, a),
                None => MatchDegree::Fail,
            };
            weakest = weakest.min(d);
            sum += d.score();
        }
        (weakest, sum / requested.len() as f64)
    };

    let (inputs, in_score) = list_degree(&request.inputs, &adv.inputs);
    let (outputs, out_score) = list_degree(&request.outputs, &adv.outputs);
    let score = (action.score() + in_score + out_score) / 3.0;
    MatchOutcome {
        action,
        inputs,
        outputs,
        score,
    }
}

/// Filters `candidates` to the acceptable ones and picks one according to
/// `policy`. Returns the index into `candidates`.
///
/// `rng` is only consulted by [`SelectionPolicy::Random`]; `monitor` only
/// by [`SelectionPolicy::Adaptive`].
pub fn select_candidate(
    onto: &Ontology,
    request: &OperationSemantics,
    candidates: &[SemanticAdv],
    policy: SelectionPolicy,
    rng: &mut impl Rng,
    monitor: &QosMonitor,
) -> Option<usize> {
    let acceptable: Vec<(usize, MatchOutcome)> = candidates
        .iter()
        .enumerate()
        .map(|(i, adv)| (i, match_semantic_adv(onto, request, adv)))
        .filter(|(_, o)| o.is_acceptable())
        .collect();
    if acceptable.is_empty() {
        return None;
    }
    let qos_utility = |i: usize| {
        candidates[i]
            .qos
            .map(|q| q.utility())
            .unwrap_or(f64::NEG_INFINITY)
    };
    match policy {
        SelectionPolicy::FirstFound => Some(acceptable[0].0),
        SelectionPolicy::Random => {
            let pick = rng.gen_range(0..acceptable.len());
            Some(acceptable[pick].0)
        }
        SelectionPolicy::SemanticThenQos => acceptable
            .iter()
            .max_by(|(ia, a), (ib, b)| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        qos_utility(*ia)
                            .partial_cmp(&qos_utility(*ib))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .map(|(i, _)| *i),
        SelectionPolicy::QosOnly => acceptable
            .iter()
            .max_by(|(ia, _), (ib, _)| {
                qos_utility(*ia)
                    .partial_cmp(&qos_utility(*ib))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| *i),
        SelectionPolicy::Adaptive => {
            // measured utility once warm, advertised claims while cold
            let effective = |i: usize| {
                monitor
                    .observed_utility(candidates[i].group)
                    .unwrap_or_else(|| qos_utility(i))
            };
            acceptable
                .iter()
                .max_by(|(ia, _), (ib, _)| {
                    effective(*ia)
                        .partial_cmp(&effective(*ib))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| *i)
        }
    }
}

/// Purely *syntactic* matching — the JXTA baseline the paper criticizes for
/// "high recall and low precision": an advertisement matches when its
/// symbolic name equals the requested operation name, regardless of
/// concepts.
pub fn syntactic_match(operation_name: &str, adv: &SemanticAdv) -> bool {
    adv.name == operation_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
    use whisper_p2p::{GroupId, QosSpec};
    use whisper_wsdl::samples::student_management;
    use whisper_xml::QName;

    fn q(local: &str) -> QName {
        QName::with_ns(UNIVERSITY_NS, local)
    }

    fn adv(group: u64, action: &str, input: &str, output: &str) -> SemanticAdv {
        SemanticAdv {
            group: GroupId::new(group),
            name: format!("group{group}"),
            action: q(action),
            inputs: vec![q(input)],
            outputs: vec![q(output)],
            qos: None,
        }
    }

    fn request() -> OperationSemantics {
        student_management()
            .operation("StudentInformation")
            .unwrap()
            .resolve(&university_ontology())
            .unwrap()
    }

    #[test]
    fn exact_advertisement_is_acceptable() {
        let onto = university_ontology();
        let a = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &a);
        assert_eq!(o.action, MatchDegree::Exact);
        assert_eq!(o.inputs, MatchDegree::Exact);
        assert_eq!(o.outputs, MatchDegree::Exact);
        assert!(o.is_acceptable());
        assert!((o.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn specialized_output_is_acceptable_generalized_is_not() {
        let onto = university_ontology();
        // warehouse returns transcripts — a specialization of StudentInfo
        let special = adv(1, "StudentInformation", "StudentID", "StudentTranscript");
        let o = match_semantic_adv(&onto, &request(), &special);
        assert_eq!(o.outputs, MatchDegree::Subsume);
        assert!(o.is_acceptable());
        // a group producing generic Records is too general to promise
        let general = adv(2, "StudentInformation", "StudentID", "Record");
        let o = match_semantic_adv(&onto, &request(), &general);
        assert_eq!(o.outputs, MatchDegree::PlugIn);
        assert!(!o.is_acceptable());
    }

    #[test]
    fn generalized_input_is_acceptable_specialized_is_not() {
        let onto = university_ontology();
        // peer accepts any Identifier: fine, StudentID is one
        let general_in = adv(1, "StudentInformation", "Identifier", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &general_in);
        assert_eq!(o.inputs, MatchDegree::PlugIn);
        assert!(o.is_acceptable());
        // peer demands a NationalID: the service cannot supply that
        let unrelated_in = adv(2, "StudentInformation", "NationalID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &unrelated_in);
        assert_eq!(o.inputs, MatchDegree::Fail);
        assert!(!o.is_acceptable());
    }

    #[test]
    fn action_must_be_equal_or_more_specific() {
        let onto = university_ontology();
        let specific = adv(1, "StudentTranscriptRetrieval", "StudentID", "StudentInfo");
        assert!(match_semantic_adv(&onto, &request(), &specific).is_acceptable());
        let too_general = adv(2, "InformationRetrieval", "StudentID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &too_general);
        assert_eq!(o.action, MatchDegree::PlugIn);
        assert!(!o.is_acceptable());
        let unrelated = adv(3, "EnrollmentUpdate", "StudentID", "StudentInfo");
        assert!(!match_semantic_adv(&onto, &request(), &unrelated).is_acceptable());
    }

    #[test]
    fn arity_mismatch_and_foreign_concepts_fail() {
        let onto = university_ontology();
        let mut a = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        a.inputs.push(q("StudentID"));
        let o = match_semantic_adv(&onto, &request(), &a);
        assert_eq!(o.inputs, MatchDegree::Fail);

        let mut foreign = adv(2, "StudentInformation", "StudentID", "StudentInfo");
        foreign.action = QName::with_ns("urn:elsewhere", "StudentInformation");
        let o = match_semantic_adv(&onto, &request(), &foreign);
        assert_eq!(o.action, MatchDegree::Fail);
    }

    #[test]
    fn selection_policies() {
        let onto = university_ontology();
        let mut rng = SmallRng::seed_from_u64(5);
        let exact = adv(0, "StudentInformation", "StudentID", "StudentInfo");
        let mut exact_good_qos = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        exact_good_qos.qos = Some(QosSpec {
            latency_us: 100,
            reliability: 0.999,
            cost: 0.1,
        });
        let weaker = adv(2, "StudentInformation", "Identifier", "StudentInfo");
        let bad = adv(3, "EnrollmentUpdate", "StudentID", "StudentInfo");
        let candidates = vec![
            bad.clone(),
            weaker.clone(),
            exact.clone(),
            exact_good_qos.clone(),
        ];

        let req = request();
        // FirstFound skips the unacceptable candidate
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::FirstFound,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(1)
        );
        // SemanticThenQos: both exact advs outscore `weaker`; QoS breaks the tie
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::SemanticThenQos,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(3)
        );
        // QosOnly picks the only candidate with QoS claims
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::QosOnly,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(3)
        );
        // Random picks an acceptable one
        for _ in 0..20 {
            let pick = select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Random,
                &mut rng,
                &QosMonitor::default(),
            )
            .unwrap();
            assert_ne!(pick, 0, "random must never pick the unacceptable candidate");
        }
        // nothing acceptable -> None
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &[bad],
                SelectionPolicy::SemanticThenQos,
                &mut rng,
                &QosMonitor::default()
            ),
            None
        );
    }

    #[test]
    fn syntactic_match_is_name_equality() {
        let a = adv(1, "EnrollmentUpdate", "NationalID", "Record");
        assert!(!syntactic_match("StudentInformation", &a));
        let mut named = a.clone();
        named.name = "StudentInformation".into();
        // matches on name even though the semantics are wrong: the paper's
        // low-precision failure mode
        assert!(syntactic_match("StudentInformation", &named));
    }

    #[test]
    fn adaptive_policy_overrides_lying_advertisements() {
        let onto = university_ontology();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut boaster = adv(0, "StudentInformation", "StudentID", "StudentInfo");
        boaster.qos = Some(QosSpec {
            latency_us: 100,
            reliability: 0.999,
            cost: 0.1,
        });
        let mut honest = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        honest.qos = Some(QosSpec {
            latency_us: 2_000,
            reliability: 0.95,
            cost: 1.0,
        });
        let candidates = vec![boaster.clone(), honest.clone()];
        let req = request();

        // Cold: the boaster's claims win.
        let cold = QosMonitor::new(3);
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Adaptive,
                &mut rng,
                &cold
            ),
            Some(0)
        );
        // Warm: measurements show the boaster is slow and flaky.
        let mut warm = QosMonitor::new(3);
        for _ in 0..5 {
            warm.record_response(
                boaster.group,
                whisper_simnet::SimDuration::from_millis(50),
                true,
            );
            warm.record_response(
                honest.group,
                whisper_simnet::SimDuration::from_millis(1),
                false,
            );
        }
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Adaptive,
                &mut rng,
                &warm
            ),
            Some(1)
        );
    }
}
