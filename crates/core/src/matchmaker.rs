//! The semantic matchmaker: deciding whether a discovered semantic
//! advertisement can serve a Web-service operation, and ranking candidates.
//!
//! This is the heart of Whisper's "semantic integration": the SWS-proxy
//! fetches semantic advertisements from the P2P network and matches their
//! action/input/output concepts against the WSDL-S annotations of the
//! service (paper, section 3.2). The matching is directional:
//!
//! * **action** — the advertised capability must be the requested action or
//!   a *specialization* of it (degree Exact or Subsume);
//! * **inputs** — the peer must accept what the service supplies, so the
//!   advertised input concept may be equal or *more general* (Exact or
//!   PlugIn);
//! * **outputs** — the peer must produce what the service promises, so the
//!   advertised output concept may be equal or *more specific* (Exact or
//!   Subsume).
//!
//! The paper's own listing checks plain equality (`equals`); equality always
//! satisfies these rules, so the matchmaker is a strict generalization, and
//! the discovery-quality experiment quantifies what the generalization buys.

use crate::qos::{QosMonitor, SelectionPolicy};
use rand::Rng;
use std::collections::HashMap;
use whisper_ontology::{MatchDegree, Ontology};
use whisper_p2p::{GroupId, QosSpec, SemanticAdv};
use whisper_simnet::SimTime;
use whisper_wsdl::OperationSemantics;

/// The result of matching one advertisement against one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// Degree for the action concept.
    pub action: MatchDegree,
    /// Weakest input degree (Exact when there are no inputs).
    pub inputs: MatchDegree,
    /// Weakest output degree (Exact when there are no outputs).
    pub outputs: MatchDegree,
    /// Mean numeric score over all compared concept pairs, for ranking.
    pub score: f64,
}

impl MatchOutcome {
    /// Whether the advertisement satisfies the directional acceptance rules
    /// and can therefore serve the operation.
    pub fn is_acceptable(&self) -> bool {
        matches!(self.action, MatchDegree::Exact | MatchDegree::Subsume)
            && matches!(self.inputs, MatchDegree::Exact | MatchDegree::PlugIn)
            && matches!(self.outputs, MatchDegree::Exact | MatchDegree::Subsume)
    }
}

/// Matches `adv` against the resolved semantics of one operation.
///
/// Concepts that do not resolve in `onto` yield [`MatchDegree::Fail`] for
/// their position; signature-arity mismatches fail the whole position.
pub fn match_semantic_adv(
    onto: &Ontology,
    request: &OperationSemantics,
    adv: &SemanticAdv,
) -> MatchOutcome {
    let resolve = |q: &whisper_xml::QName| onto.class_by_qname(q);

    let action = match resolve(&adv.action) {
        Some(a) => onto.match_concepts(request.action, a),
        None => MatchDegree::Fail,
    };

    let list_degree = |requested: &[whisper_ontology::ClassId],
                       advertised: &[whisper_xml::QName]|
     -> (MatchDegree, f64) {
        if requested.len() != advertised.len() {
            return (MatchDegree::Fail, 0.0);
        }
        if requested.is_empty() {
            return (MatchDegree::Exact, 1.0);
        }
        let mut weakest = MatchDegree::Exact;
        let mut sum = 0.0;
        for (r, aq) in requested.iter().zip(advertised) {
            let d = match resolve(aq) {
                Some(a) => onto.match_concepts(*r, a),
                None => MatchDegree::Fail,
            };
            weakest = weakest.min(d);
            sum += d.score();
        }
        (weakest, sum / requested.len() as f64)
    };

    let (inputs, in_score) = list_degree(&request.inputs, &adv.inputs);
    let (outputs, out_score) = list_degree(&request.outputs, &adv.outputs);
    let score = (action.score() + in_score + out_score) / 3.0;
    MatchOutcome {
        action,
        inputs,
        outputs,
        score,
    }
}

/// A candidate that survived the acceptability filter, paired with its
/// match outcome. Produced by [`rank_candidates`] and stored in the
/// [`SemanticMatchCache`] so repeat requests skip ontology matching.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// The acceptable advertisement.
    pub adv: SemanticAdv,
    /// Its match degrees and score against the operation.
    pub outcome: MatchOutcome,
}

/// The per-candidate facts a selection policy consults; extracting them
/// lets the cached and uncached paths share one picker (and therefore
/// identical RNG consumption, which the equivalence property test relies
/// on).
struct CandidateView {
    score: f64,
    qos: Option<QosSpec>,
    group: GroupId,
}

/// Picks among acceptable candidates (in ranking order) per `policy`.
/// Returns an index into `views`.
fn pick_from_views(
    views: &[CandidateView],
    policy: SelectionPolicy,
    rng: &mut impl Rng,
    monitor: &QosMonitor,
) -> Option<usize> {
    if views.is_empty() {
        return None;
    }
    let qos_utility = |i: usize| {
        views[i]
            .qos
            .map(|q| q.utility())
            .unwrap_or(f64::NEG_INFINITY)
    };
    match policy {
        SelectionPolicy::FirstFound => Some(0),
        SelectionPolicy::Random => Some(rng.gen_range(0..views.len())),
        SelectionPolicy::SemanticThenQos => views
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        qos_utility(*ia)
                            .partial_cmp(&qos_utility(*ib))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .map(|(i, _)| i),
        SelectionPolicy::QosOnly => views
            .iter()
            .enumerate()
            .max_by(|(ia, _), (ib, _)| {
                qos_utility(*ia)
                    .partial_cmp(&qos_utility(*ib))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i),
        SelectionPolicy::Adaptive => {
            // measured utility once warm, advertised claims while cold
            let effective = |i: usize| {
                monitor
                    .observed_utility(views[i].group)
                    .unwrap_or_else(|| qos_utility(i))
            };
            views
                .iter()
                .enumerate()
                .max_by(|(ia, _), (ib, _)| {
                    effective(*ia)
                        .partial_cmp(&effective(*ib))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
        }
    }
}

/// Runs the ontology matching pass over `candidates` (in iteration order)
/// and keeps the acceptable ones. This is the expensive half of
/// [`select_candidate`], split out so its result can be memoized.
pub fn rank_candidates<'a>(
    onto: &Ontology,
    request: &OperationSemantics,
    candidates: impl Iterator<Item = &'a SemanticAdv>,
) -> Vec<RankedCandidate> {
    candidates
        .map(|adv| RankedCandidate {
            outcome: match_semantic_adv(onto, request, adv),
            adv: adv.clone(),
        })
        .filter(|r| r.outcome.is_acceptable())
        .collect()
}

/// Applies the selection policy to an already-ranked candidate list (the
/// cheap half of [`select_candidate`]). Returns an index into `ranked`.
///
/// `rng` is only consulted by [`SelectionPolicy::Random`]; `monitor` only
/// by [`SelectionPolicy::Adaptive`]. Both halves consume the RNG exactly
/// as [`select_candidate`] does, so a memoized ranked list yields the same
/// pick the uncached path would.
pub fn select_from_ranked(
    ranked: &[RankedCandidate],
    policy: SelectionPolicy,
    rng: &mut impl Rng,
    monitor: &QosMonitor,
) -> Option<usize> {
    let views: Vec<CandidateView> = ranked
        .iter()
        .map(|r| CandidateView {
            score: r.outcome.score,
            qos: r.adv.qos,
            group: r.adv.group,
        })
        .collect();
    pick_from_views(&views, policy, rng, monitor)
}

/// Filters `candidates` to the acceptable ones and picks one according to
/// `policy`. Returns the index into `candidates`.
///
/// `rng` is only consulted by [`SelectionPolicy::Random`]; `monitor` only
/// by [`SelectionPolicy::Adaptive`].
pub fn select_candidate(
    onto: &Ontology,
    request: &OperationSemantics,
    candidates: &[SemanticAdv],
    policy: SelectionPolicy,
    rng: &mut impl Rng,
    monitor: &QosMonitor,
) -> Option<usize> {
    let acceptable: Vec<(usize, MatchOutcome)> = candidates
        .iter()
        .enumerate()
        .map(|(i, adv)| (i, match_semantic_adv(onto, request, adv)))
        .filter(|(_, o)| o.is_acceptable())
        .collect();
    let views: Vec<CandidateView> = acceptable
        .iter()
        .map(|(i, o)| CandidateView {
            score: o.score,
            qos: candidates[*i].qos,
            group: candidates[*i].group,
        })
        .collect();
    pick_from_views(&views, policy, rng, monitor).map(|pos| acceptable[pos].0)
}

/// Memoized ranked candidate lists, keyed per operation on the discovery
/// cache **epoch** and the request's failed-group set.
///
/// Invalidation covers exactly the ways a cached ranking can go stale:
///
/// * **epoch bump** — any insert/replace/expiry-sweep of the discovery
///   cache changes the candidate pool; the stored epoch no longer matches.
/// * **TTL expiry** — entries also record the earliest expiry among the
///   advertisements they ranked (`valid_until`); pure time passage past it
///   is a miss even though nothing mutated (an expired adv can only come
///   back via re-publication, which bumps the epoch).
/// * **group failure** — the failed-group set is part of the key, so a
///   request that just excluded a group rebuilds rather than reusing a
///   ranking that still contains it.
///
/// Memory is bounded: one entry per operation name, replaced in place.
#[derive(Debug, Default)]
pub struct SemanticMatchCache {
    entries: HashMap<String, MemoEntry>,
    hits: u64,
    rebuilds: u64,
}

#[derive(Debug)]
struct MemoEntry {
    epoch: u64,
    failed: Vec<GroupId>,
    /// Entries are valid strictly before this instant: the earliest expiry
    /// among the ranked advertisements (or +inf when the list is empty —
    /// an unacceptable pool cannot become acceptable by expiring).
    valid_until: SimTime,
    ranked: Vec<RankedCandidate>,
}

/// Order-insensitive equality of two small failed-group sets (per-request
/// lists never contain duplicates: a failed group is excluded from every
/// later selection, so it cannot fail twice).
fn same_group_set(a: &[GroupId], b: &[GroupId]) -> bool {
    a.len() == b.len() && a.iter().all(|g| b.contains(g))
}

impl SemanticMatchCache {
    /// Creates an empty memo.
    pub fn new() -> Self {
        SemanticMatchCache::default()
    }

    /// Returns the memoized ranking for `operation`, rebuilding it via
    /// `build` when absent or stale. `build` returns the ranked list plus
    /// the earliest expiry among the advertisements it consulted.
    ///
    /// The boolean is `true` on a memo hit (no ontology matching ran).
    pub fn get_or_build(
        &mut self,
        operation: &str,
        epoch: u64,
        failed: &[GroupId],
        now: SimTime,
        build: impl FnOnce() -> (Vec<RankedCandidate>, SimTime),
    ) -> (&[RankedCandidate], bool) {
        let fresh = self.entries.get(operation).is_some_and(|e| {
            e.epoch == epoch && now < e.valid_until && same_group_set(&e.failed, failed)
        });
        if fresh {
            self.hits += 1;
            return (&self.entries[operation].ranked, true);
        }
        self.rebuilds += 1;
        let (ranked, valid_until) = build();
        let entry = self
            .entries
            .entry(operation.to_string())
            .or_insert(MemoEntry {
                epoch: 0,
                failed: Vec::new(),
                valid_until: SimTime::ZERO,
                ranked: Vec::new(),
            });
        entry.epoch = epoch;
        entry.failed = failed.to_vec();
        entry.valid_until = valid_until;
        entry.ranked = ranked;
        (&entry.ranked, false)
    }

    /// Memo hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Full matching passes so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Drops every memoized ranking.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Purely *syntactic* matching — the JXTA baseline the paper criticizes for
/// "high recall and low precision": an advertisement matches when its
/// symbolic name equals the requested operation name, regardless of
/// concepts.
pub fn syntactic_match(operation_name: &str, adv: &SemanticAdv) -> bool {
    adv.name == operation_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
    use whisper_p2p::{GroupId, QosSpec};
    use whisper_wsdl::samples::student_management;
    use whisper_xml::QName;

    fn q(local: &str) -> QName {
        QName::with_ns(UNIVERSITY_NS, local)
    }

    fn adv(group: u64, action: &str, input: &str, output: &str) -> SemanticAdv {
        SemanticAdv {
            group: GroupId::new(group),
            name: format!("group{group}"),
            action: q(action),
            inputs: vec![q(input)],
            outputs: vec![q(output)],
            qos: None,
        }
    }

    fn request() -> OperationSemantics {
        student_management()
            .operation("StudentInformation")
            .unwrap()
            .resolve(&university_ontology())
            .unwrap()
    }

    #[test]
    fn exact_advertisement_is_acceptable() {
        let onto = university_ontology();
        let a = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &a);
        assert_eq!(o.action, MatchDegree::Exact);
        assert_eq!(o.inputs, MatchDegree::Exact);
        assert_eq!(o.outputs, MatchDegree::Exact);
        assert!(o.is_acceptable());
        assert!((o.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn specialized_output_is_acceptable_generalized_is_not() {
        let onto = university_ontology();
        // warehouse returns transcripts — a specialization of StudentInfo
        let special = adv(1, "StudentInformation", "StudentID", "StudentTranscript");
        let o = match_semantic_adv(&onto, &request(), &special);
        assert_eq!(o.outputs, MatchDegree::Subsume);
        assert!(o.is_acceptable());
        // a group producing generic Records is too general to promise
        let general = adv(2, "StudentInformation", "StudentID", "Record");
        let o = match_semantic_adv(&onto, &request(), &general);
        assert_eq!(o.outputs, MatchDegree::PlugIn);
        assert!(!o.is_acceptable());
    }

    #[test]
    fn generalized_input_is_acceptable_specialized_is_not() {
        let onto = university_ontology();
        // peer accepts any Identifier: fine, StudentID is one
        let general_in = adv(1, "StudentInformation", "Identifier", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &general_in);
        assert_eq!(o.inputs, MatchDegree::PlugIn);
        assert!(o.is_acceptable());
        // peer demands a NationalID: the service cannot supply that
        let unrelated_in = adv(2, "StudentInformation", "NationalID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &unrelated_in);
        assert_eq!(o.inputs, MatchDegree::Fail);
        assert!(!o.is_acceptable());
    }

    #[test]
    fn action_must_be_equal_or_more_specific() {
        let onto = university_ontology();
        let specific = adv(1, "StudentTranscriptRetrieval", "StudentID", "StudentInfo");
        assert!(match_semantic_adv(&onto, &request(), &specific).is_acceptable());
        let too_general = adv(2, "InformationRetrieval", "StudentID", "StudentInfo");
        let o = match_semantic_adv(&onto, &request(), &too_general);
        assert_eq!(o.action, MatchDegree::PlugIn);
        assert!(!o.is_acceptable());
        let unrelated = adv(3, "EnrollmentUpdate", "StudentID", "StudentInfo");
        assert!(!match_semantic_adv(&onto, &request(), &unrelated).is_acceptable());
    }

    #[test]
    fn arity_mismatch_and_foreign_concepts_fail() {
        let onto = university_ontology();
        let mut a = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        a.inputs.push(q("StudentID"));
        let o = match_semantic_adv(&onto, &request(), &a);
        assert_eq!(o.inputs, MatchDegree::Fail);

        let mut foreign = adv(2, "StudentInformation", "StudentID", "StudentInfo");
        foreign.action = QName::with_ns("urn:elsewhere", "StudentInformation");
        let o = match_semantic_adv(&onto, &request(), &foreign);
        assert_eq!(o.action, MatchDegree::Fail);
    }

    #[test]
    fn selection_policies() {
        let onto = university_ontology();
        let mut rng = SmallRng::seed_from_u64(5);
        let exact = adv(0, "StudentInformation", "StudentID", "StudentInfo");
        let mut exact_good_qos = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        exact_good_qos.qos = Some(QosSpec {
            latency_us: 100,
            reliability: 0.999,
            cost: 0.1,
        });
        let weaker = adv(2, "StudentInformation", "Identifier", "StudentInfo");
        let bad = adv(3, "EnrollmentUpdate", "StudentID", "StudentInfo");
        let candidates = vec![
            bad.clone(),
            weaker.clone(),
            exact.clone(),
            exact_good_qos.clone(),
        ];

        let req = request();
        // FirstFound skips the unacceptable candidate
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::FirstFound,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(1)
        );
        // SemanticThenQos: both exact advs outscore `weaker`; QoS breaks the tie
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::SemanticThenQos,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(3)
        );
        // QosOnly picks the only candidate with QoS claims
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::QosOnly,
                &mut rng,
                &QosMonitor::default()
            ),
            Some(3)
        );
        // Random picks an acceptable one
        for _ in 0..20 {
            let pick = select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Random,
                &mut rng,
                &QosMonitor::default(),
            )
            .unwrap();
            assert_ne!(pick, 0, "random must never pick the unacceptable candidate");
        }
        // nothing acceptable -> None
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &[bad],
                SelectionPolicy::SemanticThenQos,
                &mut rng,
                &QosMonitor::default()
            ),
            None
        );
    }

    #[test]
    fn syntactic_match_is_name_equality() {
        let a = adv(1, "EnrollmentUpdate", "NationalID", "Record");
        assert!(!syntactic_match("StudentInformation", &a));
        let mut named = a.clone();
        named.name = "StudentInformation".into();
        // matches on name even though the semantics are wrong: the paper's
        // low-precision failure mode
        assert!(syntactic_match("StudentInformation", &named));
    }

    #[test]
    fn adaptive_policy_overrides_lying_advertisements() {
        let onto = university_ontology();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut boaster = adv(0, "StudentInformation", "StudentID", "StudentInfo");
        boaster.qos = Some(QosSpec {
            latency_us: 100,
            reliability: 0.999,
            cost: 0.1,
        });
        let mut honest = adv(1, "StudentInformation", "StudentID", "StudentInfo");
        honest.qos = Some(QosSpec {
            latency_us: 2_000,
            reliability: 0.95,
            cost: 1.0,
        });
        let candidates = vec![boaster.clone(), honest.clone()];
        let req = request();

        // Cold: the boaster's claims win.
        let cold = QosMonitor::new(3);
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Adaptive,
                &mut rng,
                &cold
            ),
            Some(0)
        );
        // Warm: measurements show the boaster is slow and flaky.
        let mut warm = QosMonitor::new(3);
        for _ in 0..5 {
            warm.record_response(
                boaster.group,
                whisper_simnet::SimDuration::from_millis(50),
                true,
            );
            warm.record_response(
                honest.group,
                whisper_simnet::SimDuration::from_millis(1),
                false,
            );
        }
        assert_eq!(
            select_candidate(
                &onto,
                &req,
                &candidates,
                SelectionPolicy::Adaptive,
                &mut rng,
                &warm
            ),
            Some(1)
        );
    }
}
