//! Service backends: the business logic a b-peer executes.
//!
//! In the paper's running example the Web service itself holds no logic —
//! "the actual implementation of this service is not associated with the Web
//! service itself, but it is supplied by a JXTA network of b-peers". A
//! [`ServiceBackend`] is that implementation. Different b-peers of one
//! semantic group may run *different* backends with the same semantics —
//! e.g. an operational database and a data warehouse (section 4.1) — which
//! is exactly what makes the redundancy transparent.

use std::any::Any;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use whisper_xml::Element;

/// Why a backend could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The underlying resource (database, warehouse...) is down.
    Unavailable(String),
    /// The request payload is structurally wrong.
    BadRequest(String),
    /// The requested entity does not exist.
    NotFound(String),
    /// The backend does not implement this operation.
    UnsupportedOperation(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unavailable(what) => write!(f, "backend unavailable: {what}"),
            BackendError::BadRequest(why) => write!(f, "bad request: {why}"),
            BackendError::NotFound(what) => write!(f, "not found: {what}"),
            BackendError::UnsupportedOperation(op) => {
                write!(f, "operation {op:?} not supported by this backend")
            }
        }
    }
}

impl Error for BackendError {}

/// Business logic executed by a b-peer on behalf of a Web service.
///
/// `operation` is the WSDL operation name; `payload` is the SOAP body
/// payload. The returned element becomes the response body payload.
pub trait ServiceBackend: Send + Any {
    /// Handles one request.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] that the b-peer converts into a SOAP
    /// fault (or, for [`BackendError::Unavailable`], that Whisper masks by
    /// failing over to a semantically equivalent peer).
    fn handle(&mut self, operation: &str, payload: &Element) -> Result<Element, BackendError>;

    /// A short label identifying the implementation (appears in responses
    /// so experiments can see *which* replica answered).
    fn label(&self) -> &str;

    /// Clones this backend for a parallel execution worker
    /// ([`crate::BPeerConfig::workers`]). Only backends whose `handle` is a
    /// pure function of the *current* state may opt in: each worker gets an
    /// independent replica snapshotted at pool creation, so later mutations
    /// through [`dyn ServiceBackend::downcast_mut`] (e.g. flipping
    /// availability mid-experiment) do not reach already-spawned workers.
    /// Stateful backends keep the default `None` and execute inline on the
    /// actor loop.
    fn replicate(&self) -> Option<Box<dyn ServiceBackend>> {
        None
    }
}

impl dyn ServiceBackend {
    /// Downcasts to a concrete backend type, e.g. to flip a
    /// [`StudentRegistry`]'s availability in a fault-injection experiment.
    pub fn downcast_mut<T: ServiceBackend>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut()
    }

    /// Immutable variant of `downcast_mut`.
    pub fn downcast_ref<T: ServiceBackend>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref()
    }
}

/// One student row of the paper's running example.
#[derive(Debug, Clone, PartialEq)]
pub struct StudentRecord {
    /// Student identifier, e.g. `"u1001"`.
    pub id: String,
    /// Full name.
    pub name: String,
    /// Enrolled program.
    pub program: String,
    /// Grade-point average.
    pub gpa: f64,
}

/// The student-information backend: "accepts as input a student ID,
/// connects to a relational database, retrieves the information of the
/// student, and returns a structure with the information to the client"
/// (paper, section 3.1).
///
/// Constructed either as the *operational database* or as the semantically
/// equivalent *data warehouse* replica; the warehouse annotates its answers
/// with provenance, demonstrating that replicas may implement the service
/// differently.
#[derive(Debug, Clone)]
pub struct StudentRegistry {
    source: &'static str,
    students: BTreeMap<String, StudentRecord>,
    available: bool,
}

impl StudentRegistry {
    /// An empty operational-database registry.
    pub fn operational_db() -> Self {
        StudentRegistry {
            source: "operational-db",
            students: BTreeMap::new(),
            available: true,
        }
    }

    /// An empty data-warehouse registry.
    pub fn data_warehouse() -> Self {
        StudentRegistry {
            source: "data-warehouse",
            students: BTreeMap::new(),
            available: true,
        }
    }

    /// Loads the sample student body used by examples and benchmarks
    /// (ids `u1000` through `u1009`).
    pub fn with_sample_data(mut self) -> Self {
        for i in 0..10 {
            let id = format!("u100{i}");
            self.students.insert(
                id.clone(),
                StudentRecord {
                    id,
                    name: format!("Student Number {i}"),
                    program: if i % 2 == 0 {
                        "Informatics"
                    } else {
                        "Mathematics"
                    }
                    .to_string(),
                    gpa: 2.0 + (i as f64) * 0.2,
                },
            );
        }
        self
    }

    /// Adds one student.
    pub fn insert(&mut self, rec: StudentRecord) {
        self.students.insert(rec.id.clone(), rec);
    }

    /// Models the underlying database going down (or up): an unavailable
    /// registry answers every request with [`BackendError::Unavailable`].
    pub fn set_available(&mut self, available: bool) {
        self.available = available;
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.students.len()
    }

    /// Whether the registry holds no records.
    pub fn is_empty(&self) -> bool {
        self.students.is_empty()
    }
}

impl ServiceBackend for StudentRegistry {
    fn handle(&mut self, operation: &str, payload: &Element) -> Result<Element, BackendError> {
        if !self.available {
            return Err(BackendError::Unavailable(self.source.to_string()));
        }
        let id = payload
            .descendant("StudentID")
            .map(|e| e.text())
            .or_else(|| (payload.name == "StudentID").then(|| payload.text()))
            .ok_or_else(|| BackendError::BadRequest("missing <StudentID>".into()))?;
        let rec = self
            .students
            .get(id.trim())
            .ok_or_else(|| BackendError::NotFound(format!("student {id}")))?;
        match operation {
            "StudentInformation" => {
                let mut out = Element::new("StudentInfo");
                out.push_child(Element::with_text("StudentID", &rec.id));
                out.push_child(Element::with_text("Name", &rec.name));
                out.push_child(Element::with_text("Program", &rec.program));
                out.push_child(Element::with_text("GPA", format!("{:.2}", rec.gpa)));
                out.push_child(Element::with_text("Source", self.source));
                Ok(out)
            }
            "StudentTranscript" => {
                let mut out = Element::new("StudentTranscript");
                out.push_child(Element::with_text("StudentID", &rec.id));
                out.push_child(Element::with_text("GPA", format!("{:.2}", rec.gpa)));
                let mut courses = Element::new("Courses");
                courses.push_child(Element::with_text("Course", "databases101"));
                courses.push_child(Element::with_text("Course", "distsys201"));
                out.push_child(courses);
                out.push_child(Element::with_text("Source", self.source));
                Ok(out)
            }
            other => Err(BackendError::UnsupportedOperation(other.to_string())),
        }
    }

    fn label(&self) -> &str {
        self.source
    }

    /// Lookups never mutate the registry, so workers may serve from
    /// independent snapshots of the student table.
    fn replicate(&self) -> Option<Box<dyn ServiceBackend>> {
        Some(Box::new(self.clone()))
    }
}

/// Insurance-claim processing backend for the B2B examples: approves claims
/// under the configured limit, rejects the rest.
#[derive(Debug, Clone)]
pub struct ClaimProcessor {
    /// Claims at or above this amount are rejected.
    pub approval_limit: f64,
    processed: u64,
}

impl ClaimProcessor {
    /// A processor approving claims below `approval_limit`.
    pub fn new(approval_limit: f64) -> Self {
        ClaimProcessor {
            approval_limit,
            processed: 0,
        }
    }

    /// How many claims this replica has processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl ServiceBackend for ClaimProcessor {
    fn handle(&mut self, operation: &str, payload: &Element) -> Result<Element, BackendError> {
        if operation != "ProcessClaim" {
            return Err(BackendError::UnsupportedOperation(operation.to_string()));
        }
        let number = payload
            .descendant("ClaimNumber")
            .map(|e| e.text())
            .ok_or_else(|| BackendError::BadRequest("missing <ClaimNumber>".into()))?;
        let amount: f64 = payload
            .descendant("Amount")
            .map(|e| e.text())
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| BackendError::BadRequest("missing or bad <Amount>".into()))?;
        self.processed += 1;
        let mut out = Element::new("ClaimDecision");
        out.push_child(Element::with_text("ClaimNumber", number));
        out.push_child(Element::with_text(
            "Decision",
            if amount < self.approval_limit {
                "approved"
            } else {
                "rejected"
            },
        ));
        Ok(out)
    }

    fn label(&self) -> &str {
        "claim-processor"
    }
}

/// Order-tracking backend for the supply-chain example.
#[derive(Debug, Clone, Default)]
pub struct OrderTracker {
    orders: BTreeMap<String, &'static str>,
}

impl OrderTracker {
    /// A tracker with a few seeded orders.
    pub fn with_sample_orders() -> Self {
        let mut orders = BTreeMap::new();
        orders.insert("po-77".to_string(), "in-transit");
        orders.insert("po-78".to_string(), "delivered");
        orders.insert("po-79".to_string(), "processing");
        OrderTracker { orders }
    }
}

impl ServiceBackend for OrderTracker {
    fn handle(&mut self, operation: &str, payload: &Element) -> Result<Element, BackendError> {
        match operation {
            "TrackOrder" => {
                let number = payload
                    .descendant("OrderNumber")
                    .map(|e| e.text())
                    .unwrap_or_else(|| payload.text());
                let status = self
                    .orders
                    .get(number.trim())
                    .ok_or_else(|| BackendError::NotFound(format!("order {number}")))?;
                let mut out = Element::new("OrderStatus");
                out.push_child(Element::with_text("OrderNumber", number.trim()));
                out.push_child(Element::with_text("Status", *status));
                Ok(out)
            }
            "ProcessOrder" => {
                let number = payload
                    .descendant("OrderNumber")
                    .map(|e| e.text())
                    .ok_or_else(|| BackendError::BadRequest("missing <OrderNumber>".into()))?;
                self.orders.insert(number.trim().to_string(), "processing");
                let mut out = Element::new("Invoice");
                out.push_child(Element::with_text("OrderNumber", number.trim()));
                out.push_child(Element::with_text("Total", "100.00"));
                Ok(out)
            }
            other => Err(BackendError::UnsupportedOperation(other.to_string())),
        }
    }

    fn label(&self) -> &str {
        "order-tracker"
    }
}

/// Wraps another backend and makes it fail intermittently with
/// [`BackendError::Unavailable`] — the knob behind reliability experiments.
/// Deterministic given the seed.
pub struct FlakyBackend {
    inner: Box<dyn ServiceBackend>,
    fail_probability: f64,
    rng: rand::rngs::SmallRng,
}

impl FlakyBackend {
    /// Wraps `inner`, failing each request independently with
    /// `fail_probability`.
    ///
    /// # Panics
    ///
    /// Panics when the probability is outside `[0, 1]`.
    pub fn new(inner: Box<dyn ServiceBackend>, fail_probability: f64, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!(
            (0.0..=1.0).contains(&fail_probability),
            "fail_probability {fail_probability} out of range"
        );
        FlakyBackend {
            inner,
            fail_probability,
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
        }
    }
}

impl ServiceBackend for FlakyBackend {
    fn handle(&mut self, operation: &str, payload: &Element) -> Result<Element, BackendError> {
        use rand::Rng;
        if self.fail_probability > 0.0 && self.rng.gen_bool(self.fail_probability) {
            return Err(BackendError::Unavailable("flaky backend".into()));
        }
        self.inner.handle(operation, payload)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A backend that echoes the request payload, for tests and load benches
/// where business logic is irrelevant.
#[derive(Debug, Clone, Default)]
pub struct EchoBackend;

impl ServiceBackend for EchoBackend {
    fn handle(&mut self, _operation: &str, payload: &Element) -> Result<Element, BackendError> {
        let mut out = Element::new("Echo");
        out.push_child(payload.clone());
        Ok(out)
    }

    fn label(&self) -> &str {
        "echo"
    }

    fn replicate(&self) -> Option<Box<dyn ServiceBackend>> {
        Some(Box::new(EchoBackend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_req(id: &str) -> Element {
        let mut p = Element::new("StudentInformation");
        p.push_child(Element::with_text("StudentID", id));
        p
    }

    #[test]
    fn registry_answers_information_requests() {
        let mut db = StudentRegistry::operational_db().with_sample_data();
        assert_eq!(db.len(), 10);
        let out = db
            .handle("StudentInformation", &student_req("u1003"))
            .unwrap();
        assert_eq!(out.name, "StudentInfo");
        assert_eq!(out.child("Name").unwrap().text(), "Student Number 3");
        assert_eq!(out.child("Source").unwrap().text(), "operational-db");
    }

    #[test]
    fn warehouse_same_semantics_different_provenance() {
        let mut wh = StudentRegistry::data_warehouse().with_sample_data();
        let out = wh
            .handle("StudentInformation", &student_req("u1003"))
            .unwrap();
        assert_eq!(out.name, "StudentInfo");
        assert_eq!(out.child("Source").unwrap().text(), "data-warehouse");
        assert_eq!(wh.label(), "data-warehouse");
    }

    #[test]
    fn transcript_operation() {
        let mut db = StudentRegistry::operational_db().with_sample_data();
        let out = db
            .handle("StudentTranscript", &student_req("u1000"))
            .unwrap();
        assert_eq!(out.name, "StudentTranscript");
        assert_eq!(
            out.child("Courses")
                .unwrap()
                .children_named("Course")
                .count(),
            2
        );
    }

    #[test]
    fn registry_error_paths() {
        let mut db = StudentRegistry::operational_db().with_sample_data();
        assert!(matches!(
            db.handle("StudentInformation", &student_req("nobody")),
            Err(BackendError::NotFound(_))
        ));
        assert!(matches!(
            db.handle("StudentInformation", &Element::new("Empty")),
            Err(BackendError::BadRequest(_))
        ));
        assert!(matches!(
            db.handle("DropTables", &student_req("u1000")),
            Err(BackendError::UnsupportedOperation(_))
        ));
        db.set_available(false);
        assert!(matches!(
            db.handle("StudentInformation", &student_req("u1000")),
            Err(BackendError::Unavailable(_))
        ));
        db.set_available(true);
        assert!(db
            .handle("StudentInformation", &student_req("u1000"))
            .is_ok());
    }

    #[test]
    fn claims_approved_below_limit() {
        let mut cp = ClaimProcessor::new(1000.0);
        let mut claim = Element::new("InsuranceClaim");
        claim.push_child(Element::with_text("ClaimNumber", "c-1"));
        claim.push_child(Element::with_text("Amount", "250.00"));
        let out = cp.handle("ProcessClaim", &claim).unwrap();
        assert_eq!(out.child("Decision").unwrap().text(), "approved");

        let mut big = Element::new("InsuranceClaim");
        big.push_child(Element::with_text("ClaimNumber", "c-2"));
        big.push_child(Element::with_text("Amount", "99999"));
        let out = cp.handle("ProcessClaim", &big).unwrap();
        assert_eq!(out.child("Decision").unwrap().text(), "rejected");
        assert_eq!(cp.processed(), 2);
    }

    #[test]
    fn claim_error_paths() {
        let mut cp = ClaimProcessor::new(1000.0);
        assert!(matches!(
            cp.handle("Other", &Element::new("x")),
            Err(BackendError::UnsupportedOperation(_))
        ));
        let mut noamount = Element::new("InsuranceClaim");
        noamount.push_child(Element::with_text("ClaimNumber", "c-3"));
        assert!(matches!(
            cp.handle("ProcessClaim", &noamount),
            Err(BackendError::BadRequest(_))
        ));
    }

    #[test]
    fn order_tracking_and_processing() {
        let mut t = OrderTracker::with_sample_orders();
        let mut req = Element::new("TrackOrder");
        req.push_child(Element::with_text("OrderNumber", "po-77"));
        let out = t.handle("TrackOrder", &req).unwrap();
        assert_eq!(out.child("Status").unwrap().text(), "in-transit");

        let mut po = Element::new("PurchaseOrder");
        po.push_child(Element::with_text("OrderNumber", "po-99"));
        let inv = t.handle("ProcessOrder", &po).unwrap();
        assert_eq!(inv.name, "Invoice");
        // the new order is now trackable
        let mut req = Element::new("TrackOrder");
        req.push_child(Element::with_text("OrderNumber", "po-99"));
        assert!(t.handle("TrackOrder", &req).is_ok());
    }

    #[test]
    fn echo_round_trips_payload() {
        let mut e = EchoBackend;
        let payload = student_req("u1");
        let out = e.handle("Anything", &payload).unwrap();
        assert_eq!(out.child_elements().next(), Some(&payload));
    }
}
