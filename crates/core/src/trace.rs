//! Correlation-key conventions tying wire-protocol ids back to traced
//! requests (see [`whisper_obs::Recorder::bind`]).
//!
//! Each hop of a Whisper request speaks its own id space: clients tag SOAP
//! requests with client-local ids, the proxy tags peer requests with its
//! own counter, and discovery queries carry query ids. The recorder's
//! correlation table maps each of those back to the originating
//! [`whisper_obs::RequestId`]; these helpers fix the namespaces and key
//! encodings so every crate agrees on them.

use whisper_p2p::PeerId;
use whisper_simnet::NodeId;

/// Correlation namespace for client SOAP request ids, keyed by
/// [`soap_key`].
pub const NS_SOAP: &str = "soap";

/// Correlation namespace for proxy→b-peer request ids, keyed by
/// [`peer_key`].
pub const NS_PEER: &str = "peer";

/// Correlation namespace for discovery query ids, keyed by the raw
/// query id.
pub const NS_QUERY: &str = "query";

/// Key for [`NS_SOAP`]: the client node disambiguates client-local
/// request ids.
pub fn soap_key(client: NodeId, request_id: u64) -> u64 {
    ((client.index() as u64) << 32) | (request_id & 0xffff_ffff)
}

/// Key for [`NS_PEER`]: the requesting proxy's peer id disambiguates its
/// local request ids. Delegated requests keep the original `reply_to` and
/// `request_id`, so the key survives load-sharing hops.
pub fn peer_key(reply_to: PeerId, request_id: u64) -> u64 {
    (reply_to.value() << 32) | (request_id & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_do_not_collide_across_origins() {
        let a = soap_key(NodeId::from_index(1), 7);
        let b = soap_key(NodeId::from_index(2), 7);
        assert_ne!(a, b);
        let c = peer_key(PeerId::new(4), 1);
        let d = peer_key(PeerId::new(5), 1);
        assert_ne!(c, d);
    }
}
