//! Workflow QoS aggregation — Cardoso's QoS composition model.
//!
//! The paper's section 2.4 grounds peer selection in the author's earlier
//! workflow-QoS work (citations \[10\] and \[11\]: "e-workflow composition" and
//! "Semantic Web Services and Web Process Composition"): a B2B *process*
//! composes several service invocations, and its end-to-end QoS follows
//! from the parts by reduction rules:
//!
//! * **sequence** — latencies and costs add, reliabilities multiply;
//! * **parallel (AND split/join)** — latency is the slowest branch, costs
//!   add, reliabilities multiply (all branches must succeed);
//! * **conditional (XOR split)** — probability-weighted expectation of each
//!   branch;
//! * **loop** — a body retried until success with probability `p` of
//!   another iteration: geometric expansion of latency and cost.
//!
//! This lets a deployment ask "what QoS can my *process* promise if I bind
//! each step to these groups?" before publishing its own advertisement.
//!
//! # Examples
//!
//! ```
//! use whisper::composition::QosExpr;
//! use whisper_p2p::QosSpec;
//!
//! let step = |ms: u64, rel: f64| QosExpr::task(QosSpec {
//!     latency_us: ms * 1000,
//!     reliability: rel,
//!     cost: 1.0,
//! });
//!
//! // claim intake, then fraud check in parallel with coverage check,
//! // then a decision step
//! let process = QosExpr::seq(vec![
//!     step(2, 0.999),
//!     QosExpr::par(vec![step(10, 0.99), step(4, 0.995)]),
//!     step(1, 0.999),
//! ]);
//! let q = process.aggregate();
//! assert_eq!(q.latency_us, (2 + 10 + 1) * 1000); // slowest parallel branch
//! assert!(q.reliability < 0.99);                 // product of all steps
//! ```

use whisper_p2p::QosSpec;

/// A QoS expression tree over composed service invocations.
#[derive(Debug, Clone, PartialEq)]
pub enum QosExpr {
    /// A single invocation with known (advertised or measured) QoS.
    Task(QosSpec),
    /// Steps executed one after another.
    Seq(Vec<QosExpr>),
    /// Branches executed concurrently, all of which must complete.
    Par(Vec<QosExpr>),
    /// Exactly one branch executes, chosen with the given probability.
    /// Probabilities should sum to 1; they are normalized defensively.
    Cond(Vec<(f64, QosExpr)>),
    /// A body that repeats: after each execution, another iteration runs
    /// with probability `again`.
    Loop {
        /// The repeated body.
        body: Box<QosExpr>,
        /// Probability of another iteration after each pass (`0 ≤ p < 1`).
        again: f64,
    },
}

impl QosExpr {
    /// A leaf invocation.
    pub fn task(q: QosSpec) -> Self {
        QosExpr::Task(q)
    }

    /// A sequential composition.
    pub fn seq(steps: Vec<QosExpr>) -> Self {
        QosExpr::Seq(steps)
    }

    /// A parallel (AND) composition.
    pub fn par(branches: Vec<QosExpr>) -> Self {
        QosExpr::Par(branches)
    }

    /// A conditional (XOR) composition of `(probability, branch)` pairs.
    pub fn cond(branches: Vec<(f64, QosExpr)>) -> Self {
        QosExpr::Cond(branches)
    }

    /// A probabilistic loop around `body`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ again < 1` (a loop that never exits has no
    /// finite QoS).
    pub fn repeat(body: QosExpr, again: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&again),
            "loop probability {again} not in [0, 1)"
        );
        QosExpr::Loop {
            body: Box::new(body),
            again,
        }
    }

    /// Reduces the expression to a single expected [`QosSpec`].
    pub fn aggregate(&self) -> QosSpec {
        match self {
            QosExpr::Task(q) => *q,
            QosExpr::Seq(steps) => steps.iter().map(QosExpr::aggregate).fold(
                QosSpec {
                    latency_us: 0,
                    reliability: 1.0,
                    cost: 0.0,
                },
                |acc, q| QosSpec {
                    latency_us: acc.latency_us + q.latency_us,
                    reliability: acc.reliability * q.reliability,
                    cost: acc.cost + q.cost,
                },
            ),
            QosExpr::Par(branches) => branches.iter().map(QosExpr::aggregate).fold(
                QosSpec {
                    latency_us: 0,
                    reliability: 1.0,
                    cost: 0.0,
                },
                |acc, q| QosSpec {
                    latency_us: acc.latency_us.max(q.latency_us),
                    reliability: acc.reliability * q.reliability,
                    cost: acc.cost + q.cost,
                },
            ),
            QosExpr::Cond(branches) => {
                let total_p: f64 = branches.iter().map(|(p, _)| p.max(0.0)).sum();
                if total_p <= 0.0 || branches.is_empty() {
                    return QosSpec {
                        latency_us: 0,
                        reliability: 1.0,
                        cost: 0.0,
                    };
                }
                let mut latency = 0.0;
                let mut reliability = 0.0;
                let mut cost = 0.0;
                for (p, b) in branches {
                    let w = p.max(0.0) / total_p;
                    let q = b.aggregate();
                    latency += w * q.latency_us as f64;
                    reliability += w * q.reliability;
                    cost += w * q.cost;
                }
                QosSpec {
                    latency_us: latency.round() as u64,
                    reliability,
                    cost,
                }
            }
            QosExpr::Loop { body, again } => {
                let q = body.aggregate();
                // expected iterations of a geometric distribution
                let iterations = 1.0 / (1.0 - again);
                QosSpec {
                    latency_us: (q.latency_us as f64 * iterations).round() as u64,
                    // success requires every expected iteration to succeed
                    reliability: q.reliability.powf(iterations),
                    cost: q.cost * iterations,
                }
            }
        }
    }

    /// Number of leaf invocations in the expression.
    pub fn task_count(&self) -> usize {
        match self {
            QosExpr::Task(_) => 1,
            QosExpr::Seq(s) | QosExpr::Par(s) => s.iter().map(QosExpr::task_count).sum(),
            QosExpr::Cond(b) => b.iter().map(|(_, e)| e.task_count()).sum(),
            QosExpr::Loop { body, .. } => body.task_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64, rel: f64, cost: f64) -> QosExpr {
        QosExpr::task(QosSpec {
            latency_us: ms * 1000,
            reliability: rel,
            cost,
        })
    }

    #[test]
    fn sequence_adds_latency_and_cost_multiplies_reliability() {
        let q = QosExpr::seq(vec![t(2, 0.9, 1.0), t(3, 0.8, 2.0)]).aggregate();
        assert_eq!(q.latency_us, 5_000);
        assert!((q.reliability - 0.72).abs() < 1e-12);
        assert_eq!(q.cost, 3.0);
    }

    #[test]
    fn parallel_takes_slowest_branch() {
        let q = QosExpr::par(vec![t(2, 0.9, 1.0), t(7, 0.99, 2.0), t(4, 1.0, 0.5)]).aggregate();
        assert_eq!(q.latency_us, 7_000);
        assert!((q.reliability - 0.9 * 0.99).abs() < 1e-12);
        assert_eq!(q.cost, 3.5);
    }

    #[test]
    fn conditional_is_probability_weighted() {
        let q = QosExpr::cond(vec![(0.75, t(4, 1.0, 4.0)), (0.25, t(8, 0.8, 8.0))]).aggregate();
        assert_eq!(q.latency_us, 5_000);
        assert!((q.reliability - 0.95).abs() < 1e-12);
        assert!((q.cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_normalizes_probabilities() {
        let a = QosExpr::cond(vec![(1.0, t(4, 1.0, 1.0)), (3.0, t(8, 1.0, 1.0))]).aggregate();
        let b = QosExpr::cond(vec![(0.25, t(4, 1.0, 1.0)), (0.75, t(8, 1.0, 1.0))]).aggregate();
        assert_eq!(a, b);
    }

    #[test]
    fn loop_expands_geometrically() {
        // retry probability 0.5 => expected 2 iterations
        let q = QosExpr::repeat(t(3, 0.9, 1.5), 0.5).aggregate();
        assert_eq!(q.latency_us, 6_000);
        assert!((q.cost - 3.0).abs() < 1e-12);
        assert!((q.reliability - 0.9f64.powf(2.0)).abs() < 1e-12);
        // zero retry probability is the identity
        let once = QosExpr::repeat(t(3, 0.9, 1.5), 0.0).aggregate();
        assert_eq!(once, t(3, 0.9, 1.5).aggregate());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1)")]
    fn endless_loop_rejected() {
        let _ = QosExpr::repeat(t(1, 1.0, 1.0), 1.0);
    }

    #[test]
    fn nested_b2b_process() {
        // the insurance-claim process of the paper's introduction: intake,
        // then parallel fraud+coverage checks, then decision; resubmission
        // loop around the whole thing with 10% probability
        let process = QosExpr::repeat(
            QosExpr::seq(vec![
                t(2, 0.999, 1.0),
                QosExpr::par(vec![t(10, 0.99, 3.0), t(4, 0.995, 2.0)]),
                QosExpr::cond(vec![(0.9, t(1, 0.999, 1.0)), (0.1, t(20, 0.99, 5.0))]),
            ]),
            0.1,
        );
        assert_eq!(process.task_count(), 5);
        let q = process.aggregate();
        // one pass: 2 + 10 + (0.9*1 + 0.1*20) ms = 14.9 ms; /0.9 retries
        assert_eq!(q.latency_us, ((14.9_f64 / 0.9) * 1000.0).round() as u64);
        assert!(q.reliability > 0.9 && q.reliability < 1.0);
        assert!(q.cost > 7.0);
    }

    #[test]
    fn empty_compositions_are_identities() {
        assert_eq!(
            QosExpr::seq(vec![]).aggregate(),
            QosSpec {
                latency_us: 0,
                reliability: 1.0,
                cost: 0.0
            }
        );
        assert_eq!(
            QosExpr::par(vec![]).aggregate(),
            QosSpec {
                latency_us: 0,
                reliability: 1.0,
                cost: 0.0
            }
        );
        assert_eq!(
            QosExpr::cond(vec![]).aggregate(),
            QosSpec {
                latency_us: 0,
                reliability: 1.0,
                cost: 0.0
            }
        );
    }
}
