//! Error type for the Whisper core.

use std::error::Error;
use std::fmt;

/// An error produced while assembling or operating a Whisper deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhisperError {
    /// A WSDL-S annotation did not resolve against the deployment ontology.
    Wsdl(whisper_wsdl::WsdlError),
    /// A SOAP payload could not be interpreted.
    Soap(whisper_soap::SoapError),
    /// The named operation is not offered by the deployed service.
    UnknownOperation(String),
    /// A deployment was configured inconsistently.
    BadDeployment(String),
    /// A live transport failed to boot (socket errors on the TCP
    /// substrate). Carries the I/O error text.
    Io(String),
}

impl fmt::Display for WhisperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhisperError::Wsdl(e) => write!(f, "service description error: {e}"),
            WhisperError::Soap(e) => write!(f, "soap error: {e}"),
            WhisperError::UnknownOperation(op) => write!(f, "unknown operation {op:?}"),
            WhisperError::BadDeployment(why) => write!(f, "bad deployment: {why}"),
            WhisperError::Io(why) => write!(f, "transport i/o error: {why}"),
        }
    }
}

impl Error for WhisperError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WhisperError::Wsdl(e) => Some(e),
            WhisperError::Soap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<whisper_wsdl::WsdlError> for WhisperError {
    fn from(e: whisper_wsdl::WsdlError) -> Self {
        WhisperError::Wsdl(e)
    }
}

impl From<whisper_soap::SoapError> for WhisperError {
    fn from(e: whisper_soap::SoapError) -> Self {
        WhisperError::Soap(e)
    }
}

impl From<std::io::Error> for WhisperError {
    fn from(e: std::io::Error) -> Self {
        WhisperError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WhisperError::UnknownOperation("Foo".into());
        assert!(e.to_string().contains("Foo"));
        assert!(e.source().is_none());
        let e = WhisperError::from(whisper_soap::SoapError::MissingBody);
        assert!(e.source().is_some());
    }
}
