//! The SWS-proxy actor: the bridge between a semantic Web service and its
//! b-peer back end.
//!
//! "When a Web service receives a request it forwards it to the Semantic
//! Web Service proxy. Proxies contact the JXTA infrastructure and using the
//! Discovery Service locate a semantic group of peers that can satisfy the
//! client's request" (paper, section 3.2). The proxy here implements the
//! whole pipeline:
//!
//! 1. parse the client's SOAP request and identify the operation;
//! 2. find a semantic b-peer group whose advertisement matches the
//!    operation's WSDL-S semantics (local cache first, then a remote
//!    discovery query);
//! 3. enumerate the group's members (peer advertisements) and bind to the
//!    presumed coordinator;
//! 4. forward the request; follow [`WhisperMsg::PeerRedirect`]s; on
//!    timeout, **re-bind** — re-query the members and try the next
//!    candidate (the paper's costly failover path);
//! 5. relay the response (or a `<soap:fault>` after exhausting attempts)
//!    back to the client.

use crate::directory::Directory;
use crate::matchmaker;
use crate::msg::WhisperMsg;
use crate::pulse::{self, PulseConfig};
use crate::qos::{PeerHealth, QosMonitor, SelectionPolicy};
use crate::trace;
use rand::RngCore;
use std::collections::HashMap;
use whisper_obs::{
    FlightHandle, NodeRole, NodeSnapshot, OutlierTrace, PulseEmitter, PulseSpan, Recorder,
    RequestId, TailSampler,
};
use whisper_ontology::Ontology;
use whisper_p2p::{
    AdvFilter, AdvKind, Advertisement, DiscoveryService, DiscoveryStrategy, GroupId, PeerId,
    QueryId, SemanticAdv,
};
use whisper_simnet::{Actor, Context, Histogram, Metrics, NodeId, SimDuration, SimTime, Wire};
use whisper_soap::{Envelope, Fault, FaultCode};
use whisper_wsdl::{OperationSemantics, ServiceDescription};

/// Tuning knobs of an SWS-proxy.
///
/// # Examples
///
/// ```
/// use whisper::{ProxyConfig, SelectionPolicy};
/// use whisper_simnet::SimDuration;
///
/// let cfg = ProxyConfig {
///     policy: SelectionPolicy::Adaptive,
///     request_timeout: SimDuration::from_millis(500),
///     ..ProxyConfig::default()
/// };
/// assert_eq!(cfg.policy, SelectionPolicy::Adaptive);
/// ```
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Discovery strategy (must match the deployment's).
    pub strategy: DiscoveryStrategy,
    /// How candidate groups are chosen among acceptable matches.
    pub policy: SelectionPolicy,
    /// How long to wait for a b-peer response (or a discovery response)
    /// before assuming failure.
    pub request_timeout: SimDuration,
    /// Delay before retrying when a group exists but has no coordinator
    /// yet (election in progress).
    pub retry_backoff: SimDuration,
    /// Attempts (including re-binds and retries) before giving up with a
    /// `<soap:fault>`.
    pub max_attempts: u32,
    /// How long to keep collecting flood responses to a group query before
    /// choosing among the candidates. A longer window sees more of the
    /// network and makes QoS-aware selection meaningful; zero selects on
    /// the first response.
    pub gather_window: SimDuration,
    /// End-to-end budget per request, measured from the moment the client
    /// request reached the proxy. Once exceeded, the retry/re-bind ladder
    /// stops and the client gets a fault immediately instead of burning
    /// further attempts a caller has already given up on. `None` (the
    /// default) disables the budget.
    pub deadline: Option<SimDuration>,
    /// Fail-slow threshold: when a peer's smoothed response latency
    /// exceeds this, the proxy demotes it — drops its binding, marks it
    /// suspect for [`fail_slow_cooldown`](Self::fail_slow_cooldown) and
    /// re-binds to the next group member with `delegated` forwards, all
    /// without waiting for a timeout or an election. `None` (the default)
    /// disables gray detection.
    pub fail_slow_after: Option<SimDuration>,
    /// How long a demoted peer stays suspect before it may earn traffic
    /// back. On expiry its latency history is reset, so re-demotion needs
    /// fresh evidence.
    pub fail_slow_cooldown: SimDuration,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            strategy: DiscoveryStrategy::Flood,
            policy: SelectionPolicy::default(),
            request_timeout: SimDuration::from_millis(2000),
            retry_backoff: SimDuration::from_millis(300),
            max_attempts: 10,
            gather_window: SimDuration::from_millis(250),
            deadline: None,
            fail_slow_after: None,
            fail_slow_cooldown: SimDuration::from_secs(5),
        }
    }
}

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Remote discovery queries issued.
    pub discoveries: u64,
    /// Re-binds after a bound peer stopped answering.
    pub rebinds: u64,
    /// Redirects followed to reach a coordinator.
    pub redirects_followed: u64,
    /// Responses relayed to clients (faults included).
    pub responses_forwarded: u64,
    /// Requests answered with a proxy-generated fault.
    pub faults_generated: u64,
    /// Client requests recognised as duplicates of one already in flight
    /// or recently answered (the answered ones are re-served from cache).
    pub duplicate_requests: u64,
    /// B-peer responses for requests no longer pending — late replies
    /// crossing a retry, or chaos-duplicated frames. Dropped, never
    /// forwarded: the client sees each request answered exactly once.
    pub duplicate_responses: u64,
    /// Proactive demotions of fail-slow peers (gray re-binds that needed
    /// no timeout and no election).
    pub fail_slow_rebinds: u64,
    /// Requests faulted because their end-to-end deadline budget ran out.
    pub deadline_faults: u64,
}

/// The peer a group is currently bound to, plus how to address it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Binding {
    peer: PeerId,
    /// Forwards carry `delegated: true`: the target executes the request
    /// itself instead of redirecting to the coordinator this binding
    /// bypasses.
    delegated: bool,
    /// The presumed coordinator a delegated binding is shadowing; once it
    /// is no longer suspect the binding is dropped so traffic returns.
    shadows: Option<PeerId>,
}

/// Whether `peer` is currently under a fail-slow demotion cooldown.
/// A free function (not a method) so it can run while a pending entry
/// holds a mutable borrow of another field.
fn peer_suspect(suspects: &HashMap<PeerId, SimTime>, peer: PeerId, now: SimTime) -> bool {
    suspects.get(&peer).is_some_and(|&until| now < until)
}

/// Picks the member to bind from a sorted, non-empty member list: the
/// Bully winner (highest id) when healthy, otherwise the highest
/// non-suspect member, addressed with `delegated` forwards that shadow
/// the suspect coordinator. An all-suspect group falls back to the
/// coordinator — a demotion must never strand a request entirely. The
/// untried remainder is handed to `stash` (the pending entry's candidate
/// list for crash re-binds).
fn pick_target(
    members: &mut Vec<PeerId>,
    suspects: &HashMap<PeerId, SimTime>,
    now: SimTime,
    stash: impl FnOnce(Vec<PeerId>),
) -> (PeerId, bool, Option<PeerId>) {
    let presumed = *members.last().expect("non-empty");
    let idx = members
        .iter()
        .rposition(|m| !peer_suspect(suspects, *m, now))
        .unwrap_or(members.len() - 1);
    let target = members.remove(idx);
    stash(std::mem::take(members));
    if target == presumed {
        (target, false, None)
    } else {
        (target, true, Some(presumed))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum PendingState {
    /// Waiting for semantic advertisements (group discovery).
    AwaitGroups(QueryId),
    /// Waiting for peer advertisements of the chosen group.
    AwaitMembers(QueryId, GroupId),
    /// Waiting for the bound peer to answer.
    AwaitResponse(PeerId),
    /// Backing off before retrying (election in progress on the group).
    Backoff(GroupId),
}

#[derive(Debug)]
struct Pending {
    client_node: NodeId,
    client_request_id: u64,
    operation: String,
    envelope: String,
    attempts: u32,
    state: PendingState,
    /// Members of the bound group we have not tried yet this attempt wave.
    candidates: Vec<PeerId>,
    /// Semantic advertisements gathered while the gather window is open.
    gathered: Vec<SemanticAdv>,
    /// Whether the gather timer is armed for the current group query.
    gathering: bool,
    /// Groups this request already exhausted (every known member dead);
    /// excluded from subsequent selections so a stale cached advertisement
    /// cannot trap the request on a dead group.
    failed_groups: Vec<GroupId>,
    /// Peers that failed to answer this request; never retried for it.
    dead_peers: Vec<PeerId>,
    /// The group this request is currently targeting.
    group: Option<GroupId>,
    /// When the client request reached the proxy (for QoS measurement).
    started_at: SimTime,
    /// When the request was last forwarded to a b-peer. QoS measurements
    /// use this, not `started_at`, so discovery cost (a proxy concern)
    /// does not pollute the *group's* observed latency.
    forwarded_at: Option<SimTime>,
    /// The traced request this pending entry belongs to, when a recorder
    /// is installed.
    obs_req: Option<RequestId>,
}

/// Purpose bits of proxy timer tokens.
const PURPOSE_PULSE: u64 = 0;
const PURPOSE_TIMEOUT: u64 = 1;
const PURPOSE_BACKOFF: u64 = 2;
const PURPOSE_GATHER: u64 = 3;

/// Outlier traces buffered between pulse frames; beyond this, further
/// sampled requests of the interval are dropped (bounded memory).
const MAX_PENDING_OUTLIERS: usize = 16;

/// Recently-answered client requests kept for duplicate re-serving
/// (bounded memory; beyond this the oldest answer is forgotten and a very
/// late duplicate would be processed as a fresh request — the client's
/// own dedup still protects it).
const ANSWERED_CAP: usize = 128;

/// Token layout: 44 bits of request id | 18 bits of attempt | 2 bits of
/// purpose. Fields are masked so an out-of-range value can only alias
/// within its own field, never corrupt a neighbouring one (a request id
/// overflow would otherwise cancel timers of an unrelated request).
const TOKEN_ATTEMPT_MASK: u64 = 0x3_ffff;
const TOKEN_REQUEST_MASK: u64 = (1 << 44) - 1;

fn token(request_id: u64, attempt: u32, purpose: u64) -> u64 {
    debug_assert!(purpose <= 0b11, "purpose {purpose} exceeds its 2-bit field");
    debug_assert!(
        request_id <= TOKEN_REQUEST_MASK,
        "request id {request_id} exceeds its 44-bit token field"
    );
    debug_assert!(
        u64::from(attempt) <= TOKEN_ATTEMPT_MASK,
        "attempt {attempt} exceeds its 18-bit token field"
    );
    ((request_id & TOKEN_REQUEST_MASK) << 20)
        | ((u64::from(attempt) & TOKEN_ATTEMPT_MASK) << 2)
        | (purpose & 0b11)
}

fn untoken(t: u64) -> (u64, u32, u64) {
    (t >> 20, ((t >> 2) & TOKEN_ATTEMPT_MASK) as u32, t & 0b11)
}

/// The semantic Web service endpoint plus its SWS-proxy, deployed on one
/// node.
pub struct SwsProxyActor {
    peer: PeerId,
    directory: Directory,
    disco: DiscoveryService,
    ontology: Ontology,
    semantics: HashMap<String, OperationSemantics>,
    bindings: HashMap<GroupId, Binding>,
    pending: HashMap<u64, Pending>,
    queries: HashMap<QueryId, u64>,
    next_request: u64,
    config: ProxyConfig,
    stats: ProxyStats,
    monitor: QosMonitor,
    /// Per-peer latency EWMAs feeding the fail-slow detector.
    peer_health: PeerHealth,
    /// Demoted peers and when their cooldown expires. Entries are checked
    /// against the clock on use, so an expired suspicion is inert even
    /// before it is pruned.
    suspects: HashMap<PeerId, SimTime>,
    /// In-flight client requests by (client node, client request id):
    /// a chaos-duplicated request joins the existing pending entry
    /// instead of spawning a second pipeline (and a second reply).
    inflight_clients: HashMap<(NodeId, u64), u64>,
    /// Recently answered client requests with their response envelopes;
    /// a duplicate arriving after completion is re-served from here.
    answered: std::collections::VecDeque<((NodeId, u64), String)>,
    /// Memoized semantic-match rankings, keyed on the discovery cache
    /// epoch: the warm request path skips ontology matching entirely.
    memo: matchmaker::SemanticMatchCache,
    obs: Option<Recorder>,
    /// Per-kind traffic counters for the introspection snapshot.
    tx: Metrics,
    rx: Metrics,
    /// Telemetry plane: where/how often to push [`WhisperMsg::PulseReport`]s.
    pulse: Option<PulseConfig>,
    pulse_emitter: PulseEmitter,
    /// Tail sampler deciding which requests' span trees ride the next frame.
    sampler: TailSampler,
    /// End-to-end request latency as the proxy sees it (client in → SOAP
    /// response out), including discovery and re-binds.
    local_rtt: Histogram,
    outlier_buf: Vec<OutlierTrace>,
    /// Always-on flight recorder ("whisper-flight"): bind/re-bind
    /// decisions recorded into the same Lamport-stamped ring the
    /// transport writes message events to.
    flight: Option<FlightHandle>,
}

impl SwsProxyActor {
    /// Creates a proxy serving `service`, whose WSDL-S annotations are
    /// resolved against `ontology` once, up front.
    ///
    /// # Panics
    ///
    /// Panics when an annotation does not resolve — a deployment that
    /// publishes dangling semantics is a configuration bug caught at build
    /// time by [`WhisperNet`](crate::WhisperNet), which validates first.
    pub fn new(
        peer: PeerId,
        service: &ServiceDescription,
        ontology: Ontology,
        directory: Directory,
        config: ProxyConfig,
    ) -> Self {
        let semantics = service
            .operations()
            .map(|op| {
                let sem = op
                    .resolve(&ontology)
                    .expect("service annotations must resolve against the deployment ontology");
                (op.name.clone(), sem)
            })
            .collect();
        SwsProxyActor {
            peer,
            disco: DiscoveryService::new(peer, config.strategy),
            directory,
            ontology,
            semantics,
            bindings: HashMap::new(),
            pending: HashMap::new(),
            queries: HashMap::new(),
            next_request: 0,
            config,
            stats: ProxyStats::default(),
            monitor: QosMonitor::default(),
            peer_health: PeerHealth::default(),
            suspects: HashMap::new(),
            inflight_clients: HashMap::new(),
            answered: std::collections::VecDeque::new(),
            memo: matchmaker::SemanticMatchCache::new(),
            obs: None,
            tx: Metrics::new(),
            rx: Metrics::new(),
            pulse: None,
            pulse_emitter: PulseEmitter::new(),
            // Warm after 20 samples per window: pulse windows are short
            // (~100 ms), so a higher floor can leave the threshold unset
            // on a lightly loaded proxy and tails would never be flagged.
            sampler: TailSampler::new(20, 64),
            local_rtt: Histogram::new(),
            outlier_buf: Vec::new(),
            flight: None,
        }
    }

    /// Registers the peers this proxy may flood-query.
    pub fn add_known_peer(&mut self, peer: PeerId) {
        self.disco.add_known_peer(peer);
    }

    /// Installs an observability recorder; the proxy then records
    /// `proxy.request` / `proxy.discover` / `proxy.members` / `proxy.bind`
    /// / `proxy.invoke` spans for every request it serves, and installs
    /// the recorder into its discovery service too.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.disco.set_recorder(rec.clone());
        self.obs = Some(rec);
    }

    /// Joins the pulse telemetry plane: the proxy then pushes a
    /// [`WhisperMsg::PulseReport`] to `cfg.collector` every `cfg.interval`,
    /// carrying its counter/latency deltas plus the span trees of requests
    /// its tail sampler flagged.
    pub fn set_pulse(&mut self, cfg: PulseConfig) {
        self.pulse = Some(cfg);
    }

    /// Installs this node's flight recorder handle. The same handle must
    /// be installed into the substrate (`Spawner::set_flight_hook`) so
    /// protocol transitions and message traffic share one Lamport clock.
    pub fn set_flight(&mut self, flight: FlightHandle) {
        self.flight = Some(flight);
    }

    /// The recorder handle and traced-request id of a pending request.
    fn obs_of(&self, request_id: u64) -> Option<(Recorder, RequestId)> {
        let rec = self.obs.as_ref()?.clone();
        let req = self.pending.get(&request_id)?.obs_req?;
        Some((rec, req))
    }

    /// Closes every proxy-owned span of a finished request and retires its
    /// wire-id correlation. B-peer-owned spans (e.g. `backend.execute`) are
    /// deliberately left alone: an open one truthfully reports a b-peer
    /// that never finished.
    fn obs_finish(&self, rec: &Recorder, req: RequestId, request_id: u64, now: SimTime) {
        for name in [
            "proxy.invoke",
            "proxy.members",
            "proxy.discover",
            "proxy.request",
        ] {
            rec.end_named(req, name, now);
        }
        rec.unbind(trace::NS_PEER, trace::peer_key(self.peer, request_id));
    }

    /// Counters for experiments.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The observed-QoS measurements backing [`SelectionPolicy::Adaptive`].
    pub fn qos_monitor(&self) -> &QosMonitor {
        &self.monitor
    }

    /// This proxy's peer id.
    pub fn peer_id(&self) -> PeerId {
        self.peer
    }

    /// The group each operation is currently bound to (via its coordinator
    /// peer), for inspection in tests.
    pub fn binding_of(&self, group: GroupId) -> Option<PeerId> {
        self.bindings.get(&group).map(|b| b.peer)
    }

    /// Whether `group`'s current binding bypasses a fail-slow coordinator
    /// with delegated forwards.
    pub fn binding_is_delegated(&self, group: GroupId) -> bool {
        self.bindings.get(&group).is_some_and(|b| b.delegated)
    }

    /// The per-peer latency record backing the fail-slow detector.
    pub fn peer_health(&self) -> &PeerHealth {
        &self.peer_health
    }

    /// Demotes `peer` when the fail-slow detector is armed and its
    /// evidence crosses the configured threshold. Returns whether a
    /// demotion happened.
    fn maybe_trip_fail_slow(&mut self, now: SimTime, peer: PeerId) -> bool {
        let Some(threshold) = self.config.fail_slow_after else {
            return false;
        };
        if peer_suspect(&self.suspects, peer, now) {
            return false; // already serving a cooldown
        }
        // Expired cooldown: forget it (and the stale EWMA was already
        // reset at demotion time — evidence since then is fresh).
        self.suspects.retain(|_, &mut until| now < until);
        if !self.peer_health.is_fail_slow(peer, threshold) {
            return false;
        }
        self.suspects
            .insert(peer, now + self.config.fail_slow_cooldown);
        // Fresh evidence required before any re-demotion after cooldown.
        self.peer_health.reset(peer);
        self.stats.fail_slow_rebinds += 1;
        // Unbind every group routed through the demoted peer; the next
        // request re-binds around it.
        self.bindings.retain(|_, b| b.peer != peer);
        if let Some(flight) = &self.flight {
            flight.note_alert(now, format!("fail-slow p{}", peer.value()), true);
        }
        if let Some(rec) = &self.obs {
            rec.incr("proxy.fail_slow_rebinds", 1);
        }
        true
    }

    /// Faults the request when its end-to-end budget (if any) has run
    /// out; returns whether the request was retired. Checked at every
    /// rung of the retry/re-bind ladder, so a budget cannot be overshot
    /// by more than one timeout.
    fn deadline_exceeded(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        started_at: SimTime,
    ) -> bool {
        let Some(deadline) = self.config.deadline else {
            return false;
        };
        if ctx.now().since(started_at) < deadline {
            return false;
        }
        self.stats.deadline_faults += 1;
        if let Some(rec) = &self.obs {
            rec.incr("proxy.deadline_faults", 1);
        }
        self.reply_fault(
            ctx,
            request_id,
            FaultCode::Receiver,
            "request deadline exceeded".to_string(),
        );
        true
    }

    /// Completes a client request: retires its in-flight dedup entry and
    /// remembers the answer so chaos-duplicated requests are re-served
    /// instead of re-executed.
    fn remember_answered(&mut self, key: (NodeId, u64), envelope: &str) {
        self.inflight_clients.remove(&key);
        self.answered.push_back((key, envelope.to_string()));
        if self.answered.len() > ANSWERED_CAP {
            self.answered.pop_front();
        }
    }

    /// The introspection snapshot served to [`WhisperMsg::ScopeRequest`]:
    /// cached group→coordinator bindings, in-flight request count, traffic
    /// counters and the obs registry dump.
    pub fn scope_snapshot(&self) -> NodeSnapshot {
        let mut snap = NodeSnapshot::empty(NodeRole::Proxy, self.peer.value());
        let mut bindings: Vec<(u64, u64)> = self
            .bindings
            .iter()
            .map(|(g, b)| (g.value(), b.peer.value()))
            .collect();
        bindings.sort_unstable();
        snap.bindings = bindings;
        snap.queue_depth = self.pending.len() as u64;
        snap.sent = self.tx.snapshot();
        snap.received = self.rx.snapshot();
        if let Some(rec) = &self.obs {
            snap.registry = rec.registry_dump();
        }
        snap
    }

    fn send_to_peer(&mut self, ctx: &mut Context<'_, WhisperMsg>, to: PeerId, msg: WhisperMsg) {
        self.tx.on_send(msg.kind(), msg.wire_size());
        crate::routing::send_routed(&self.directory, self.peer, ctx, to, msg);
    }

    /// Sends straight to a node (clients and probes are not in the peer
    /// directory), still counting the traffic.
    fn send_direct(&mut self, ctx: &mut Context<'_, WhisperMsg>, to: NodeId, msg: WhisperMsg) {
        self.tx.on_send(msg.kind(), msg.wire_size());
        ctx.send(to, msg);
    }

    /// Feeds a finished request into the pulse plane: records the
    /// end-to-end latency and, when the tail sampler keeps the request,
    /// buffers its span tree for the next frame.
    fn pulse_observe(&mut self, ctx: &mut Context<'_, WhisperMsg>, request_id: u64, p: &Pending) {
        if self.pulse.is_none() {
            return;
        }
        let now = ctx.now();
        let dur = now.since(p.started_at);
        self.local_rtt.record(dur);
        let us = dur.as_micros();
        let coin = ctx.rng().next_u64();
        if !self.sampler.observe(us, coin) || self.outlier_buf.len() >= MAX_PENDING_OUTLIERS {
            return;
        }
        let trace = match (&self.obs, p.obs_req) {
            (Some(rec), Some(req)) => pulse::capture_trace(rec, req, p.operation.clone(), us, now),
            // No recorder: a single synthetic span still places the request
            // on the timeline.
            _ => OutlierTrace {
                request: request_id,
                label: p.operation.clone(),
                total_us: us,
                spans: vec![PulseSpan {
                    id: 0,
                    parent: None,
                    name: "proxy.request".into(),
                    start_us: p.started_at.as_micros(),
                    end_us: now.as_micros(),
                }],
            },
        };
        self.outlier_buf.push(trace);
    }

    /// Builds and ships one telemetry frame, then re-arms the interval.
    fn emit_pulse(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        let Some(cfg) = self.pulse else {
            return;
        };
        self.sampler.roll();
        let (mut counters, mut gauges, mut hists, spans_dropped) = match &self.obs {
            Some(rec) => rec.pulse_readings(),
            None => (Vec::new(), Vec::new(), Vec::new(), 0),
        };
        if self.obs.is_none() {
            // Without a recorder the frame still carries the proxy's own
            // counters (the recorder path reports these under the same
            // names, so they are only added once).
            counters.push(("proxy.requests".into(), self.next_request));
            counters.push(("proxy.faults".into(), self.stats.faults_generated));
            counters.push(("proxy.rebinds".into(), self.stats.rebinds));
            counters.push(("proxy.redirects".into(), self.stats.redirects_followed));
            counters.push((
                "proxy.duplicate_requests".into(),
                self.stats.duplicate_requests,
            ));
            counters.push((
                "proxy.duplicate_responses".into(),
                self.stats.duplicate_responses,
            ));
            counters.push((
                "proxy.fail_slow_rebinds".into(),
                self.stats.fail_slow_rebinds,
            ));
            counters.push(("proxy.deadline_faults".into(), self.stats.deadline_faults));
        }
        counters.push(("proxy.responses".into(), self.stats.responses_forwarded));
        counters.push(("proxy.discoveries".into(), self.stats.discoveries));
        counters.extend(pulse::traffic_counters(&self.tx, &self.rx));
        counters.sort();
        gauges.push(("proxy.pending".into(), self.pending.len() as i64));
        gauges.sort();
        hists.push(("proxy.rtt".into(), self.local_rtt.clone()));
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let delta = self.pulse_emitter.frame(
            ctx.now().as_micros(),
            cfg.interval.as_micros(),
            counters,
            gauges,
            hists,
            spans_dropped,
        );
        let outliers = std::mem::take(&mut self.outlier_buf);
        self.send_direct(
            ctx,
            cfg.collector,
            WhisperMsg::PulseReport {
                delta: Box::new(delta),
                outliers,
            },
        );
        ctx.set_timer(cfg.interval, token(0, 0, PURPOSE_PULSE));
    }

    fn reply_fault(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        code: FaultCode,
        reason: String,
    ) {
        let Some(p) = self.pending.remove(&request_id) else {
            return;
        };
        if let Some(g) = p.group {
            let measured_from = p.forwarded_at.unwrap_or(p.started_at);
            self.monitor
                .record_response(g, ctx.now().since(measured_from), true);
        }
        if let (Some(rec), Some(req)) = (&self.obs, p.obs_req) {
            rec.incr("proxy.faults", 1);
            self.obs_finish(rec, req, request_id, ctx.now());
        }
        self.pulse_observe(ctx, request_id, &p);
        self.stats.faults_generated += 1;
        self.stats.responses_forwarded += 1;
        let envelope = Envelope::fault(Fault::new(code, reason)).to_xml_string();
        self.remember_answered((p.client_node, p.client_request_id), &envelope);
        self.send_direct(
            ctx,
            p.client_node,
            WhisperMsg::SoapResponse {
                request_id: p.client_request_id,
                envelope,
            },
        );
    }

    /// Entry point: a SOAP request arrived from a client.
    fn handle_soap_request(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        client_node: NodeId,
        client_request_id: u64,
        envelope: String,
    ) {
        // Exactly-once gate: a duplicated delivery of a request already in
        // flight rides the existing pipeline; one answered recently is
        // re-served from the answer cache. Either way the b-peers see the
        // request once and the client is answered once per execution.
        let key = (client_node, client_request_id);
        if self.inflight_clients.contains_key(&key) {
            self.stats.duplicate_requests += 1;
            if let Some(rec) = &self.obs {
                rec.incr("proxy.duplicate_requests", 1);
            }
            return;
        }
        if let Some((_, cached)) = self.answered.iter().rev().find(|(k, _)| *k == key) {
            self.stats.duplicate_requests += 1;
            let resend = cached.clone();
            if let Some(rec) = &self.obs {
                rec.incr("proxy.duplicate_requests", 1);
            }
            self.send_direct(
                ctx,
                client_node,
                WhisperMsg::SoapResponse {
                    request_id: client_request_id,
                    envelope: resend,
                },
            );
            return;
        }
        let operation = match Envelope::parse(&envelope) {
            Ok(env) => match env.body_payload() {
                Some(p) => p.name.to_string(),
                None => {
                    self.stats.faults_generated += 1;
                    self.stats.responses_forwarded += 1;
                    let fault =
                        Envelope::fault(Fault::new(FaultCode::Sender, "request body is empty"))
                            .to_xml_string();
                    self.send_direct(
                        ctx,
                        client_node,
                        WhisperMsg::SoapResponse {
                            request_id: client_request_id,
                            envelope: fault,
                        },
                    );
                    return;
                }
            },
            Err(e) => {
                self.stats.faults_generated += 1;
                self.stats.responses_forwarded += 1;
                let fault =
                    Envelope::fault(Fault::new(FaultCode::Sender, format!("bad envelope: {e}")))
                        .to_xml_string();
                self.send_direct(
                    ctx,
                    client_node,
                    WhisperMsg::SoapResponse {
                        request_id: client_request_id,
                        envelope: fault,
                    },
                );
                return;
            }
        };
        let request_id = self.next_request;
        self.next_request += 1;
        self.inflight_clients.insert(key, request_id);
        let obs_req = self.obs.as_ref().map(|rec| {
            let now = ctx.now();
            // Join the client's trace when it announced itself; otherwise
            // (untraced client) the request is born here.
            let req = rec
                .lookup(
                    trace::NS_SOAP,
                    trace::soap_key(client_node, client_request_id),
                )
                .unwrap_or_else(|| rec.begin_request(format!("proxy {operation}"), now));
            let span = rec.start_span("proxy.request", req, now);
            rec.set_attr(span, "operation", operation.clone());
            rec.bind(trace::NS_PEER, trace::peer_key(self.peer, request_id), req);
            rec.incr("proxy.requests", 1);
            req
        });
        self.pending.insert(
            request_id,
            Pending {
                client_node,
                client_request_id,
                operation: operation.clone(),
                envelope,
                attempts: 0,
                state: PendingState::AwaitGroups(0),
                candidates: Vec::new(),
                gathered: Vec::new(),
                gathering: false,
                failed_groups: Vec::new(),
                dead_peers: Vec::new(),
                group: None,
                started_at: ctx.now(),
                forwarded_at: None,
                obs_req,
            },
        );
        if !self.semantics.contains_key(&operation) {
            self.reply_fault(
                ctx,
                request_id,
                FaultCode::Sender,
                format!("operation {operation:?} is not offered by this service"),
            );
            return;
        }
        self.advance_from_group_search(ctx, request_id);
    }

    /// Finds a group for the request: local cache first, then the network.
    ///
    /// The local pass is the proxy's hottest path and runs zero-copy: it
    /// ranks candidates straight off borrowed cache entries, and the
    /// ranking itself is memoized per operation on the discovery cache
    /// epoch — a warm repeat request performs no cache clone and no
    /// ontology matching at all.
    fn advance_from_group_search(&mut self, ctx: &mut Context<'_, WhisperMsg>, request_id: u64) {
        let now = ctx.now();
        let picked: Option<GroupId> = {
            let Some(p) = self.pending.get(&request_id) else {
                return;
            };
            let sem = &self.semantics[&p.operation];
            let epoch = self.disco.cache_epoch();
            let filter = AdvFilter::of_kind(AdvKind::Semantic);
            let disco = &self.disco;
            let ontology = &self.ontology;
            let obs = self.obs.as_ref();
            let failed = &p.failed_groups;
            let (ranked, hit) = self
                .memo
                .get_or_build(&p.operation, epoch, failed, now, || {
                    if let Some(rec) = obs {
                        rec.incr("proxy.semantic_matches", 1);
                    }
                    // Track the earliest expiry among *consulted* entries (not
                    // just acceptable ones): conservative, so TTL passage can
                    // only cause a harmless rebuild, never a stale hit.
                    let mut earliest = SimTime::from_micros(u64::MAX);
                    let ranked = matchmaker::rank_candidates(
                        ontology,
                        sem,
                        disco
                            .local_lookup_iter(&filter, now)
                            .map(|(a, expires)| {
                                if expires < earliest {
                                    earliest = expires;
                                }
                                a
                            })
                            .filter_map(Advertisement::as_semantic)
                            .filter(|a| !failed.contains(&a.group)),
                    );
                    (ranked, earliest)
                });
            if hit {
                if let Some(rec) = obs {
                    rec.incr("proxy.memo_hits", 1);
                }
            }
            matchmaker::select_from_ranked(ranked, self.config.policy, ctx.rng(), &self.monitor)
                .map(|i| ranked[i].adv.group)
        };
        if let Some(group) = picked {
            self.bind_or_find_members(ctx, request_id, group);
            return;
        }
        // Nothing usable locally: go to the network.
        let (qid, sends) = self
            .disco
            .remote_query(AdvFilter::of_kind(AdvKind::Semantic), now);
        self.stats.discoveries += 1;
        self.queries.insert(qid, request_id);
        if let Some((rec, req)) = self.obs_of(request_id) {
            // a re-discovery after a failed group supersedes the old span
            rec.end_named(req, "proxy.discover", now);
            let span = rec.start_span("proxy.discover", req, now);
            rec.set_attr(span, "query", qid);
            rec.bind(trace::NS_QUERY, qid, req);
        }
        for s in sends {
            self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
        }
        if let Some(p) = self.pending.get_mut(&request_id) {
            p.attempts += 1;
            p.state = PendingState::AwaitGroups(qid);
            let attempts = p.attempts;
            ctx.set_timer(
                self.config.request_timeout,
                token(request_id, attempts, PURPOSE_TIMEOUT),
            );
        }
    }

    /// With a group chosen: bind to a member (cached binding, cached peer
    /// advertisements, or a member-discovery query).
    ///
    /// Runs over a single mutable borrow of the pending entry: the member
    /// scan filters borrowed cache entries against the borrowed dead-peer
    /// list, with no re-fetches and no clones.
    fn bind_or_find_members(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        group: GroupId,
    ) {
        let now = ctx.now();
        let mut filter = AdvFilter::of_kind(AdvKind::Peer);
        filter.group = Some(group);
        // A cached binding is reused unless its peer turned suspect, or it
        // was a fail-slow bypass whose shadowed coordinator has recovered;
        // either way the stale binding is dropped and the member scan runs.
        let cached = self.bindings.get(&group).copied();
        if let Some(b) = cached {
            let stale = peer_suspect(&self.suspects, b.peer, now)
                || b.shadows
                    .is_some_and(|c| !peer_suspect(&self.suspects, c, now));
            if stale {
                self.bindings.remove(&group);
            }
        }
        let target: Option<(PeerId, bool, Option<PeerId>)> = {
            let Some(p) = self.pending.get_mut(&request_id) else {
                return;
            };
            p.group = Some(group);
            if let Some(b) = self.bindings.get(&group) {
                Some((b.peer, b.delegated, b.shadows))
            } else {
                let dead = &p.dead_peers;
                let mut members: Vec<PeerId> = self
                    .disco
                    .local_lookup_iter(&filter, now)
                    .filter_map(|(a, _)| match a {
                        Advertisement::Peer(pa) => Some(pa.peer),
                        _ => None,
                    })
                    .filter(|m| !dead.contains(m))
                    .collect();
                if members.is_empty() {
                    None
                } else {
                    members.sort();
                    Some(pick_target(&mut members, &self.suspects, now, |c| {
                        p.candidates = c;
                    }))
                }
            }
        };
        if let Some((target, delegated, shadows)) = target {
            self.forward_to_peer(ctx, request_id, target, group, delegated, shadows);
            return;
        }
        // No member knowledge: query the network for the group's peers.
        let (qid, sends) = self.disco.remote_query(filter, now);
        self.stats.discoveries += 1;
        self.queries.insert(qid, request_id);
        if let Some((rec, req)) = self.obs_of(request_id) {
            rec.end_named(req, "proxy.members", now);
            let span = rec.start_span("proxy.members", req, now);
            rec.set_attr(span, "group", group.value());
            rec.set_attr(span, "query", qid);
            rec.bind(trace::NS_QUERY, qid, req);
        }
        for s in sends {
            self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
        }
        if let Some(p) = self.pending.get_mut(&request_id) {
            p.attempts += 1;
            p.state = PendingState::AwaitMembers(qid, group);
            let attempts = p.attempts;
            ctx.set_timer(
                self.config.request_timeout,
                token(request_id, attempts, PURPOSE_TIMEOUT),
            );
        }
    }

    fn forward_to_peer(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        target: PeerId,
        group: GroupId,
        delegated: bool,
        shadows: Option<PeerId>,
    ) {
        let Some((attempts_so_far, started_at)) = self
            .pending
            .get(&request_id)
            .map(|p| (p.attempts, p.started_at))
        else {
            return;
        };
        if attempts_so_far >= self.config.max_attempts {
            self.reply_fault(
                ctx,
                request_id,
                FaultCode::Receiver,
                "no live b-peer could process the request".to_string(),
            );
            return;
        }
        if self.deadline_exceeded(ctx, request_id, started_at) {
            return;
        }
        let p = self.pending.get_mut(&request_id).expect("checked above");
        p.attempts += 1;
        p.state = PendingState::AwaitResponse(target);
        p.forwarded_at = Some(ctx.now());
        let attempts = p.attempts;
        let envelope = p.envelope.clone();
        self.bindings.insert(
            group,
            Binding {
                peer: target,
                delegated,
                shadows,
            },
        );
        if let Some(flight) = &self.flight {
            // attempt 1 is the initial binding; later waves are re-binds
            // after a timeout or redirect
            flight.note_bind(
                ctx.now(),
                format!("group-{}", group.value()),
                target.value(),
                attempts > 1,
            );
        }
        if let Some((rec, req)) = self.obs_of(request_id) {
            let now = ctx.now();
            // a retry closes the previous attempt's invoke span first
            rec.end_named(req, "proxy.invoke", now);
            let bind = rec.instant("proxy.bind", req, now);
            rec.set_attr(bind, "peer", target.value());
            rec.set_attr(bind, "attempt", attempts as u64);
            let invoke = rec.start_span("proxy.invoke", req, now);
            rec.set_attr(invoke, "peer", target.value());
        }
        self.send_to_peer(
            ctx,
            target,
            WhisperMsg::PeerRequest {
                request_id,
                reply_to: self.peer,
                delegated,
                envelope,
            },
        );
        ctx.set_timer(
            self.config.request_timeout,
            token(request_id, attempts, PURPOSE_TIMEOUT),
        );
    }

    fn handle_discovery_results(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        query: QueryId,
        advs: Vec<Advertisement>,
    ) {
        let Some(&request_id) = self.queries.get(&query) else {
            return;
        };
        let Some(p) = self.pending.get_mut(&request_id) else {
            self.queries.remove(&query);
            return;
        };
        match p.state {
            PendingState::AwaitGroups(q) if q == query => {
                // Flood discovery returns one response per peer; collect
                // them over a short gather window so selection sees the
                // whole network, then decide once the window closes.
                p.gathered
                    .extend(advs.iter().filter_map(Advertisement::as_semantic).cloned());
                if !p.gathering && !p.gathered.is_empty() {
                    p.gathering = true;
                    ctx.set_timer(
                        self.config.gather_window,
                        token(request_id, p.attempts, PURPOSE_GATHER),
                    );
                }
            }
            PendingState::AwaitMembers(q, group) if q == query => {
                let dead = &p.dead_peers;
                let mut members: Vec<PeerId> = advs
                    .iter()
                    .filter_map(|a| match a {
                        Advertisement::Peer(pa) if pa.group == Some(group) => Some(pa.peer),
                        _ => None,
                    })
                    .filter(|m| !dead.contains(m))
                    .collect();
                members.sort();
                members.dedup();
                if members.is_empty() {
                    // keep the query registered: a later response may
                    // still carry live members
                    return;
                }
                self.queries.remove(&query);
                let now = ctx.now();
                let (target, delegated, shadows) =
                    pick_target(&mut members, &self.suspects, now, |c| {
                        p.candidates = c;
                    });
                if let (Some(rec), Some(req)) = (&self.obs, p.obs_req) {
                    rec.end_named(req, "proxy.members", now);
                    rec.unbind(trace::NS_QUERY, query);
                }
                self.forward_to_peer(ctx, request_id, target, group, delegated, shadows);
            }
            _ => {
                self.queries.remove(&query);
            }
        }
    }

    fn handle_redirect(
        &mut self,
        ctx: &mut Context<'_, WhisperMsg>,
        request_id: u64,
        coordinator: Option<PeerId>,
    ) {
        let (old_target, group) = match self.pending.get(&request_id) {
            Some(p) => match p.state {
                PendingState::AwaitResponse(t) => (t, p.group),
                _ => return,
            },
            None => return,
        };
        if let Some((rec, req)) = self.obs_of(request_id) {
            let redirect = rec.instant("proxy.redirect", req, ctx.now());
            rec.set_attr(redirect, "from", old_target.value());
            if let Some(c) = coordinator {
                rec.set_attr(redirect, "coordinator", c.value());
            }
            rec.end_named(req, "proxy.invoke", ctx.now());
            rec.incr("proxy.redirects", 1);
        }
        match (coordinator, group) {
            (Some(c), Some(g)) if c != old_target => {
                self.stats.redirects_followed += 1;
                self.forward_to_peer(ctx, request_id, c, g, false, None);
            }
            (_, Some(g)) => {
                // No coordinator yet (election in flight) or a self-loop:
                // back off and retry.
                let p = self.pending.get_mut(&request_id).expect("checked above");
                p.state = PendingState::Backoff(g);
                let attempts = p.attempts;
                ctx.set_timer(
                    self.config.retry_backoff,
                    token(request_id, attempts, PURPOSE_BACKOFF),
                );
            }
            (_, None) => {
                self.reply_fault(
                    ctx,
                    request_id,
                    FaultCode::Receiver,
                    "binding lost during redirect".to_string(),
                );
            }
        }
    }

    fn handle_timeout(&mut self, ctx: &mut Context<'_, WhisperMsg>, request_id: u64, attempt: u32) {
        let Some(p) = self.pending.get(&request_id) else {
            return;
        };
        if p.attempts != attempt {
            return; // stale timer from an earlier attempt
        }
        let started_at = p.started_at;
        if self.deadline_exceeded(ctx, request_id, started_at) {
            return;
        }
        let p = self.pending.get(&request_id).expect("not retired above");
        if p.attempts >= self.config.max_attempts {
            self.reply_fault(
                ctx,
                request_id,
                FaultCode::Receiver,
                "request timed out after exhausting all b-peers".to_string(),
            );
            return;
        }
        match p.state {
            PendingState::AwaitGroups(_) => {
                // discovery produced nothing in time
                self.reply_fault(
                    ctx,
                    request_id,
                    FaultCode::Receiver,
                    "no semantic peer group matches the request".to_string(),
                );
            }
            PendingState::AwaitMembers(_, group) => {
                // No untried member answered: every member of this group is
                // dead as far as this request is concerned. Exclude the
                // group and search for an alternative.
                if let Some((rec, req)) = self.obs_of(request_id) {
                    rec.end_named(req, "proxy.members", ctx.now());
                }
                if let Some(p) = self.pending.get_mut(&request_id) {
                    p.failed_groups.push(group);
                }
                self.advance_from_group_search(ctx, request_id);
            }
            PendingState::AwaitResponse(dead) => {
                // The bound peer is unresponsive: re-bind. Try the next
                // cached member; when none are left, re-discover members
                // (a new coordinator may have been elected meanwhile).
                self.stats.rebinds += 1;
                if let Some((rec, req)) = self.obs_of(request_id) {
                    rec.end_named(req, "proxy.invoke", ctx.now());
                    rec.incr("proxy.rebinds", 1);
                }
                let group = self.pending.get(&request_id).and_then(|p| p.group);
                if let Some(p) = self.pending.get_mut(&request_id) {
                    p.dead_peers.push(dead);
                }
                if let Some(g) = group {
                    self.bindings.remove(&g);
                    let next = self.pending.get_mut(&request_id).and_then(|p| {
                        while let Some(c) = p.candidates.pop() {
                            if !p.dead_peers.contains(&c) {
                                return Some(c);
                            }
                        }
                        None
                    });
                    match next {
                        Some(next_target) => {
                            self.forward_to_peer(ctx, request_id, next_target, g, false, None)
                        }
                        // Consult the caches / the network for members we
                        // have not tried yet; a new coordinator may exist.
                        None => self.bind_or_find_members(ctx, request_id, g),
                    }
                } else {
                    self.advance_from_group_search(ctx, request_id);
                }
            }
            PendingState::Backoff(_) => {}
        }
    }

    fn handle_gather_fired(&mut self, ctx: &mut Context<'_, WhisperMsg>, request_id: u64) {
        let picked: Option<(QueryId, GroupId)> = {
            let Some(p) = self.pending.get_mut(&request_id) else {
                return;
            };
            let PendingState::AwaitGroups(query) = p.state else {
                return;
            };
            p.gathering = false;
            let failed = &p.failed_groups;
            let candidates: Vec<SemanticAdv> = std::mem::take(&mut p.gathered)
                .into_iter()
                .filter(|a| !failed.contains(&a.group))
                .collect();
            let sem = &self.semantics[&p.operation];
            // Gathered network candidates are one-shot per query — a full
            // matching pass, never memoized.
            if let Some(rec) = self.obs.as_ref() {
                rec.incr("proxy.semantic_matches", 1);
            }
            matchmaker::select_candidate(
                &self.ontology,
                sem,
                &candidates,
                self.config.policy,
                ctx.rng(),
                &self.monitor,
            )
            .map(|idx| (query, candidates[idx].group))
        };
        let Some((query, group)) = picked else {
            // keep waiting for more responses; the request timeout faults
            // if nothing acceptable ever shows up
            return;
        };
        self.queries.remove(&query);
        if let Some((rec, req)) = self.obs_of(request_id) {
            rec.end_named(req, "proxy.discover", ctx.now());
            rec.unbind(trace::NS_QUERY, query);
        }
        self.bind_or_find_members(ctx, request_id, group);
    }

    fn handle_backoff_fired(&mut self, ctx: &mut Context<'_, WhisperMsg>, request_id: u64) {
        let Some(p) = self.pending.get(&request_id) else {
            return;
        };
        if let PendingState::Backoff(group) = p.state {
            self.bindings.remove(&group);
            self.bind_or_find_members(ctx, request_id, group);
        }
    }
}

impl Actor<WhisperMsg> for SwsProxyActor {
    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        let Some((from, msg)) =
            crate::routing::unwrap_or_forward(&self.directory, self.peer, ctx, from, msg)
        else {
            return;
        };
        self.rx.on_send(msg.kind(), msg.wire_size());
        match msg {
            WhisperMsg::SoapRequest {
                request_id,
                envelope,
            } => {
                self.handle_soap_request(ctx, from, request_id, envelope);
            }
            WhisperMsg::P2p(m) => {
                let from_peer = self.directory.peer_of(from).unwrap_or(self.peer);
                let (sends, events) = self.disco.handle_message(from_peer, m, ctx.now());
                for s in sends {
                    self.send_to_peer(ctx, s.to, WhisperMsg::P2p(s.msg));
                }
                for ev in events {
                    let whisper_p2p::DiscoveryEvent::Results { query, advs } = ev;
                    self.handle_discovery_results(ctx, query, advs);
                }
            }
            WhisperMsg::PeerResponse {
                request_id,
                envelope,
            } => {
                if let Some(p) = self.pending.remove(&request_id) {
                    self.stats.responses_forwarded += 1;
                    // Per-peer latency evidence: attribute the response to
                    // the peer it was forwarded to, so a fail-slow member
                    // is demoted on observation, not on timeout.
                    if let (PendingState::AwaitResponse(peer), Some(f)) = (&p.state, p.forwarded_at)
                    {
                        let peer = *peer;
                        self.peer_health.record_response(peer, ctx.now().since(f));
                        self.maybe_trip_fail_slow(ctx.now(), peer);
                    }
                    if let Some(g) = p.group {
                        let fault = Envelope::parse(&envelope)
                            .map(|e| e.is_fault())
                            .unwrap_or(true);
                        let measured_from = p.forwarded_at.unwrap_or(p.started_at);
                        self.monitor
                            .record_response(g, ctx.now().since(measured_from), fault);
                    }
                    if let (Some(rec), Some(req)) = (&self.obs, p.obs_req) {
                        let now = ctx.now();
                        if let Some(f) = p.forwarded_at {
                            rec.record_duration("proxy.invoke", now.since(f));
                        }
                        rec.record_duration("proxy.request", now.since(p.started_at));
                        self.obs_finish(rec, req, request_id, now);
                    }
                    self.pulse_observe(ctx, request_id, &p);
                    self.remember_answered((p.client_node, p.client_request_id), &envelope);
                    self.send_direct(
                        ctx,
                        p.client_node,
                        WhisperMsg::SoapResponse {
                            request_id: p.client_request_id,
                            envelope,
                        },
                    );
                } else {
                    // A late reply crossing a retry, or a chaos-duplicated
                    // frame: the client was (or will be) answered by the
                    // winning copy; this one is dropped, not forwarded.
                    self.stats.duplicate_responses += 1;
                    if let Some(rec) = &self.obs {
                        rec.incr("proxy.duplicate_responses", 1);
                    }
                }
            }
            WhisperMsg::PeerRedirect {
                request_id,
                coordinator,
            } => {
                self.handle_redirect(ctx, request_id, coordinator);
            }
            WhisperMsg::ScopeRequest { request_id } => {
                let reply = WhisperMsg::ScopeResponse {
                    request_id,
                    snapshot: Box::new(self.scope_snapshot()),
                };
                match self.directory.peer_of(from) {
                    Some(peer) => self.send_to_peer(ctx, peer, reply),
                    None => self.send_direct(ctx, from, reply),
                }
            }
            // An empty-events dump is a collector's solicitation: answer
            // with this node's ring. Filled dumps are collector traffic.
            WhisperMsg::FlightDump {
                request_id, events, ..
            } if events.is_empty() => {
                let reply = WhisperMsg::FlightDump {
                    request_id,
                    node: self.peer.value(),
                    events: self
                        .flight
                        .as_ref()
                        .map(FlightHandle::snapshot)
                        .unwrap_or_default(),
                };
                match self.directory.peer_of(from) {
                    Some(peer) => self.send_to_peer(ctx, peer, reply),
                    None => self.send_direct(ctx, from, reply),
                }
            }
            // Proxies ignore election traffic, stray SOAP responses,
            // telemetry frames (only the collector consumes those), and
            // worker completions (b-peer-internal traffic).
            WhisperMsg::Election { .. }
            | WhisperMsg::SoapResponse { .. }
            | WhisperMsg::PeerRequest { .. }
            | WhisperMsg::ScopeResponse { .. }
            | WhisperMsg::Relayed { .. }
            | WhisperMsg::PulseReport { .. }
            | WhisperMsg::FlightDump { .. }
            | WhisperMsg::JobDone { .. } => {}
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, WhisperMsg>) {
        if let Some(cfg) = self.pulse {
            ctx.set_timer(cfg.interval, token(0, 0, PURPOSE_PULSE));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WhisperMsg>, t: u64) {
        let (request_id, attempt, purpose) = untoken(t);
        match purpose {
            PURPOSE_PULSE => self.emit_pulse(ctx),
            PURPOSE_TIMEOUT => self.handle_timeout(ctx, request_id, attempt),
            PURPOSE_BACKOFF => self.handle_backoff_fired(ctx, request_id),
            PURPOSE_GATHER => self.handle_gather_fired(ctx, request_id),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        for (rid, att, purpose) in [
            (0u64, 0u32, PURPOSE_TIMEOUT),
            (17, 9, PURPOSE_BACKOFF),
            (1 << 30, 200_000, PURPOSE_TIMEOUT),
        ] {
            let t = token(rid, att, purpose);
            let (r, a, p) = untoken(t);
            assert_eq!((r, a, p), (rid, att & 0x3_ffff, purpose));
        }
    }

    #[test]
    fn token_fields_saturate_without_bleeding_into_neighbours() {
        // Every field simultaneously at its maximum round-trips exactly:
        // the packing masks keep each field inside its own bit range.
        let rid = TOKEN_REQUEST_MASK;
        let att = TOKEN_ATTEMPT_MASK as u32;
        for purpose in [
            PURPOSE_PULSE,
            PURPOSE_TIMEOUT,
            PURPOSE_BACKOFF,
            PURPOSE_GATHER,
        ] {
            let (r, a, p) = untoken(token(rid, att, purpose));
            assert_eq!((r, a, p), (rid, att, purpose));
        }
        // A saturated attempt never flips request-id bits: two tokens for
        // different requests stay distinct whatever the attempt counter is.
        assert_ne!(
            token(1, att, PURPOSE_TIMEOUT) >> 20,
            token(2, att, PURPOSE_TIMEOUT) >> 20
        );
    }

    #[test]
    fn proxy_construction_resolves_semantics() {
        let svc = whisper_wsdl::samples::student_management();
        let onto = whisper_ontology::samples::university_ontology();
        let proxy = SwsProxyActor::new(
            PeerId::new(0),
            &svc,
            onto,
            Directory::default(),
            ProxyConfig::default(),
        );
        assert_eq!(proxy.semantics.len(), 2);
        assert!(proxy.semantics.contains_key("StudentInformation"));
        assert_eq!(proxy.stats(), ProxyStats::default());
    }

    #[test]
    #[should_panic(expected = "must resolve")]
    fn dangling_annotations_panic_at_construction() {
        let svc = whisper_wsdl::samples::student_management();
        // wrong ontology: b2b doesn't define the university concepts
        let onto = whisper_ontology::samples::b2b_ontology();
        let _ = SwsProxyActor::new(
            PeerId::new(0),
            &svc,
            onto,
            Directory::default(),
            ProxyConfig::default(),
        );
    }
}
