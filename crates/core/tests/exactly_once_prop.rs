//! Property: whatever the chaos plane does to replies — duplicating them,
//! reordering them, letting a late reply cross a retry, or duplicating the
//! client's request itself — each client request id is answered exactly
//! once, and every surplus message is counted, never forwarded.

use proptest::prelude::*;
use whisper::{WhisperMsg, WhisperNet};
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;
use whisper_xml::Element;

fn student_payload() -> Element {
    let mut p = Element::new("StudentInformation");
    p.push_child(Element::with_text("StudentID", "u1004"));
    p
}

const REQUESTS: u64 = 4;

proptest! {
    // Each case boots a full deployment; a handful of cases over the
    // seed/duplication space is plenty and keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn replies_collapse_to_exactly_one_per_request(
        seed in 0u64..500,
        forged_inflight in 0usize..3,
        forged_late in 0usize..3,
        dup_requests in 0usize..3,
        stray in 0usize..2,
    ) {
        let mut net = WhisperNet::student_scenario(3, seed);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        let proxy = net.proxy_node();
        let bpeer = net.group_nodes(0)[0];
        let forged_env = Envelope::request(student_payload()).to_xml_string();

        // Sequential requests; the proxy numbers them 0..REQUESTS in
        // arrival order, which the forged replies below rely on.
        for i in 0..REQUESTS {
            net.submit_student_request(client, "u1004");
            if i == 0 {
                // replies racing the real one for the in-flight request:
                // whichever copy arrives first wins, the rest are dropped
                for _ in 0..forged_inflight {
                    net.sim().inject(bpeer, proxy, WhisperMsg::PeerResponse {
                        request_id: 0,
                        envelope: forged_env.clone(),
                    });
                }
            }
            net.run_for(SimDuration::from_secs(2));
        }
        // late replies for requests already answered (a retry's first
        // attempt surfacing after the second one won)
        for k in 0..forged_late {
            net.sim().inject(bpeer, proxy, WhisperMsg::PeerResponse {
                request_id: k as u64 % REQUESTS,
                envelope: forged_env.clone(),
            });
        }
        // replies for requests that never existed
        for _ in 0..stray {
            net.sim().inject(bpeer, proxy, WhisperMsg::PeerResponse {
                request_id: 999_999,
                envelope: forged_env.clone(),
            });
        }
        // chaos-duplicated client requests: re-served from the answer
        // cache, never re-executed
        for k in 0..dup_requests {
            net.sim().inject(client, proxy, WhisperMsg::SoapRequest {
                request_id: k as u64 % REQUESTS,
                envelope: forged_env.clone(),
            });
        }
        net.run_for(SimDuration::from_secs(2));

        let stats = net.proxy_stats();
        prop_assert_eq!(stats.responses_forwarded, REQUESTS, "stats: {:?}", stats);
        // Every surplus reply is counted, never forwarded. The exact tally
        // depends on the race for request 0: when a forged copy wins before
        // the forward, the b-peer never executes and the "real" reply does
        // not exist, so one fewer duplicate arrives.
        let dups = stats.duplicate_responses as usize;
        let floor = forged_inflight.saturating_sub(1) + forged_late + stray;
        let ceil = forged_inflight + forged_late + stray;
        prop_assert!(
            dups >= floor && dups <= ceil,
            "duplicate_responses {} outside [{}, {}]: {:?}",
            dups, floor, ceil, stats
        );
        prop_assert_eq!(stats.duplicate_requests as usize, dup_requests, "stats: {:?}", stats);

        let cs = net.client_stats(client);
        prop_assert_eq!(cs.completed, REQUESTS, "client: {:?}", cs);
        prop_assert_eq!(cs.timeouts, 0);
        let outcomes = net.client_outcomes(client);
        prop_assert_eq!(outcomes.len() as u64, REQUESTS);
        for o in &outcomes {
            prop_assert!(o.completed_at.is_some(), "unanswered request {:?}", o);
        }
    }
}
