//! SOAP fault representation.

use crate::{SoapError, SOAP_ENVELOPE_NS};
use std::fmt;
use whisper_xml::Element;

/// The standard SOAP 1.2 fault code values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCode {
    /// The message was malformed according to the envelope schema.
    Sender,
    /// The message could not be processed for reasons attributable to the
    /// receiving node — the code Whisper's proxies emit when every b-peer of
    /// a semantic group is unreachable.
    Receiver,
    /// A header block with `mustUnderstand="true"` was not understood.
    MustUnderstand,
    /// The encoding of the message is unsupported.
    DataEncodingUnknown,
    /// Version mismatch between envelope namespaces.
    VersionMismatch,
}

impl FaultCode {
    /// The lexical value used on the wire (e.g. `soap:Receiver`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultCode::Sender => "Sender",
            FaultCode::Receiver => "Receiver",
            FaultCode::MustUnderstand => "MustUnderstand",
            FaultCode::DataEncodingUnknown => "DataEncodingUnknown",
            FaultCode::VersionMismatch => "VersionMismatch",
        }
    }

    /// Parses a wire value, accepting an optional prefix.
    pub fn from_wire(s: &str) -> Option<Self> {
        let local = s.rsplit(':').next().unwrap_or(s);
        Some(match local {
            "Sender" => FaultCode::Sender,
            "Receiver" => FaultCode::Receiver,
            "MustUnderstand" => FaultCode::MustUnderstand,
            "DataEncodingUnknown" => FaultCode::DataEncodingUnknown,
            "VersionMismatch" => FaultCode::VersionMismatch,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A SOAP fault: code, human-readable reason and optional detail payload.
///
/// # Examples
///
/// ```
/// use whisper_soap::{Fault, FaultCode};
///
/// let f = Fault::new(FaultCode::Receiver, "no live b-peer in group");
/// let e = f.to_element();
/// let back = Fault::from_element(&e).unwrap();
/// assert_eq!(back.code, FaultCode::Receiver);
/// assert_eq!(back.reason, "no live b-peer in group");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Machine-readable classification.
    pub code: FaultCode,
    /// Human-readable explanation.
    pub reason: String,
    /// Optional application-specific detail payload.
    pub detail: Option<Element>,
}

impl Fault {
    /// Creates a fault with no detail.
    pub fn new(code: FaultCode, reason: impl Into<String>) -> Self {
        Fault {
            code,
            reason: reason.into(),
            detail: None,
        }
    }

    /// Attaches a detail element, returning the fault for chaining.
    pub fn with_detail(mut self, detail: Element) -> Self {
        self.detail = Some(detail);
        self
    }

    /// Renders the fault as the `<Fault>` element placed in a SOAP body.
    pub fn to_element(&self) -> Element {
        let mut fault = Element::with_ns("Fault", SOAP_ENVELOPE_NS);
        let mut code = Element::with_ns("Code", SOAP_ENVELOPE_NS);
        code.push_child(Element::with_text("Value", format!("soap:{}", self.code)));
        let mut reason = Element::with_ns("Reason", SOAP_ENVELOPE_NS);
        reason.push_child(Element::with_text("Text", self.reason.clone()));
        fault.push_child(code);
        fault.push_child(reason);
        if let Some(d) = &self.detail {
            let mut detail = Element::with_ns("Detail", SOAP_ENVELOPE_NS);
            detail.push_child(d.clone());
            fault.push_child(detail);
        }
        fault
    }

    /// Parses a `<Fault>` element.
    ///
    /// # Errors
    ///
    /// [`SoapError::MalformedFault`] when the mandatory `Code/Value` or
    /// `Reason/Text` structure is missing or carries an unknown code.
    pub fn from_element(e: &Element) -> Result<Self, SoapError> {
        let value = e
            .child("Code")
            .and_then(|c| c.child("Value"))
            .map(|v| v.text())
            .ok_or_else(|| SoapError::MalformedFault("missing Code/Value".into()))?;
        let code = FaultCode::from_wire(value.trim())
            .ok_or_else(|| SoapError::MalformedFault(format!("unknown fault code {value:?}")))?;
        let reason = e
            .child("Reason")
            .and_then(|r| r.child("Text"))
            .map(|t| t.text())
            .ok_or_else(|| SoapError::MalformedFault("missing Reason/Text".into()))?;
        let detail = e
            .child("Detail")
            .and_then(|d| d.child_elements().next())
            .cloned();
        Ok(Fault {
            code,
            reason,
            detail,
        })
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soap fault [{}]: {}", self.code, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_without_detail() {
        let f = Fault::new(FaultCode::Sender, "bad request");
        assert_eq!(Fault::from_element(&f.to_element()).unwrap(), f);
    }

    #[test]
    fn round_trip_with_detail() {
        let detail = Element::with_text("RetryAfter", "1500");
        let f = Fault::new(FaultCode::Receiver, "all peers down").with_detail(detail.clone());
        let back = Fault::from_element(&f.to_element()).unwrap();
        assert_eq!(back.detail, Some(detail));
    }

    #[test]
    fn all_codes_round_trip_via_wire_form() {
        for c in [
            FaultCode::Sender,
            FaultCode::Receiver,
            FaultCode::MustUnderstand,
            FaultCode::DataEncodingUnknown,
            FaultCode::VersionMismatch,
        ] {
            assert_eq!(FaultCode::from_wire(&format!("soap:{c}")), Some(c));
            assert_eq!(FaultCode::from_wire(c.as_str()), Some(c));
        }
        assert_eq!(FaultCode::from_wire("soap:Nope"), None);
    }

    #[test]
    fn missing_parts_rejected() {
        let empty = Element::new("Fault");
        assert!(matches!(
            Fault::from_element(&empty),
            Err(SoapError::MalformedFault(_))
        ));

        let mut code_only = Element::new("Fault");
        let mut code = Element::new("Code");
        code.push_child(Element::with_text("Value", "soap:Sender"));
        code_only.push_child(code);
        assert!(matches!(
            Fault::from_element(&code_only),
            Err(SoapError::MalformedFault(_))
        ));
    }

    #[test]
    fn display_mentions_code_and_reason() {
        let f = Fault::new(FaultCode::Receiver, "offline");
        let s = f.to_string();
        assert!(s.contains("Receiver") && s.contains("offline"));
    }
}
