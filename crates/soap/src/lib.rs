//! # whisper-soap
//!
//! A SOAP 1.2-style messaging layer over [`whisper_xml`]: envelopes with
//! optional headers, body payloads, and the `<soap:fault>` machinery that the
//! paper identifies as the *only* error-handling mechanism plain Web services
//! offer (and that Whisper's architecture supplements with fault tolerance).
//!
//! # Examples
//!
//! Build a request, serialize it to the wire and parse it back:
//!
//! ```
//! use whisper_soap::Envelope;
//! use whisper_xml::Element;
//!
//! # fn main() -> Result<(), whisper_soap::SoapError> {
//! let mut payload = Element::new("StudentInformation");
//! payload.push_child(Element::with_text("StudentID", "u1042"));
//!
//! let request = Envelope::request(payload);
//! let wire = request.to_xml_string();
//! let parsed = Envelope::parse(&wire)?;
//! assert_eq!(parsed.body_payload().unwrap().name, "StudentInformation");
//! assert!(!parsed.is_fault());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod error;
mod fault;

pub use envelope::{Envelope, HeaderBlock, ROLE_NEXT};
pub use error::SoapError;
pub use fault::{Fault, FaultCode};

/// Namespace URI used for Whisper SOAP envelopes (SOAP 1.2 envelope NS).
pub const SOAP_ENVELOPE_NS: &str = "http://www.w3.org/2003/05/soap-envelope";
