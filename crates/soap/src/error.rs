//! Error type for SOAP envelope processing.

use std::error::Error;
use std::fmt;
use whisper_xml::XmlError;

/// An error produced while parsing or validating a SOAP envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoapError {
    /// The document was not well-formed XML.
    Xml(XmlError),
    /// The root element is not `Envelope` in the SOAP envelope namespace.
    NotAnEnvelope(String),
    /// The envelope has no `Body` child.
    MissingBody,
    /// A `Fault` element is structurally invalid.
    MalformedFault(String),
    /// The header carries a `mustUnderstand` block the receiver doesn't know.
    MustUnderstand(String),
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "invalid XML: {e}"),
            SoapError::NotAnEnvelope(found) => {
                write!(f, "expected soap Envelope, found {found:?}")
            }
            SoapError::MissingBody => write!(f, "envelope has no Body"),
            SoapError::MalformedFault(why) => write!(f, "malformed fault: {why}"),
            SoapError::MustUnderstand(role) => {
                write!(f, "header block for {role:?} must be understood")
            }
        }
    }
}

impl Error for SoapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SoapError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let xe = whisper_xml::parse("").unwrap_err();
        let e = SoapError::Xml(xe);
        assert!(e.to_string().contains("invalid XML"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SoapError::MissingBody).is_none());
    }
}
