//! SOAP envelopes: header blocks and body payloads.

use crate::fault::Fault;
use crate::{SoapError, SOAP_ENVELOPE_NS};
use whisper_xml::{parse, Element};

/// A header block: an application element plus SOAP processing attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderBlock {
    /// The header content.
    pub content: Element,
    /// Whether the receiver must understand this block to process the
    /// message ([`Envelope::validate_must_understand`]).
    pub must_understand: bool,
    /// The SOAP 1.2 `role` this block targets (`None` = ultimate
    /// receiver). Intermediaries such as Whisper relays only process blocks
    /// addressed to [`ROLE_NEXT`].
    pub role: Option<String>,
}

/// The SOAP 1.2 role every node on a message path plays.
pub const ROLE_NEXT: &str = "http://www.w3.org/2003/05/soap-envelope/role/next";

impl HeaderBlock {
    /// Creates an optional (non-`mustUnderstand`) header block targeting
    /// the ultimate receiver.
    pub fn new(content: Element) -> Self {
        HeaderBlock {
            content,
            must_understand: false,
            role: None,
        }
    }

    /// Marks the block as `mustUnderstand`.
    pub fn required(mut self) -> Self {
        self.must_understand = true;
        self
    }

    /// Targets the block at a SOAP role (e.g. [`ROLE_NEXT`]).
    pub fn for_role(mut self, role: impl Into<String>) -> Self {
        self.role = Some(role.into());
        self
    }
}

/// A SOAP envelope: optional header blocks plus exactly one body, which is
/// either an application payload or a [`Fault`].
///
/// # Examples
///
/// ```
/// use whisper_soap::{Envelope, Fault, FaultCode};
/// use whisper_xml::Element;
///
/// let fault = Envelope::fault(Fault::new(FaultCode::Receiver, "down"));
/// assert!(fault.is_fault());
///
/// let ok = Envelope::request(Element::with_text("Ping", "1"));
/// assert!(!ok.is_fault());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Header blocks in document order.
    pub headers: Vec<HeaderBlock>,
    body: Body,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Body {
    Payload(Element),
    Fault(Fault),
    Empty,
}

impl Envelope {
    /// Creates a request/response envelope carrying `payload`.
    pub fn request(payload: Element) -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Payload(payload),
        }
    }

    /// Creates a fault envelope.
    pub fn fault(fault: Fault) -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Fault(fault),
        }
    }

    /// Creates an envelope with an empty body (one-way acknowledgements).
    pub fn empty() -> Self {
        Envelope {
            headers: Vec::new(),
            body: Body::Empty,
        }
    }

    /// Adds a header block, returning `self` for chaining.
    pub fn with_header(mut self, block: HeaderBlock) -> Self {
        self.headers.push(block);
        self
    }

    /// Whether the body carries a fault.
    pub fn is_fault(&self) -> bool {
        matches!(self.body, Body::Fault(_))
    }

    /// The body payload, unless this is a fault or empty envelope.
    pub fn body_payload(&self) -> Option<&Element> {
        match &self.body {
            Body::Payload(e) => Some(e),
            _ => None,
        }
    }

    /// The fault, if the body carries one.
    pub fn as_fault(&self) -> Option<&Fault> {
        match &self.body {
            Body::Fault(f) => Some(f),
            _ => None,
        }
    }

    /// Checks every `mustUnderstand` header block against the set of
    /// understood header names.
    ///
    /// # Errors
    ///
    /// [`SoapError::MustUnderstand`] naming the first block the receiver
    /// does not understand.
    pub fn validate_must_understand(&self, understood: &[&str]) -> Result<(), SoapError> {
        for h in &self.headers {
            if h.must_understand && !understood.contains(&h.content.name.as_str()) {
                return Err(SoapError::MustUnderstand(h.content.name.to_string()));
            }
        }
        Ok(())
    }

    /// Renders the envelope as an XML element tree.
    pub fn to_element(&self) -> Element {
        let mut env = Element::with_ns("Envelope", SOAP_ENVELOPE_NS);
        env.prefix = Some("soap".into());
        env.declare_ns("soap", SOAP_ENVELOPE_NS);

        if !self.headers.is_empty() {
            let mut header = Element::with_ns("Header", SOAP_ENVELOPE_NS);
            header.prefix = Some("soap".into());
            for h in &self.headers {
                let mut c = h.content.clone();
                if h.must_understand {
                    c.set_attr("mustUnderstand", "true");
                }
                if let Some(role) = &h.role {
                    c.set_attr("role", role.clone());
                }
                header.push_child(c);
            }
            env.push_child(header);
        }

        let mut body = Element::with_ns("Body", SOAP_ENVELOPE_NS);
        body.prefix = Some("soap".into());
        match &self.body {
            Body::Payload(p) => {
                body.push_child(p.clone());
            }
            Body::Fault(f) => {
                let mut fe = f.to_element();
                fe.prefix = Some("soap".into());
                body.push_child(fe);
            }
            Body::Empty => {}
        }
        env.push_child(body);
        env
    }

    /// Serializes to wire text.
    pub fn to_xml_string(&self) -> String {
        self.to_element().to_xml()
    }

    /// Approximate size of the serialized envelope in bytes, used by the
    /// simulator's bandwidth model without re-serializing.
    pub fn wire_size(&self) -> usize {
        self.to_xml_string().len()
    }

    /// Parses an envelope from wire text.
    ///
    /// # Errors
    ///
    /// * [`SoapError::Xml`] for malformed XML.
    /// * [`SoapError::NotAnEnvelope`] when the root is not a SOAP envelope.
    /// * [`SoapError::MissingBody`] when no `Body` child exists.
    /// * [`SoapError::MalformedFault`] when a fault body is invalid.
    pub fn parse(text: &str) -> Result<Self, SoapError> {
        let root = parse(text)?;
        Self::from_element(&root)
    }

    /// Interprets an already-parsed element tree as an envelope.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Envelope::parse`], minus XML errors.
    pub fn from_element(root: &Element) -> Result<Self, SoapError> {
        if root.name != "Envelope" || root.ns.as_deref() != Some(SOAP_ENVELOPE_NS) {
            return Err(SoapError::NotAnEnvelope(root.qname().to_clark()));
        }
        let mut headers = Vec::new();
        if let Some(h) = root.child_ns(SOAP_ENVELOPE_NS, "Header") {
            for c in h.child_elements() {
                let must = c
                    .attr("mustUnderstand")
                    .map(|v| v == "true" || v == "1")
                    .unwrap_or(false);
                let role = c.attr("role").map(str::to_string);
                let mut content = c.clone();
                content
                    .attrs
                    .retain(|a| a.name != "mustUnderstand" && a.name != "role");
                headers.push(HeaderBlock {
                    content,
                    must_understand: must,
                    role,
                });
            }
        }
        let body_el = root
            .child_ns(SOAP_ENVELOPE_NS, "Body")
            .ok_or(SoapError::MissingBody)?;
        let body = match body_el.child_elements().next() {
            None => Body::Empty,
            Some(first)
                if first.name == "Fault" && first.ns.as_deref() == Some(SOAP_ENVELOPE_NS) =>
            {
                Body::Fault(Fault::from_element(first)?)
            }
            Some(first) => Body::Payload(first.clone()),
        };
        Ok(Envelope { headers, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultCode;

    fn payload() -> Element {
        let mut p = Element::new("StudentInformation");
        p.push_child(Element::with_text("StudentID", "u1"));
        p
    }

    #[test]
    fn request_round_trip() {
        let env = Envelope::request(payload());
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert_eq!(back.body_payload().unwrap().name, "StudentInformation");
        assert_eq!(
            back.body_payload()
                .unwrap()
                .child("StudentID")
                .unwrap()
                .text(),
            "u1"
        );
        assert!(!back.is_fault());
        assert!(back.as_fault().is_none());
    }

    #[test]
    fn fault_round_trip() {
        let env = Envelope::fault(Fault::new(FaultCode::Receiver, "no coordinator"));
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert!(back.is_fault());
        assert_eq!(back.as_fault().unwrap().code, FaultCode::Receiver);
        assert!(back.body_payload().is_none());
    }

    #[test]
    fn empty_body_round_trip() {
        let env = Envelope::empty();
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert!(back.body_payload().is_none());
        assert!(!back.is_fault());
    }

    #[test]
    fn headers_round_trip_with_must_understand() {
        let env = Envelope::request(payload())
            .with_header(HeaderBlock::new(Element::with_text("TraceId", "t-9")))
            .with_header(HeaderBlock::new(Element::with_text("Security", "tok")).required());
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert_eq!(back.headers.len(), 2);
        assert!(!back.headers[0].must_understand);
        assert!(back.headers[1].must_understand);
        assert_eq!(back.headers[1].content.text(), "tok");
    }

    #[test]
    fn header_roles_round_trip() {
        let env = Envelope::request(payload()).with_header(
            HeaderBlock::new(Element::with_text("HopTrace", "r1")).for_role(ROLE_NEXT),
        );
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert_eq!(back.headers[0].role.as_deref(), Some(ROLE_NEXT));
        // role attribute is processing metadata, not content
        assert_eq!(back.headers[0].content.attr("role"), None);
    }

    #[test]
    fn must_understand_validation() {
        let env = Envelope::request(payload())
            .with_header(HeaderBlock::new(Element::new("Security")).required());
        assert!(env.validate_must_understand(&["Security"]).is_ok());
        assert_eq!(
            env.validate_must_understand(&["Other"]),
            Err(SoapError::MustUnderstand("Security".into()))
        );
        // optional headers never trip validation
        let env2 =
            Envelope::request(payload()).with_header(HeaderBlock::new(Element::new("Trace")));
        assert!(env2.validate_must_understand(&[]).is_ok());
    }

    #[test]
    fn non_envelope_rejected() {
        assert!(matches!(
            Envelope::parse("<NotSoap/>"),
            Err(SoapError::NotAnEnvelope(_))
        ));
        // right local name, wrong namespace
        assert!(matches!(
            Envelope::parse("<Envelope xmlns=\"urn:other\"><Body/></Envelope>"),
            Err(SoapError::NotAnEnvelope(_))
        ));
    }

    #[test]
    fn missing_body_rejected() {
        let text = format!("<soap:Envelope xmlns:soap=\"{SOAP_ENVELOPE_NS}\"/>");
        assert_eq!(Envelope::parse(&text), Err(SoapError::MissingBody));
    }

    #[test]
    fn app_element_named_fault_is_payload_not_fault() {
        // A body element locally named Fault but outside the soap namespace
        // is application data.
        let env = Envelope::request(Element::with_text("Fault", "geological"));
        let back = Envelope::parse(&env.to_xml_string()).unwrap();
        assert!(!back.is_fault());
        assert_eq!(back.body_payload().unwrap().text(), "geological");
    }

    #[test]
    fn wire_size_tracks_serialization() {
        let env = Envelope::request(payload());
        assert_eq!(env.wire_size(), env.to_xml_string().len());
    }
}
