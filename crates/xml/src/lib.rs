//! # whisper-xml
//!
//! A small, dependency-free, namespace-aware XML library used by every layer
//! of the Whisper stack (SOAP envelopes, WSDL/WSDL-S descriptions, OWL
//! ontology documents and JXTA-style advertisements).
//!
//! The library provides:
//!
//! * an owned document model ([`Document`], [`Element`], [`Node`]),
//! * a recursive-descent parser ([`parse`], [`parse_document`]) for the
//!   well-formed subset of XML 1.0 that the Whisper protocols emit
//!   (elements, attributes, namespaces, character data, CDATA, comments,
//!   processing instructions and the five predefined entities plus numeric
//!   character references),
//! * a serializer ([`Element::to_xml`], [`Element::to_pretty_xml`]) that
//!   round-trips everything the parser accepts,
//! * ergonomic construction and navigation helpers.
//!
//! # Examples
//!
//! ```
//! use whisper_xml::{Element, parse};
//!
//! # fn main() -> Result<(), whisper_xml::XmlError> {
//! let mut root = Element::new("definitions");
//! root.set_attr("name", "StudentManagement");
//! root.push_child(Element::with_text("documentation", "student services"));
//!
//! let text = root.to_xml();
//! let back = parse(&text)?;
//! assert_eq!(back.attr("name"), Some("StudentManagement"));
//! assert_eq!(
//!     back.child("documentation").map(|d| d.text()),
//!     Some("student services".to_string())
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod document;
mod error;
mod escape;
mod intern;
mod name;
mod parser;
mod writer;

pub use document::{Attribute, Document, Element, Node};
pub use error::XmlError;
pub use escape::{escape_attr, escape_text, unescape};
pub use intern::{intern, IStr};
pub use name::QName;
pub use parser::{parse, parse_document};

/// The XML namespace URI reserved for the `xml:` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// The XML namespace URI reserved for the `xmlns:` prefix.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";
