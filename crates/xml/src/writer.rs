//! Serialization of the document model back to XML text.

use crate::document::{Element, Node};
use crate::escape::{escape_attr, escape_text};
use std::fmt::Write as _;

impl Element {
    /// Serializes this element (and its subtree) to compact XML.
    ///
    /// The output parses back to an equal tree (modulo namespace-resolution
    /// fields, which the parser recomputes from the declarations that are
    /// stored as attributes).
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(self.subtree_size() * 16);
        write_element(&mut out, self, None);
        out
    }

    /// Serializes with two-space indentation for human consumption.
    ///
    /// Elements whose content is pure text are kept on one line; mixed
    /// content is emitted compactly to avoid changing its meaning.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::with_capacity(self.subtree_size() * 20);
        write_element(&mut out, self, Some(0));
        out.push('\n');
        out
    }
}

fn write_open_tag(out: &mut String, e: &Element, close: bool) {
    out.push('<');
    out.push_str(&e.raw_name());
    for a in &e.attrs {
        let _ = write!(out, " {}=\"{}\"", a.raw_name(), escape_attr(&a.value));
    }
    // If the element carries a namespace but no prefix and no explicit
    // default-namespace declaration among its attributes, emit one so the
    // serialized form resolves identically.
    if e.prefix.is_none() {
        if let Some(ns) = &e.ns {
            let has_default_decl = e
                .attrs
                .iter()
                .any(|a| a.prefix.is_none() && a.name == "xmlns");
            if !has_default_decl {
                let _ = write!(out, " xmlns=\"{}\"", escape_attr(ns));
            }
        }
    }
    out.push_str(if close { "/>" } else { ">" });
}

fn write_element(out: &mut String, e: &Element, indent: Option<usize>) {
    if let Some(level) = indent {
        for _ in 0..level {
            out.push_str("  ");
        }
    }
    if e.children.is_empty() {
        write_open_tag(out, e, true);
        return;
    }
    write_open_tag(out, e, false);

    let text_only = e
        .children
        .iter()
        .all(|n| matches!(n, Node::Text(_) | Node::CData(_)));
    let child_indent = match indent {
        Some(level) if !text_only => Some(level + 1),
        _ => None,
    };

    for n in &e.children {
        if child_indent.is_some() {
            out.push('\n');
        }
        match n {
            Node::Element(c) => write_element(out, c, child_indent),
            Node::Text(t) => {
                indent_if(out, child_indent);
                out.push_str(&escape_text(t));
            }
            Node::CData(t) => {
                indent_if(out, child_indent);
                out.push_str("<![CDATA[");
                out.push_str(t);
                out.push_str("]]>");
            }
            Node::Comment(c) => {
                indent_if(out, child_indent);
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            Node::ProcessingInstruction { target, data } => {
                indent_if(out, child_indent);
                out.push_str("<?");
                out.push_str(target);
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
        }
    }
    if let Some(level) = indent {
        if !text_only {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    }
    out.push_str("</");
    out.push_str(&e.raw_name());
    out.push('>');
}

fn indent_if(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, Element};

    fn round_trip(src: &str) {
        let parsed = parse(src).expect("first parse");
        let printed = parsed.to_xml();
        let reparsed = parse(&printed).expect("reparse");
        assert_eq!(parsed, reparsed, "round trip changed tree for {src:?}");
    }

    #[test]
    fn round_trips_basic_documents() {
        round_trip("<a/>");
        round_trip(r#"<a k="v &amp; w"><b>text &lt; here</b><c/></a>"#);
        round_trip(r#"<root xmlns="urn:d" xmlns:p="urn:p"><p:x p:a="1"/></root>"#);
        round_trip("<a><![CDATA[<keep> &amp;]]></a>");
        round_trip("<a><!-- c --><?pi data?></a>");
        round_trip("<a> mixed <b/> content </a>");
    }

    #[test]
    fn synthesized_namespace_gets_declared() {
        let e = Element::with_ns("adv", "urn:jxta");
        let printed = e.to_xml();
        assert!(printed.contains("xmlns=\"urn:jxta\""), "{printed}");
        let back = parse(&printed).unwrap();
        assert_eq!(back.ns.as_deref(), Some("urn:jxta"));
    }

    #[test]
    fn explicit_declaration_not_duplicated() {
        let mut e = Element::with_ns("adv", "urn:jxta");
        e.declare_ns("", "urn:jxta");
        let printed = e.to_xml();
        assert_eq!(printed.matches("xmlns=").count(), 1, "{printed}");
    }

    #[test]
    fn pretty_print_is_reparseable_for_element_content() {
        let src = r#"<a><b><c>deep</c></b><d/></a>"#;
        let parsed = parse(src).unwrap();
        let pretty = parsed.to_pretty_xml();
        assert!(pretty.contains("\n  "));
        let reparsed = parse(&pretty).unwrap();
        // same elements and text, ignoring the inserted whitespace nodes
        assert_eq!(
            reparsed.descendant("c").map(|c| c.text()),
            Some("deep".into())
        );
    }

    #[test]
    fn pretty_print_keeps_text_only_content_inline() {
        let parsed = parse("<a><b>hello</b></a>").unwrap();
        let pretty = parsed.to_pretty_xml();
        assert!(pretty.contains("<b>hello</b>"), "{pretty}");
    }

    #[test]
    fn attr_special_chars_survive() {
        let mut e = Element::new("e");
        e.set_attr("k", "a<b>\"c\"&d\ne");
        let back = parse(&e.to_xml()).unwrap();
        assert_eq!(back.attr("k"), Some("a<b>\"c\"&d\ne"));
    }

    #[test]
    fn display_matches_to_xml() {
        let e = Element::with_text("x", "y");
        assert_eq!(format!("{e}"), e.to_xml());
    }
}
