//! Escaping and entity handling for XML character data and attributes.

/// Escapes character data for use as element text.
///
/// Replaces `&`, `<` and `>` with the corresponding predefined entities.
/// `>` is escaped as well (although only `]]>` strictly requires it) so the
/// output is safe in every context.
///
/// # Examples
///
/// ```
/// assert_eq!(whisper_xml::escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted attribute value.
///
/// In addition to the text escapes, `"` becomes `&quot;` and newlines/tabs
/// are escaped numerically so they survive attribute-value normalization.
///
/// # Examples
///
/// ```
/// assert_eq!(whisper_xml::escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
/// ```
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves a single entity body (the part between `&` and `;`).
///
/// Supports the five predefined entities and decimal/hexadecimal character
/// references. Returns `None` when the entity is unknown or malformed.
pub(crate) fn resolve_entity(body: &str) -> Option<char> {
    match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = body.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Replaces entity references in `s` with the characters they denote.
///
/// Unknown entities are left verbatim (including the `&`/`;`), which makes
/// the function total; the parser performs strict resolution itself.
///
/// # Examples
///
/// ```
/// assert_eq!(whisper_xml::unescape("a &lt; b &amp; &#65;"), "a < b & A");
/// ```
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        match after.find(';') {
            Some(semi) => {
                let body = &after[..semi];
                match resolve_entity(body) {
                    Some(c) => {
                        out.push(c);
                        rest = &after[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = after;
                    }
                }
            }
            None => {
                out.push('&');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escape_round_trip() {
        let original = "x < y && z > \"w\"";
        assert_eq!(unescape(&escape_text(original)), original);
    }

    #[test]
    fn attr_escape_round_trip() {
        let original = "line1\nline2\t\"quoted\" & <tag>";
        assert_eq!(unescape(&escape_attr(original)), original);
    }

    #[test]
    fn numeric_entities_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
    }

    #[test]
    fn unknown_entity_left_verbatim() {
        assert_eq!(unescape("&nbsp; &x"), "&nbsp; &x");
    }

    #[test]
    fn resolve_rejects_surrogate_code_points() {
        assert_eq!(resolve_entity("#xD800"), None);
        assert_eq!(resolve_entity("#55296"), None);
    }

    #[test]
    fn resolve_handles_unicode() {
        assert_eq!(resolve_entity("#x1F600"), char::from_u32(0x1F600));
    }

    #[test]
    fn empty_input_is_identity() {
        assert_eq!(escape_text(""), "");
        assert_eq!(escape_attr(""), "");
        assert_eq!(unescape(""), "");
    }
}
