//! Qualified names (`prefix:local` pairs resolved against a namespace URI).

use crate::intern::IStr;
use std::fmt;

/// A qualified XML name: an optional namespace URI plus a local name.
///
/// `QName` is the unit of comparison used by the semantic layers: two
/// elements are "the same" when their namespace URI and local name agree,
/// independent of the prefix a particular document happened to choose.
///
/// Both parts are interned ([`IStr`]): the handful of distinct names a
/// protocol uses are each allocated once per thread, and cloning a `QName`
/// is two reference-count bumps.
///
/// # Examples
///
/// ```
/// use whisper_xml::QName;
///
/// let a = QName::with_ns("http://example.org/uni", "StudentInformation");
/// let b = QName::with_ns("http://example.org/uni", "StudentInformation");
/// assert_eq!(a, b);
/// assert_eq!(a.local(), "StudentInformation");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QName {
    ns: Option<IStr>,
    local: IStr,
}

impl QName {
    /// Creates a name in no namespace.
    pub fn new(local: impl Into<IStr>) -> Self {
        QName {
            ns: None,
            local: local.into(),
        }
    }

    /// Creates a name in the namespace `ns`.
    pub fn with_ns(ns: impl Into<IStr>, local: impl Into<IStr>) -> Self {
        QName {
            ns: Some(ns.into()),
            local: local.into(),
        }
    }

    /// The namespace URI, if any.
    pub fn ns(&self) -> Option<&str> {
        self.ns.as_deref()
    }

    /// The interned namespace URI, for clone-free propagation.
    pub fn ns_istr(&self) -> Option<&IStr> {
        self.ns.as_ref()
    }

    /// The interned local part, for clone-free propagation.
    pub fn local_istr(&self) -> &IStr {
        &self.local
    }

    /// The local part of the name.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// Renders the name in Clark notation, `{uri}local`, commonly used for
    /// unambiguous textual representation of qualified names.
    ///
    /// # Examples
    ///
    /// ```
    /// use whisper_xml::QName;
    /// let q = QName::with_ns("urn:x", "op");
    /// assert_eq!(q.to_clark(), "{urn:x}op");
    /// assert_eq!(QName::new("op").to_clark(), "op");
    /// ```
    pub fn to_clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{ns}}}{}", self.local),
            None => self.local.to_string(),
        }
    }

    /// Parses Clark notation produced by [`QName::to_clark`].
    ///
    /// Returns `None` when the input starts with `{` but has no closing `}`.
    pub fn from_clark(s: &str) -> Option<Self> {
        if let Some(rest) = s.strip_prefix('{') {
            let end = rest.find('}')?;
            Some(QName::with_ns(&rest[..end], &rest[end + 1..]))
        } else {
            Some(QName::new(s))
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_clark())
    }
}

impl From<&str> for QName {
    /// Converts from Clark notation, treating a malformed `{...` prefix as a
    /// plain local name.
    fn from(s: &str) -> Self {
        QName::from_clark(s).unwrap_or_else(|| QName::new(s))
    }
}

/// Splits a raw lexical name into `(prefix, local)`.
///
/// `"a:b"` becomes `(Some("a"), "b")`; `"b"` becomes `(None, "b")`.
pub(crate) fn split_prefixed(raw: &str) -> (Option<&str>, &str) {
    match raw.split_once(':') {
        Some((p, l)) => (Some(p), l),
        None => (None, raw),
    }
}

/// Returns true when `name` is a lexically valid XML name for our subset:
/// non-empty, starts with a letter or `_`, continues with letters, digits,
/// `.`, `-`, `_`. (Colons are handled by the prefix splitter before this
/// check.)
pub(crate) fn is_valid_ncname(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '.' | '-' | '_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clark_round_trip() {
        for q in [
            QName::new("plain"),
            QName::with_ns("http://x", "local"),
            QName::with_ns("", "emptyns"),
        ] {
            assert_eq!(QName::from_clark(&q.to_clark()), Some(q));
        }
    }

    #[test]
    fn from_clark_rejects_unclosed_brace() {
        assert_eq!(QName::from_clark("{urn:x-local"), None);
    }

    #[test]
    fn equality_ignores_nothing_but_prefix() {
        // Prefixes are not part of QName at all: two names from documents
        // using different prefixes for the same URI compare equal.
        let a = QName::with_ns("urn:u", "n");
        let b = QName::with_ns("urn:u", "n");
        let c = QName::with_ns("urn:v", "n");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, QName::new("n"));
    }

    #[test]
    fn split_prefixed_works() {
        assert_eq!(split_prefixed("soap:Envelope"), (Some("soap"), "Envelope"));
        assert_eq!(split_prefixed("Envelope"), (None, "Envelope"));
    }

    #[test]
    fn ncname_validation() {
        assert!(is_valid_ncname("Envelope"));
        assert!(is_valid_ncname("_x-1.y"));
        assert!(!is_valid_ncname(""));
        assert!(!is_valid_ncname("1abc"));
        assert!(!is_valid_ncname("a b"));
        assert!(!is_valid_ncname("-a"));
    }

    #[test]
    fn display_uses_clark() {
        assert_eq!(QName::with_ns("u", "l").to_string(), "{u}l");
    }
}
