//! The owned XML document model.

use crate::intern::IStr;
use crate::name::QName;
use std::fmt;

/// A full XML document: the optional XML declaration plus the root element.
///
/// Most of the Whisper stack works directly with [`Element`]; `Document` is
/// used when declaration round-tripping matters (e.g. persisted ontologies).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// `version` from the XML declaration, if one was present.
    pub version: Option<String>,
    /// `encoding` from the XML declaration, if one was present.
    pub encoding: Option<String>,
    /// The document element.
    pub root: Element,
}

impl Document {
    /// Creates a document with a standard `1.0`/`UTF-8` declaration.
    pub fn new(root: Element) -> Self {
        Document {
            version: Some("1.0".to_string()),
            encoding: Some("UTF-8".to_string()),
            root,
        }
    }

    /// Serializes the document, including its declaration when present.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        if let Some(v) = &self.version {
            out.push_str("<?xml version=\"");
            out.push_str(v);
            out.push('"');
            if let Some(e) = &self.encoding {
                out.push_str(" encoding=\"");
                out.push_str(e);
                out.push('"');
            }
            out.push_str("?>\n");
        }
        out.push_str(&self.root.to_xml());
        out
    }
}

/// A single attribute on an element.
///
/// Namespace declarations (`xmlns`, `xmlns:p`) are stored as ordinary
/// attributes so documents round-trip exactly; the parser additionally uses
/// them to resolve the `ns` field of elements and attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Prefix the attribute was written with, if any (interned).
    pub prefix: Option<IStr>,
    /// Local attribute name (interned).
    pub name: IStr,
    /// Resolved namespace URI (interned). Per XML-Namespaces, unprefixed
    /// attributes are in *no* namespace regardless of a default namespace
    /// declaration.
    pub ns: Option<IStr>,
    /// The attribute value (entity references already resolved).
    pub value: String,
}

impl Attribute {
    /// Creates an unprefixed attribute in no namespace.
    pub fn new(name: impl Into<IStr>, value: impl Into<String>) -> Self {
        Attribute {
            prefix: None,
            name: name.into(),
            ns: None,
            value: value.into(),
        }
    }

    /// Whether this attribute is a namespace declaration.
    pub fn is_ns_decl(&self) -> bool {
        self.name == "xmlns" && self.prefix.is_none() || self.prefix.as_deref() == Some("xmlns")
    }

    /// The lexical (possibly prefixed) name as written in a document.
    pub fn raw_name(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.name),
            None => self.name.to_string(),
        }
    }
}

/// A node in element content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entity references already resolved).
    Text(String),
    /// A CDATA section (kept distinct so serialization round-trips).
    CData(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// The PI target (the word right after `<?`).
        target: String,
        /// Everything between the target and `?>`.
        data: String,
    },
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the textual content of text/CDATA nodes.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a name, attributes and ordered child nodes.
///
/// # Examples
///
/// ```
/// use whisper_xml::Element;
///
/// let mut op = Element::new("operation");
/// op.set_attr("name", "StudentInformation");
/// op.push_child(Element::with_text("input", "sm:StudentID"));
/// assert_eq!(op.attr("name"), Some("StudentInformation"));
/// assert_eq!(op.child("input").map(|c| c.text()), Some("sm:StudentID".into()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Prefix the element was written with, if any (interned).
    pub prefix: Option<IStr>,
    /// Local element name (interned).
    pub name: IStr,
    /// Resolved namespace URI, interned (default namespace applies to
    /// elements).
    pub ns: Option<IStr>,
    /// Attributes in document order, including namespace declarations.
    pub attrs: Vec<Attribute>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with the given local name, no namespace.
    pub fn new(name: impl Into<IStr>) -> Self {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Creates an element in a namespace (no prefix; serialized with a
    /// default-namespace declaration unless one is already in scope).
    pub fn with_ns(name: impl Into<IStr>, ns: impl Into<IStr>) -> Self {
        Element {
            name: name.into(),
            ns: Some(ns.into()),
            ..Element::default()
        }
    }

    /// Creates `name` containing a single text node.
    pub fn with_text(name: impl Into<IStr>, text: impl Into<String>) -> Self {
        let mut e = Element::new(name);
        e.push_text(text);
        e
    }

    /// The resolved qualified name of this element (two reference-count
    /// bumps, no string copies).
    pub fn qname(&self) -> QName {
        match &self.ns {
            Some(ns) => QName::with_ns(ns.clone(), self.name.clone()),
            None => QName::new(self.name.clone()),
        }
    }

    /// The lexical (possibly prefixed) tag name as written in a document.
    pub fn raw_name(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.name),
            None => self.name.to_string(),
        }
    }

    /// Appends a child element and returns `&mut self` for chaining.
    pub fn push_child(&mut self, child: Element) -> &mut Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Appends a text node and returns `&mut self` for chaining.
    pub fn push_text(&mut self, text: impl Into<String>) -> &mut Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets (or replaces) an unprefixed attribute.
    pub fn set_attr(&mut self, name: impl Into<IStr>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        if let Some(a) = self
            .attrs
            .iter_mut()
            .find(|a| a.name == name && a.prefix.is_none())
        {
            a.value = value;
        } else {
            self.attrs.push(Attribute::new(name, value));
        }
        self
    }

    /// Declares a namespace prefix on this element (`prefix` empty for the
    /// default namespace).
    pub fn declare_ns(&mut self, prefix: &str, uri: impl Into<String>) -> &mut Self {
        let attr = if prefix.is_empty() {
            Attribute::new("xmlns", uri)
        } else {
            Attribute {
                prefix: Some("xmlns".into()),
                name: prefix.into(),
                ns: Some(crate::XMLNS_NS.into()),
                value: uri.into(),
            }
        };
        self.attrs.push(attr);
        self
    }

    /// Looks up the value of an unprefixed attribute by local name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name && !a.is_ns_decl())
            .map(|a| a.value.as_str())
    }

    /// Looks up an attribute by namespace URI and local name.
    pub fn attr_ns(&self, ns: &str, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.ns.as_deref() == Some(ns) && a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Iterates over child elements in document order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// The first child element with the given local name (any namespace).
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// The first child element with the given namespace URI and local name.
    pub fn child_ns(&self, ns: &str, name: &str) -> Option<&Element> {
        self.child_elements()
            .find(|e| e.ns.as_deref() == Some(ns) && e.name == name)
    }

    /// All child elements with the given local name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated text of all direct text and CDATA children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Some(t) = n.as_text() {
                out.push_str(t);
            }
        }
        out
    }

    /// Depth-first search for the first descendant (not including `self`)
    /// with the given local name.
    pub fn descendant(&self, name: &str) -> Option<&Element> {
        for c in self.child_elements() {
            if c.name == name {
                return Some(c);
            }
            if let Some(found) = c.descendant(name) {
                return Some(found);
            }
        }
        None
    }

    /// Depth-first collection of all descendants with the given local name.
    pub fn descendants_named<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        for c in self.child_elements() {
            if c.name == name {
                out.push(c);
            }
            c.descendants_named(name, out);
        }
    }

    /// Number of nodes in the subtree rooted at this element (including it).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|n| match n {
                Node::Element(e) => e.subtree_size(),
                _ => 1,
            })
            .sum::<usize>()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        let mut root = Element::new("root");
        root.set_attr("a", "1");
        root.push_child(Element::with_text("x", "one"));
        root.push_child(Element::with_text("y", "two"));
        root.push_child(Element::with_text("x", "three"));
        root
    }

    #[test]
    fn child_navigation() {
        let root = sample();
        assert_eq!(root.child("x").map(|e| e.text()), Some("one".into()));
        assert_eq!(root.child("y").map(|e| e.text()), Some("two".into()));
        assert!(root.child("z").is_none());
        let xs: Vec<_> = root.children_named("x").map(|e| e.text()).collect();
        assert_eq!(xs, ["one", "three"]);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("e");
        e.set_attr("k", "v1");
        e.set_attr("k", "v2");
        assert_eq!(e.attr("k"), Some("v2"));
        assert_eq!(e.attrs.len(), 1);
    }

    #[test]
    fn ns_declarations_are_not_attrs() {
        let mut e = Element::new("e");
        e.declare_ns("", "urn:default");
        e.declare_ns("p", "urn:p");
        assert_eq!(e.attr("xmlns"), None);
        assert_eq!(e.attrs.len(), 2);
        assert!(e.attrs.iter().all(|a| a.is_ns_decl()));
    }

    #[test]
    fn qname_resolution() {
        let e = Element::with_ns("op", "urn:svc");
        assert_eq!(e.qname(), QName::with_ns("urn:svc", "op"));
        assert_eq!(Element::new("op").qname(), QName::new("op"));
    }

    #[test]
    fn descendant_search_is_depth_first() {
        let mut root = Element::new("r");
        let mut mid = Element::new("m");
        mid.push_child(Element::with_text("t", "deep"));
        root.push_child(mid);
        root.push_child(Element::with_text("t", "shallow"));
        // depth-first: the nested "t" under the first child wins
        assert_eq!(root.descendant("t").map(|e| e.text()), Some("deep".into()));
        let mut all = Vec::new();
        root.descendants_named("t", &mut all);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn text_concatenates_cdata_and_text() {
        let mut e = Element::new("e");
        e.children.push(Node::Text("a".into()));
        e.children.push(Node::CData("b".into()));
        e.children.push(Node::Comment("ignored".into()));
        assert_eq!(e.text(), "ab");
    }

    #[test]
    fn subtree_size_counts_all_nodes() {
        let root = sample();
        // root + 3 children + 3 text nodes
        assert_eq!(root.subtree_size(), 7);
    }
}
