//! Interned strings for XML names.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Interner entries kept per thread; documents with more distinct names
/// than this fall back to plain (un-shared) allocations, bounding the
/// interner's memory no matter what a peer sends.
const INTERNER_CAP: usize = 4096;

thread_local! {
    static INTERNER: std::cell::RefCell<HashSet<Arc<str>>> =
        std::cell::RefCell::new(HashSet::new());
}

/// An interned, immutable string backed by `Arc<str>`.
///
/// XML *names* — element and attribute local names, prefixes and namespace
/// URIs — are drawn from a tiny per-protocol vocabulary but repeated on
/// every node of every message. `IStr` collapses each distinct name to one
/// shared allocation per thread: parsing the thousandth `<StudentID>` costs
/// a hash lookup and a reference-count bump instead of a fresh `String`.
///
/// Equality, ordering and hashing are by string content (equality takes a
/// pointer fast path first), so values interned on different threads —
/// actors migrate across runtime threads — behave exactly like the
/// `String`s they replace. The backing `Arc<str>` keeps `IStr` both `Send`
/// and `Sync`.
///
/// # Examples
///
/// ```
/// use whisper_xml::IStr;
///
/// let a = IStr::from("Envelope");
/// let b = IStr::from("Envelope");
/// assert_eq!(a, b);
/// assert_eq!(a, "Envelope");
/// assert_eq!(a.as_str(), "Envelope");
/// ```
#[derive(Clone)]
pub struct IStr(Arc<str>);

/// Interns `s`, returning this thread's shared copy.
///
/// The per-thread table is bounded ([`IStr`] docs); past the cap the string
/// is still returned, just without sharing.
pub fn intern(s: &str) -> IStr {
    INTERNER.with(|t| {
        let mut set = t.borrow_mut();
        if let Some(a) = set.get(s) {
            IStr(Arc::clone(a))
        } else {
            let a: Arc<str> = Arc::from(s);
            if set.len() < INTERNER_CAP {
                set.insert(Arc::clone(&a));
            }
            IStr(a)
        }
    })
}

impl IStr {
    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Default for IStr {
    fn default() -> Self {
        intern("")
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        // same-thread interned names share the allocation
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl Hash for IStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> Self {
        intern(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        intern(&s)
    }
}

impl From<&IStr> for IStr {
    fn from(s: &IStr) -> Self {
        s.clone()
    }
}

impl From<IStr> for String {
    fn from(s: IStr) -> Self {
        s.as_str().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_content_shares_the_allocation() {
        let a = intern("StudentInformation");
        let b = intern("StudentInformation");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn compares_like_strings() {
        let a = IStr::from("abc");
        assert_eq!(a, "abc");
        assert_eq!("abc", a);
        assert_eq!(a, "abc".to_string());
        assert_ne!(a, "abd");
        let (lo, hi) = (IStr::from("a"), IStr::from("b"));
        assert!(lo < hi);
        assert_eq!(String::from(a.clone()), "abc");
        assert_eq!(a.to_string(), "abc");
    }

    #[test]
    fn hashes_by_content() {
        use std::collections::HashMap;
        let mut m: HashMap<IStr, u32> = HashMap::new();
        m.insert(IStr::from("k"), 1);
        assert_eq!(m.get(&IStr::from("k")), Some(&1));
    }

    #[test]
    fn crossing_threads_preserves_equality() {
        let here = intern("Envelope");
        let there = std::thread::spawn(|| intern("Envelope")).join().unwrap();
        // different per-thread allocations, equal content
        assert!(!Arc::ptr_eq(&here.0, &there.0));
        assert_eq!(here, there);
        let mut set = std::collections::HashSet::new();
        set.insert(here);
        assert!(set.contains(&there));
    }

    #[test]
    fn interner_is_bounded() {
        // past the cap, strings still work, just without sharing
        for i in 0..INTERNER_CAP + 10 {
            let s = intern(&format!("gen{i}"));
            assert_eq!(s.as_str(), format!("gen{i}"));
        }
        let a = intern("definitely-past-any-existing-entries-xyz");
        assert_eq!(a, "definitely-past-any-existing-entries-xyz");
    }
}
