//! Error type for XML parsing.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an XML document.
///
/// Carries the byte offset at which the problem was detected together with a
/// classification of what went wrong, so callers can produce useful
/// diagnostics for malformed SOAP messages or advertisements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: ErrorKind,
    /// Byte offset into the input at which the error was detected.
    offset: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ErrorKind {
    /// The input ended before the document was complete.
    UnexpectedEof,
    /// A character that is not allowed at this position.
    UnexpectedChar(char),
    /// An end tag did not match the open element.
    MismatchedTag { expected: String, found: String },
    /// An entity reference could not be resolved.
    BadEntity(String),
    /// An element or attribute name is empty or contains invalid characters.
    BadName(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// Trailing non-whitespace content after the document element.
    TrailingContent,
    /// The document contains no root element.
    NoRootElement,
    /// A namespace prefix was used without being declared.
    UndeclaredPrefix(String),
    /// Malformed XML declaration, comment, CDATA or processing instruction.
    BadMarkup(&'static str),
}

impl XmlError {
    pub(crate) fn new(kind: ErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }

    /// Byte offset into the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ErrorKind::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched end tag: expected </{expected}>, found </{found}>"
                )
            }
            ErrorKind::BadEntity(e) => write!(f, "unknown or malformed entity reference &{e};"),
            ErrorKind::BadName(n) => write!(f, "invalid XML name {n:?}"),
            ErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            ErrorKind::TrailingContent => write!(f, "content after document element"),
            ErrorKind::NoRootElement => write!(f, "document has no root element"),
            ErrorKind::UndeclaredPrefix(p) => write!(f, "undeclared namespace prefix {p:?}"),
            ErrorKind::BadMarkup(what) => write!(f, "malformed {what}"),
        }?;
        write!(f, " at byte {}", self.offset)
    }
}

impl Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_kind() {
        let e = XmlError::new(ErrorKind::UnexpectedEof, 42);
        let s = e.to_string();
        assert!(s.contains("unexpected end of input"));
        assert!(s.contains("42"));
        assert_eq!(e.offset(), 42);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XmlError>();
    }

    #[test]
    fn mismatched_tag_message_names_both_tags() {
        let e = XmlError::new(
            ErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            7,
        );
        let s = e.to_string();
        assert!(s.contains("</a>"), "{s}");
        assert!(s.contains("</b>"), "{s}");
    }
}
