//! Recursive-descent parser for the supported XML subset.

use crate::document::{Attribute, Document, Element, Node};
use crate::error::{ErrorKind, XmlError};
use crate::escape::resolve_entity;
use crate::intern::intern;
use crate::name::{is_valid_ncname, split_prefixed};
use std::collections::HashMap;

/// Parses a document and returns its root element.
///
/// This is the common entry point for protocol payloads where the XML
/// declaration is irrelevant.
///
/// # Errors
///
/// Returns [`XmlError`] when the input is not well-formed per the supported
/// subset (see the crate docs), including undeclared namespace prefixes.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_document(input).map(|d| d.root)
}

/// Parses a full document, keeping the XML declaration.
///
/// # Errors
///
/// Returns [`XmlError`] when the input is not well-formed per the supported
/// subset (see the crate docs), including undeclared namespace prefixes.
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut p = Parser::new(input);
    p.skip_bom();
    let (version, encoding) = p.parse_decl()?;
    p.skip_misc()?;
    if p.eof() {
        return Err(p.err(ErrorKind::NoRootElement));
    }
    let scope = NsScope::root();
    let root = p.parse_element(&scope)?;
    p.skip_misc()?;
    if !p.eof() {
        return Err(p.err(ErrorKind::TrailingContent));
    }
    Ok(Document {
        version,
        encoding,
        root,
    })
}

/// A lexical scope of namespace declarations, chained to its parent.
struct NsScope<'a> {
    parent: Option<&'a NsScope<'a>>,
    /// prefix -> uri; "" is the default namespace. An empty-string URI
    /// un-declares the binding (xmlns="" semantics).
    bindings: HashMap<String, String>,
}

impl<'a> NsScope<'a> {
    fn root() -> NsScope<'static> {
        let mut bindings = HashMap::new();
        bindings.insert("xml".to_string(), crate::XML_NS.to_string());
        bindings.insert("xmlns".to_string(), crate::XMLNS_NS.to_string());
        NsScope {
            parent: None,
            bindings,
        }
    }

    fn child(&'a self) -> NsScope<'a> {
        NsScope {
            parent: Some(self),
            bindings: HashMap::new(),
        }
    }

    fn resolve(&self, prefix: &str) -> Option<&str> {
        if let Some(uri) = self.bindings.get(prefix) {
            if uri.is_empty() {
                return None;
            }
            return Some(uri);
        }
        self.parent.and_then(|p| p.resolve(prefix))
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn err(&self, kind: ErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c))),
                None => Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_bom(&mut self) {
        self.eat("\u{feff}");
    }

    fn parse_decl(&mut self) -> Result<(Option<String>, Option<String>), XmlError> {
        self.skip_ws();
        if !self.rest().starts_with("<?xml") {
            return Ok((None, None));
        }
        let end = self
            .rest()
            .find("?>")
            .ok_or_else(|| self.err(ErrorKind::BadMarkup("XML declaration")))?;
        let decl = &self.rest()[5..end];
        let version = extract_pseudo_attr(decl, "version");
        let encoding = extract_pseudo_attr(decl, "encoding");
        self.pos += end + 2;
        if version.is_none() {
            return Err(self.err(ErrorKind::BadMarkup("XML declaration")));
        }
        Ok((version, encoding))
    }

    /// Skips whitespace, comments and PIs between markup (document prolog /
    /// epilog). DOCTYPE declarations are skipped without validation.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                self.parse_comment()?;
            } else if self.rest().starts_with("<?") {
                self.parse_pi()?;
            } else if self.rest().starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (internal subsets use brackets).
                let mut depth = 0usize;
                loop {
                    match self.bump() {
                        Some('<') => depth += 1,
                        Some('>') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return Err(self.err(ErrorKind::UnexpectedEof)),
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_comment(&mut self) -> Result<Node, XmlError> {
        self.expect("<!--")?;
        let end = self
            .rest()
            .find("-->")
            .ok_or_else(|| self.err(ErrorKind::BadMarkup("comment")))?;
        let body = self.rest()[..end].to_string();
        self.pos += end + 3;
        Ok(Node::Comment(body))
    }

    fn parse_pi(&mut self) -> Result<Node, XmlError> {
        self.expect("<?")?;
        let end = self
            .rest()
            .find("?>")
            .ok_or_else(|| self.err(ErrorKind::BadMarkup("processing instruction")))?;
        let body = &self.rest()[..end];
        let (target, data) = match body.find(char::is_whitespace) {
            Some(i) => (&body[..i], body[i..].trim_start()),
            None => (body, ""),
        };
        let node = Node::ProcessingInstruction {
            target: target.to_string(),
            data: data.to_string(),
        };
        self.pos += end + 2;
        Ok(node)
    }

    fn parse_cdata(&mut self) -> Result<Node, XmlError> {
        self.expect("<![CDATA[")?;
        let end = self
            .rest()
            .find("]]>")
            .ok_or_else(|| self.err(ErrorKind::BadMarkup("CDATA section")))?;
        let body = self.rest()[..end].to_string();
        self.pos += end + 3;
        Ok(Node::CData(body))
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '.' | '-' | '_' | ':'))
        {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        if raw.is_empty() {
            return Err(self.err(ErrorKind::BadName(String::new())));
        }
        let (prefix, local) = split_prefixed(raw);
        if let Some(p) = prefix {
            if !is_valid_ncname(p) || !is_valid_ncname(local) {
                return Err(self.err(ErrorKind::BadName(raw.to_string())));
            }
        } else if !is_valid_ncname(local) {
            return Err(self.err(ErrorKind::BadName(raw.to_string())));
        }
        Ok(raw)
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c))),
            None => return Err(self.err(ErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            // copy whole delimiter-free runs at once instead of per-char
            let rest = self.rest();
            let stop = rest.find([quote, '&', '<']).unwrap_or(rest.len());
            out.push_str(&rest[..stop]);
            self.pos += stop;
            match self.bump() {
                Some('&') => out.push(self.parse_entity()?),
                Some('<') => return Err(self.err(ErrorKind::UnexpectedChar('<'))),
                Some(_) => break, // the closing quote
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
        Ok(out)
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        let start = self.pos;
        let semi = self
            .rest()
            .find(';')
            .ok_or_else(|| self.err(ErrorKind::BadEntity(String::new())))?;
        let body = &self.rest()[..semi];
        if body.len() > 12 {
            // entity bodies are tiny; a missing ';' shouldn't scan the file
            return Err(XmlError::new(
                ErrorKind::BadEntity(body[..12].to_string()),
                start,
            ));
        }
        let c = resolve_entity(body)
            .ok_or_else(|| XmlError::new(ErrorKind::BadEntity(body.to_string()), start))?;
        self.pos += semi + 1;
        Ok(c)
    }

    fn parse_element(&mut self, parent_scope: &NsScope<'_>) -> Result<Element, XmlError> {
        self.expect("<")?;
        let raw = self.parse_name()?;
        let (eprefix, elocal) = split_prefixed(raw);

        let mut attrs: Vec<Attribute> = Vec::new();
        let mut scope = parent_scope.child();
        let self_closing;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    self_closing = false;
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    self_closing = true;
                    break;
                }
                Some(_) => {
                    let araw = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    let (aprefix, alocal) = split_prefixed(araw);
                    if attrs
                        .iter()
                        .any(|a| a.name == alocal && a.prefix.as_deref() == aprefix)
                    {
                        return Err(self.err(ErrorKind::DuplicateAttribute(araw.to_string())));
                    }
                    // Record namespace declarations into the scope.
                    if aprefix.is_none() && alocal == "xmlns" {
                        scope.bindings.insert(String::new(), value.clone());
                    } else if aprefix == Some("xmlns") {
                        scope.bindings.insert(alocal.to_string(), value.clone());
                    }
                    attrs.push(Attribute {
                        prefix: aprefix.map(intern),
                        name: intern(alocal),
                        ns: None, // resolved below once the scope is complete
                        value,
                    });
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }

        // Resolve the element's namespace.
        let ns = match eprefix {
            Some(p) => {
                Some(intern(scope.resolve(p).ok_or_else(|| {
                    self.err(ErrorKind::UndeclaredPrefix(p.to_string()))
                })?))
            }
            None => scope.resolve("").map(intern),
        };
        // Resolve attribute namespaces (prefixed attributes only).
        for a in &mut attrs {
            if a.is_ns_decl() {
                a.ns = Some(intern(crate::XMLNS_NS));
            } else if let Some(p) = &a.prefix {
                a.ns = Some(intern(scope.resolve(p).ok_or_else(|| {
                    self.err(ErrorKind::UndeclaredPrefix(p.to_string()))
                })?));
            }
        }

        let mut element = Element {
            prefix: eprefix.map(intern),
            name: intern(elocal),
            ns,
            attrs,
            children: Vec::new(),
        };
        if self_closing {
            return Ok(element);
        }

        // Content until the matching end tag.
        loop {
            if self.rest().starts_with("</") {
                self.pos += 2;
                let end_raw = self.parse_name()?;
                self.skip_ws();
                self.expect(">")?;
                if end_raw != raw {
                    return Err(self.err(ErrorKind::MismatchedTag {
                        expected: raw.to_string(),
                        found: end_raw.to_string(),
                    }));
                }
                return Ok(element);
            } else if self.rest().starts_with("<!--") {
                let c = self.parse_comment()?;
                element.children.push(c);
            } else if self.rest().starts_with("<![CDATA[") {
                let c = self.parse_cdata()?;
                element.children.push(c);
            } else if self.rest().starts_with("<?") {
                let c = self.parse_pi()?;
                element.children.push(c);
            } else if self.rest().starts_with('<') {
                let child = self.parse_element(&scope)?;
                element.children.push(Node::Element(child));
            } else if self.eof() {
                return Err(self.err(ErrorKind::UnexpectedEof));
            } else {
                let text = self.parse_text()?;
                if !text.is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            // copy whole delimiter-free runs at once instead of per-char
            let rest = self.rest();
            let stop = rest.find(['<', '&']).unwrap_or(rest.len());
            out.push_str(&rest[..stop]);
            self.pos += stop;
            match self.peek() {
                Some('&') => {
                    self.bump();
                    out.push(self.parse_entity()?);
                }
                _ => break,
            }
        }
        Ok(out)
    }
}

fn extract_pseudo_attr(decl: &str, name: &str) -> Option<String> {
    let idx = decl.find(name)?;
    let rest = decl[idx + name.len()..].trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let quote = rest.chars().next()?;
    if quote != '"' && quote != '\'' {
        return None;
    }
    let body = &rest[1..];
    let end = body.find(quote)?;
    Some(body[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QName;

    #[test]
    fn parses_simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn parses_nested_with_text_and_attrs() {
        let e = parse(r#"<a k="v"><b>hi</b><b>bye</b></a>"#).unwrap();
        assert_eq!(e.attr("k"), Some("v"));
        let texts: Vec<_> = e.children_named("b").map(|b| b.text()).collect();
        assert_eq!(texts, ["hi", "bye"]);
    }

    #[test]
    fn resolves_default_and_prefixed_namespaces() {
        let e = parse(r#"<root xmlns="urn:d" xmlns:p="urn:p"><p:x p:a="1" b="2"/><y/></root>"#)
            .unwrap();
        assert_eq!(e.qname(), QName::with_ns("urn:d", "root"));
        let x = e.child("x").unwrap();
        assert_eq!(x.qname(), QName::with_ns("urn:p", "x"));
        assert_eq!(x.attr_ns("urn:p", "a"), Some("1"));
        // unprefixed attributes are in no namespace
        assert_eq!(x.attr("b"), Some("2"));
        assert_eq!(x.attr_ns("urn:d", "b"), None);
        // default namespace applies to unprefixed child elements
        assert_eq!(e.child("y").unwrap().qname(), QName::with_ns("urn:d", "y"));
    }

    #[test]
    fn default_ns_can_be_undeclared() {
        let e = parse(r#"<a xmlns="urn:d"><b xmlns=""/></a>"#).unwrap();
        assert_eq!(e.child("b").unwrap().ns, None);
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse("<p:a/>").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let e = parse(r#"<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:c/></b><p:d/></a>"#).unwrap();
        let c = e.child("b").unwrap().child("c").unwrap();
        assert_eq!(c.ns.as_deref(), Some("urn:2"));
        assert_eq!(e.child("d").unwrap().ns.as_deref(), Some("urn:1"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a></b>").is_err());
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
        // trailing whitespace and comments are fine
        assert!(parse("<a/> \n <!-- bye -->").is_ok());
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let e = parse(r#"<a k="&lt;&quot;&#65;">x &amp; y</a>"#).unwrap();
        assert_eq!(e.attr("k"), Some("<\"A"));
        assert_eq!(e.text(), "x & y");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn cdata_preserved() {
        let e = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(e.text(), "<raw> & stuff");
        assert!(matches!(e.children[0], Node::CData(_)));
    }

    #[test]
    fn comments_and_pis_in_content() {
        let e = parse("<a><!-- note --><?php echo ?><b/></a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert!(e.child("b").is_some());
    }

    #[test]
    fn xml_declaration_parsed() {
        let d = parse_document("<?xml version=\"1.1\" encoding=\"utf-8\"?><a/>").unwrap();
        assert_eq!(d.version.as_deref(), Some("1.1"));
        assert_eq!(d.encoding.as_deref(), Some("utf-8"));
    }

    #[test]
    fn doctype_skipped() {
        let e = parse("<!DOCTYPE html [<!ENTITY x \"y\">]><a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a k="1" k="2"/>"#).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn whitespace_only_text_kept() {
        // we do not strip whitespace: mixed content must round-trip
        let e = parse("<a> <b/> </a>").unwrap();
        assert_eq!(e.children.len(), 3);
    }

    #[test]
    fn error_offsets_are_plausible() {
        let err = parse("<a><b></c></a>").unwrap_err();
        assert!(err.offset() > 0 && err.offset() <= 14);
    }

    #[test]
    fn bom_is_skipped() {
        let e = parse("\u{feff}<a/>").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn bad_names_rejected() {
        assert!(parse("<1a/>").is_err());
        assert!(parse("<a:b:c/>").is_err());
    }
}
