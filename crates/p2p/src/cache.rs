//! The local advertisement cache with lifetimes and expiry.

use crate::advertisement::{AdvFilter, AdvKind, Advertisement};
use whisper_simnet::SimTime;

#[derive(Debug, Clone)]
struct Entry {
    adv: Advertisement,
    expires: SimTime,
}

/// A peer's local store of advertisements, mirroring JXTA's local discovery
/// cache: entries carry lifetimes, re-publication replaces the entry for the
/// same resource, and lookups never return expired entries.
///
/// The cache maintains an **epoch counter** bumped on every mutation that
/// can change lookup results (insert/replace, or an [`expire`] sweep that
/// removed something). Callers that derive data from lookups — e.g. the
/// proxy's semantic-match memo — key their derived state on
/// [`DiscoveryCache::epoch`] and rebuild when it moves. Pure time-based
/// expiry does *not* bump the epoch (nothing mutates), so epoch-keyed
/// consumers must additionally track the earliest expiry among the entries
/// they saw.
///
/// [`expire`]: DiscoveryCache::expire
#[derive(Debug, Clone, Default)]
pub struct DiscoveryCache {
    entries: Vec<Entry>,
    epoch: u64,
}

impl DiscoveryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DiscoveryCache::default()
    }

    /// The mutation epoch: bumped on every insert/replace and on every
    /// [`DiscoveryCache::expire`] sweep that removed at least one entry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Inserts (or replaces, keyed by [`Advertisement::identity`]) an
    /// advertisement valid until `expires`.
    pub fn insert(&mut self, adv: Advertisement, expires: SimTime) {
        let id = adv.identity();
        if let Some(e) = self.entries.iter_mut().find(|e| e.adv.identity() == id) {
            e.adv = adv;
            e.expires = expires;
        } else {
            self.entries.push(Entry { adv, expires });
        }
        self.epoch += 1;
    }

    /// All live advertisements matching `filter` at time `now`.
    pub fn lookup(&self, filter: &AdvFilter, now: SimTime) -> Vec<&Advertisement> {
        self.entries
            .iter()
            .filter(|e| e.expires > now && filter.matches(&e.adv))
            .map(|e| &e.adv)
            .collect()
    }

    /// Borrowing iterator over live advertisements matching `filter` at
    /// `now`, yielding each advertisement with its expiry time. The
    /// zero-copy path: no `Vec` is built and nothing is cloned.
    pub fn iter_live<'a>(
        &'a self,
        filter: &'a AdvFilter,
        now: SimTime,
    ) -> impl Iterator<Item = (&'a Advertisement, SimTime)> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.expires > now && filter.matches(&e.adv))
            .map(|e| (&e.adv, e.expires))
    }

    /// Like [`DiscoveryCache::lookup`] but cloning, for handing advs to a
    /// response message.
    pub fn lookup_owned(&self, filter: &AdvFilter, now: SimTime) -> Vec<Advertisement> {
        self.lookup(filter, now).into_iter().cloned().collect()
    }

    /// Drops expired entries and returns how many were removed. Bumps the
    /// epoch only when something was actually removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.expires > now);
        let removed = before - self.entries.len();
        if removed > 0 {
            self.epoch += 1;
        }
        removed
    }

    /// Number of entries currently stored, including not-yet-collected
    /// expired ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of live entries of one kind at `now`.
    pub fn live_count(&self, kind: AdvKind, now: SimTime) -> usize {
        self.entries
            .iter()
            .filter(|e| e.expires > now && e.adv.kind() == kind)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advertisement::{GroupAdv, PeerAdv};
    use crate::{GroupId, PeerId};

    fn peer_adv(n: u64) -> Advertisement {
        Advertisement::Peer(PeerAdv {
            peer: PeerId::new(n),
            name: format!("peer{n}"),
            group: None,
        })
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn insert_lookup_expire() {
        let mut c = DiscoveryCache::new();
        assert!(c.is_empty());
        c.insert(peer_adv(1), t(100));
        c.insert(peer_adv(2), t(200));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&AdvFilter::any(), t(50)).len(), 2);
        // at t=150 the first has expired
        assert_eq!(c.lookup(&AdvFilter::any(), t(150)).len(), 1);
        // expiry exactly at the deadline counts as expired
        assert_eq!(c.lookup(&AdvFilter::any(), t(200)).len(), 0);
        assert_eq!(c.expire(t(150)), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn republish_replaces_same_resource() {
        let mut c = DiscoveryCache::new();
        c.insert(peer_adv(1), t(100));
        // refresh with a longer lifetime and a new name
        c.insert(
            Advertisement::Peer(PeerAdv {
                peer: PeerId::new(1),
                name: "renamed".into(),
                group: None,
            }),
            t(500),
        );
        assert_eq!(c.len(), 1);
        let got = c.lookup(&AdvFilter::any(), t(400));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name(), "renamed");
    }

    #[test]
    fn filtered_lookup_and_live_count() {
        let mut c = DiscoveryCache::new();
        c.insert(peer_adv(1), t(100));
        c.insert(
            Advertisement::Group(GroupAdv {
                group: GroupId::new(9),
                name: "g".into(),
            }),
            t(100),
        );
        assert_eq!(c.lookup(&AdvFilter::of_kind(AdvKind::Peer), t(0)).len(), 1);
        assert_eq!(c.lookup(&AdvFilter::named("g"), t(0)).len(), 1);
        assert_eq!(c.live_count(AdvKind::Group, t(0)), 1);
        assert_eq!(c.live_count(AdvKind::Group, t(100)), 0);
        assert_eq!(c.lookup_owned(&AdvFilter::any(), t(0)).len(), 2);
    }

    #[test]
    fn epoch_tracks_mutations_not_reads() {
        let mut c = DiscoveryCache::new();
        let e0 = c.epoch();
        c.insert(peer_adv(1), t(100));
        assert!(c.epoch() > e0);
        let e1 = c.epoch();
        // lookups never bump the epoch
        let _ = c.lookup(&AdvFilter::any(), t(0));
        let _ = c.iter_live(&AdvFilter::any(), t(0)).count();
        assert_eq!(c.epoch(), e1);
        // replacement bumps
        c.insert(peer_adv(1), t(200));
        assert!(c.epoch() > e1);
        let e2 = c.epoch();
        // a no-op expire sweep does not bump
        assert_eq!(c.expire(t(50)), 0);
        assert_eq!(c.epoch(), e2);
        // a sweep that removes something does
        assert_eq!(c.expire(t(300)), 1);
        assert!(c.epoch() > e2);
    }

    #[test]
    fn iter_live_matches_lookup_and_reports_expiry() {
        let mut c = DiscoveryCache::new();
        c.insert(peer_adv(1), t(100));
        c.insert(peer_adv(2), t(200));
        let any = AdvFilter::any();
        let borrowed: Vec<_> = c.iter_live(&any, t(150)).collect();
        assert_eq!(borrowed.len(), 1);
        assert_eq!(borrowed[0].0.name(), "peer2");
        assert_eq!(borrowed[0].1, t(200));
        assert_eq!(
            c.lookup(&AdvFilter::any(), t(150)),
            borrowed.iter().map(|(a, _)| *a).collect::<Vec<_>>()
        );
    }
}
