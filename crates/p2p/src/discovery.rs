//! The discovery service: publish/query of advertisements.
//!
//! A sans-io state machine: calls return the messages to transmit
//! ([`Send`]) and the events to surface ([`DiscoveryEvent`]); the hosting
//! actor performs the IO. Two remote-query strategies are provided:
//!
//! * [`DiscoveryStrategy::Flood`] — queries go to every known peer, each of
//!   which answers from its local cache (JXTA's basic discovery);
//! * [`DiscoveryStrategy::Rendezvous`] — publications and queries are sent
//!   to a designated rendezvous peer that indexes the network (JXTA's
//!   rendezvous protocol). The discovery-cost ablation (experiment E8)
//!   compares the two.

use crate::advertisement::{AdvFilter, Advertisement, PipeAdv};
use crate::{AdvKind, DiscoveryCache, GroupId, PeerId, PipeId};
use std::collections::BTreeSet;
use whisper_obs::Recorder;
use whisper_simnet::{SimDuration, SimTime};
use whisper_wire::{Decode, Encode, Reader, WireError};

/// Correlates queries with their responses.
pub type QueryId = u64;

/// A protocol message of the P2P substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum P2pMessage {
    /// Ask for advertisements matching a filter.
    Query {
        /// Correlation id, unique per origin.
        id: QueryId,
        /// What is being searched.
        filter: AdvFilter,
        /// The peer that issued the query (responses go back to it).
        origin: PeerId,
    },
    /// Answer to a [`P2pMessage::Query`].
    Response {
        /// Correlation id of the query.
        id: QueryId,
        /// Matching advertisements from the responder's cache.
        advs: Vec<Advertisement>,
    },
    /// Push an advertisement into the receiver's cache.
    Publish {
        /// The advertisement.
        adv: Advertisement,
        /// Requested lifetime.
        lifetime: SimDuration,
    },
    /// Liveness beacon within a b-peer group.
    Heartbeat {
        /// The group this heartbeat belongs to.
        group: GroupId,
        /// The sending peer.
        from: PeerId,
    },
}

impl P2pMessage {
    /// Exact serialized size in bytes: `self.encode().len()`.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }

    /// Metric label.
    pub fn kind(&self) -> &'static str {
        match self {
            P2pMessage::Query { .. } => "discovery-query",
            P2pMessage::Response { .. } => "discovery-response",
            P2pMessage::Publish { .. } => "publish",
            P2pMessage::Heartbeat { .. } => "heartbeat",
        }
    }
}

impl Encode for P2pMessage {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            P2pMessage::Query { id, filter, origin } => {
                out.push(0);
                id.encode_into(out);
                filter.encode_into(out);
                origin.encode_into(out);
            }
            P2pMessage::Response { id, advs } => {
                out.push(1);
                id.encode_into(out);
                advs.encode_into(out);
            }
            P2pMessage::Publish { adv, lifetime } => {
                out.push(2);
                adv.encode_into(out);
                lifetime.encode_into(out);
            }
            P2pMessage::Heartbeat { group, from } => {
                out.push(3);
                group.encode_into(out);
                from.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            P2pMessage::Query { id, filter, origin } => {
                id.encoded_len() + filter.encoded_len() + origin.encoded_len()
            }
            P2pMessage::Response { id, advs } => id.encoded_len() + advs.encoded_len(),
            P2pMessage::Publish { adv, lifetime } => adv.encoded_len() + lifetime.encoded_len(),
            P2pMessage::Heartbeat { group, from } => group.encoded_len() + from.encoded_len(),
        }
    }
}

impl Decode for P2pMessage {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(P2pMessage::Query {
                id: QueryId::decode_from(r)?,
                filter: AdvFilter::decode_from(r)?,
                origin: PeerId::decode_from(r)?,
            }),
            1 => Ok(P2pMessage::Response {
                id: QueryId::decode_from(r)?,
                advs: Vec::decode_from(r)?,
            }),
            2 => Ok(P2pMessage::Publish {
                adv: Advertisement::decode_from(r)?,
                lifetime: SimDuration::decode_from(r)?,
            }),
            3 => Ok(P2pMessage::Heartbeat {
                group: GroupId::decode_from(r)?,
                from: PeerId::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "P2pMessage",
                tag,
            }),
        }
    }
}

/// An outgoing transmission requested by the state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Send {
    /// Destination peer.
    pub to: PeerId,
    /// The message to transmit.
    pub msg: P2pMessage,
}

/// An event surfaced to the hosting actor.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryEvent {
    /// A response to one of our queries arrived.
    Results {
        /// The query being answered.
        query: QueryId,
        /// The advertisements it returned.
        advs: Vec<Advertisement>,
    },
}

/// How remote queries and publications travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryStrategy {
    /// Query every known peer directly.
    Flood,
    /// Publish to and query a rendezvous peer that indexes the network.
    Rendezvous(PeerId),
}

/// Per-peer discovery state: local cache, known peers and query bookkeeping.
///
/// # Examples
///
/// ```
/// use whisper_p2p::{AdvFilter, Advertisement, DiscoveryService, DiscoveryStrategy, PeerAdv, PeerId};
/// use whisper_simnet::{SimDuration, SimTime};
///
/// let me = PeerId::new(0);
/// let other = PeerId::new(1);
/// let mut disco = DiscoveryService::new(me, DiscoveryStrategy::Flood);
/// disco.add_known_peer(other);
///
/// let adv = Advertisement::Peer(PeerAdv { peer: me, name: "me".into(), group: None });
/// let now = SimTime::ZERO;
/// let out = disco.publish(adv, SimDuration::from_secs(60), now);
/// assert!(out.is_empty()); // flood strategy publishes only locally
/// assert_eq!(disco.local_lookup(&AdvFilter::any(), now).len(), 1);
///
/// let (qid, sends) = disco.remote_query(AdvFilter::any(), now);
/// assert_eq!(sends.len(), 1); // one query to `other`
/// # let _ = qid;
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryService {
    me: PeerId,
    strategy: DiscoveryStrategy,
    cache: DiscoveryCache,
    known: BTreeSet<PeerId>,
    next_query: u64,
    /// Lifetime applied to advertisements learned from responses.
    pub learned_lifetime: SimDuration,
    /// Optional observability recorder; `None` costs nothing.
    obs: Option<Recorder>,
}

impl DiscoveryService {
    /// Creates the discovery state for peer `me`.
    pub fn new(me: PeerId, strategy: DiscoveryStrategy) -> Self {
        DiscoveryService {
            me,
            strategy,
            cache: DiscoveryCache::new(),
            known: BTreeSet::new(),
            next_query: 0,
            learned_lifetime: SimDuration::from_secs(120),
            obs: None,
        }
    }

    /// Installs an observability recorder: discovery activity is counted
    /// as `discovery.queries` / `discovery.answered` /
    /// `discovery.responses` / `discovery.publishes`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = Some(rec);
    }

    fn obs_incr(&self, name: &'static str) {
        if let Some(rec) = &self.obs {
            rec.incr(name, 1);
        }
    }

    /// This peer's id.
    pub fn peer_id(&self) -> PeerId {
        self.me
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DiscoveryStrategy {
        self.strategy
    }

    /// Registers a peer as a flood target. Self is ignored.
    pub fn add_known_peer(&mut self, peer: PeerId) {
        if peer != self.me {
            self.known.insert(peer);
        }
    }

    /// Forgets a peer (e.g. when the failure detector declares it dead).
    pub fn remove_known_peer(&mut self, peer: PeerId) {
        self.known.remove(&peer);
    }

    /// Currently known peers, in id order.
    pub fn known_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.known.iter().copied()
    }

    /// Read access to the local cache.
    pub fn cache(&self) -> &DiscoveryCache {
        &self.cache
    }

    /// Publishes an advertisement: inserts it into the local cache and, in
    /// rendezvous mode, pushes it to the rendezvous peer. Returns the
    /// messages to transmit.
    pub fn publish(
        &mut self,
        adv: Advertisement,
        lifetime: SimDuration,
        now: SimTime,
    ) -> Vec<Send> {
        self.obs_incr("discovery.publishes");
        self.cache.insert(adv.clone(), now + lifetime);
        match self.strategy {
            DiscoveryStrategy::Rendezvous(r) if r != self.me => {
                vec![Send {
                    to: r,
                    msg: P2pMessage::Publish { adv, lifetime },
                }]
            }
            _ => Vec::new(),
        }
    }

    /// JXTA's `getLocalAdvertisements`: consult only the local cache.
    ///
    /// This is the *owned* (cloning) variant, needed when the results
    /// outlive the cache borrow — e.g. handing them to a response message.
    /// Each call is counted as `discovery.cache_clones` so hot paths can
    /// assert they never pay for it; prefer
    /// [`DiscoveryService::local_lookup_iter`] on the request path.
    pub fn local_lookup(&self, filter: &AdvFilter, now: SimTime) -> Vec<Advertisement> {
        self.obs_incr("discovery.cache_clones");
        self.cache.lookup_owned(filter, now)
    }

    /// Borrowing variant of [`DiscoveryService::local_lookup`]: iterates
    /// live matching advertisements without building a `Vec` or cloning,
    /// yielding each advertisement with its expiry time.
    pub fn local_lookup_iter<'a>(
        &'a self,
        filter: &'a AdvFilter,
        now: SimTime,
    ) -> impl Iterator<Item = (&'a Advertisement, SimTime)> + 'a {
        self.cache.iter_live(filter, now)
    }

    /// The local cache's mutation epoch ([`DiscoveryCache::epoch`]).
    /// Derived results (e.g. the proxy's semantic-match memo) are valid
    /// only while this value is unchanged.
    pub fn cache_epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// JXTA's `getRemoteAdvertisements`: issue a network query per the
    /// strategy. Returns the query id (to correlate the eventual
    /// [`DiscoveryEvent::Results`]) and the messages to transmit.
    pub fn remote_query(&mut self, filter: AdvFilter, _now: SimTime) -> (QueryId, Vec<Send>) {
        self.obs_incr("discovery.queries");
        let id = self.next_query;
        self.next_query += 1;
        let msg = |to: PeerId| Send {
            to,
            msg: P2pMessage::Query {
                id,
                filter: filter.clone(),
                origin: self.me,
            },
        };
        let sends = match self.strategy {
            DiscoveryStrategy::Flood => self.known.iter().map(|&p| msg(p)).collect(),
            DiscoveryStrategy::Rendezvous(r) if r != self.me => vec![msg(r)],
            DiscoveryStrategy::Rendezvous(_) => Vec::new(), // we are the rendezvous
        };
        (id, sends)
    }

    /// Feeds an incoming message into the state machine.
    ///
    /// Returns messages to transmit and events for the hosting actor.
    /// Heartbeats are not discovery traffic and pass through untouched
    /// (feed them to a [`FailureDetector`](crate::FailureDetector)).
    pub fn handle_message(
        &mut self,
        from: PeerId,
        msg: P2pMessage,
        now: SimTime,
    ) -> (Vec<Send>, Vec<DiscoveryEvent>) {
        match msg {
            P2pMessage::Query { id, filter, origin } => {
                self.obs_incr("discovery.answered");
                let advs = self.cache.lookup_owned(&filter, now);
                let reply = Send {
                    to: origin,
                    msg: P2pMessage::Response { id, advs },
                };
                (vec![reply], Vec::new())
            }
            P2pMessage::Response { id, advs } => {
                self.obs_incr("discovery.responses");
                // Cache what we learned, like JXTA's discovery listener.
                for adv in &advs {
                    self.cache.insert(adv.clone(), now + self.learned_lifetime);
                }
                (
                    Vec::new(),
                    vec![DiscoveryEvent::Results { query: id, advs }],
                )
            }
            P2pMessage::Publish { adv, lifetime } => {
                let _ = from;
                self.cache.insert(adv, now + lifetime);
                (Vec::new(), Vec::new())
            }
            P2pMessage::Heartbeat { .. } => (Vec::new(), Vec::new()),
        }
    }

    /// Collects expired cache entries.
    pub fn expire(&mut self, now: SimTime) -> usize {
        self.cache.expire(now)
    }

    /// Binds the receiving end of a pipe to this peer and publishes the
    /// corresponding [`PipeAdv`]: JXTA's "create input pipe". Returns the
    /// messages to transmit (rendezvous push, if configured).
    pub fn bind_input_pipe(
        &mut self,
        pipe: PipeId,
        name: impl Into<String>,
        lifetime: SimDuration,
        now: SimTime,
    ) -> Vec<Send> {
        let adv = Advertisement::Pipe(PipeAdv {
            pipe,
            name: name.into(),
            owner: self.me,
        });
        self.publish(adv, lifetime, now)
    }

    /// Resolves a pipe by name against the local cache: JXTA's "create
    /// output pipe" fast path. Whisper's proxy-to-coordinator binding is
    /// exactly this resolution; a dead owner means the pipe must be
    /// re-resolved after re-publication (the paper's re-binding cost).
    pub fn resolve_pipe(&self, name: &str, now: SimTime) -> Option<PipeAdv> {
        let mut filter = AdvFilter::of_kind(AdvKind::Pipe);
        filter.name = Some(name.to_string());
        self.cache
            .lookup(&filter, now)
            .into_iter()
            .filter_map(Advertisement::as_pipe)
            .next()
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advertisement::{PeerAdv, SemanticAdv};
    use whisper_xml::QName;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn padv(n: u64) -> Advertisement {
        Advertisement::Peer(PeerAdv {
            peer: PeerId::new(n),
            name: format!("p{n}"),
            group: None,
        })
    }

    fn sem(group: u64, action: &str) -> Advertisement {
        Advertisement::Semantic(SemanticAdv {
            group: GroupId::new(group),
            name: format!("g{group}"),
            action: QName::with_ns("urn:u", action),
            inputs: vec![],
            outputs: vec![],
            qos: None,
        })
    }

    #[test]
    fn flood_query_targets_all_known_peers() {
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        for n in 1..=4 {
            d.add_known_peer(PeerId::new(n));
        }
        d.add_known_peer(PeerId::new(0)); // self ignored
        let (id, sends) = d.remote_query(AdvFilter::any(), t(0));
        assert_eq!(sends.len(), 4);
        assert!(sends.iter().all(|s| matches!(
            &s.msg,
            P2pMessage::Query { id: qid, origin, .. } if *qid == id && *origin == PeerId::new(0)
        )));
        // ids increment
        let (id2, _) = d.remote_query(AdvFilter::any(), t(0));
        assert_eq!(id2, id + 1);
    }

    #[test]
    fn rendezvous_publish_and_query_route_to_rendezvous() {
        let rdv = PeerId::new(9);
        let mut d = DiscoveryService::new(PeerId::new(1), DiscoveryStrategy::Rendezvous(rdv));
        let out = d.publish(padv(1), SimDuration::from_secs(10), t(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, rdv);
        assert!(matches!(out[0].msg, P2pMessage::Publish { .. }));

        let (_, sends) = d.remote_query(AdvFilter::any(), t(0));
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].to, rdv);
    }

    #[test]
    fn rendezvous_itself_publishes_and_queries_locally() {
        let rdv = PeerId::new(9);
        let mut d = DiscoveryService::new(rdv, DiscoveryStrategy::Rendezvous(rdv));
        assert!(d
            .publish(padv(9), SimDuration::from_secs(10), t(0))
            .is_empty());
        let (_, sends) = d.remote_query(AdvFilter::any(), t(0));
        assert!(sends.is_empty());
    }

    #[test]
    fn query_answered_from_cache_and_results_learned() {
        let now = t(0);
        let mut responder = DiscoveryService::new(PeerId::new(2), DiscoveryStrategy::Flood);
        responder.publish(
            sem(1, "StudentInformation"),
            SimDuration::from_secs(60),
            now,
        );
        responder.publish(sem(2, "Other"), SimDuration::from_secs(60), now);

        let mut asker = DiscoveryService::new(PeerId::new(1), DiscoveryStrategy::Flood);
        asker.add_known_peer(PeerId::new(2));
        let filter = AdvFilter::semantic_action(QName::with_ns("urn:u", "StudentInformation"));
        let (qid, sends) = asker.remote_query(filter, now);

        // deliver to responder
        let (replies, evs) = responder.handle_message(PeerId::new(1), sends[0].msg.clone(), now);
        assert!(evs.is_empty());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].to, PeerId::new(1));

        // deliver response back
        let (out, evs) = asker.handle_message(PeerId::new(2), replies[0].msg.clone(), now);
        assert!(out.is_empty());
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            DiscoveryEvent::Results { query, advs } => {
                assert_eq!(*query, qid);
                assert_eq!(advs.len(), 1);
                assert_eq!(advs[0].name(), "g1");
            }
        }
        // learned adv is now in the asker's local cache
        assert_eq!(asker.local_lookup(&AdvFilter::any(), now).len(), 1);
    }

    #[test]
    fn empty_response_still_correlates() {
        let now = t(0);
        let mut responder = DiscoveryService::new(PeerId::new(2), DiscoveryStrategy::Flood);
        let mut asker = DiscoveryService::new(PeerId::new(1), DiscoveryStrategy::Flood);
        asker.add_known_peer(PeerId::new(2));
        let (qid, sends) = asker.remote_query(AdvFilter::named("nothing"), now);
        let (replies, _) = responder.handle_message(PeerId::new(1), sends[0].msg.clone(), now);
        let (_, evs) = asker.handle_message(PeerId::new(2), replies[0].msg.clone(), now);
        assert_eq!(
            evs,
            vec![DiscoveryEvent::Results {
                query: qid,
                advs: vec![]
            }]
        );
    }

    #[test]
    fn expiry_flows_through() {
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        d.publish(padv(1), SimDuration::from_micros(10), t(0));
        assert_eq!(d.local_lookup(&AdvFilter::any(), t(5)).len(), 1);
        assert_eq!(d.local_lookup(&AdvFilter::any(), t(20)).len(), 0);
        assert_eq!(d.expire(t(20)), 1);
        assert!(d.cache().is_empty());
    }

    #[test]
    fn heartbeats_pass_through_silently() {
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        let (out, evs) = d.handle_message(
            PeerId::new(1),
            P2pMessage::Heartbeat {
                group: GroupId::new(1),
                from: PeerId::new(1),
            },
            t(0),
        );
        assert!(out.is_empty() && evs.is_empty());
    }

    #[test]
    fn message_sizes_and_kinds() {
        let q = P2pMessage::Query {
            id: 0,
            filter: AdvFilter::any(),
            origin: PeerId::new(0),
        };
        let r = P2pMessage::Response {
            id: 0,
            advs: vec![sem(1, "A"), sem(2, "B")],
        };
        assert_eq!(q.kind(), "discovery-query");
        assert_eq!(r.kind(), "discovery-response");
        assert!(r.wire_size() > q.wire_size());
        assert_eq!(
            P2pMessage::Heartbeat {
                group: GroupId::new(1),
                from: PeerId::new(0)
            }
            .kind(),
            "heartbeat"
        );
    }

    #[test]
    fn remove_known_peer_shrinks_flood_set() {
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        d.add_known_peer(PeerId::new(1));
        d.add_known_peer(PeerId::new(2));
        d.remove_known_peer(PeerId::new(1));
        assert_eq!(d.known_peers().collect::<Vec<_>>(), vec![PeerId::new(2)]);
        let (_, sends) = d.remote_query(AdvFilter::any(), t(0));
        assert_eq!(sends.len(), 1);
    }

    #[test]
    fn pipes_bind_and_resolve() {
        let me = PeerId::new(4);
        let mut d = DiscoveryService::new(me, DiscoveryStrategy::Flood);
        assert!(d.resolve_pipe("requests", t(0)).is_none());
        let out = d.bind_input_pipe(PipeId::new(9), "requests", SimDuration::from_secs(30), t(0));
        assert!(out.is_empty(), "flood publishes locally");
        let adv = d.resolve_pipe("requests", t(0)).expect("bound");
        assert_eq!(adv.owner, me);
        assert_eq!(adv.pipe, PipeId::new(9));
        // expired binding resolves to nothing
        assert!(d.resolve_pipe("requests", t(31_000_000)).is_none());
        // rebinding by another peer replaces the advertisement
        let (_, _) = (0, 0);
        let learned = Advertisement::Pipe(PipeAdv {
            pipe: PipeId::new(9),
            name: "requests".into(),
            owner: PeerId::new(7),
        });
        let (out, _) = d.handle_message(
            PeerId::new(7),
            P2pMessage::Publish {
                adv: learned,
                lifetime: SimDuration::from_secs(30),
            },
            t(31_000_000),
        );
        assert!(out.is_empty());
        assert_eq!(
            d.resolve_pipe("requests", t(31_000_001))
                .expect("rebound")
                .owner,
            PeerId::new(7)
        );
    }

    #[test]
    fn recorder_counts_discovery_activity() {
        let rec = Recorder::new();
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        d.set_recorder(rec.clone());
        d.add_known_peer(PeerId::new(1));
        d.publish(padv(1), SimDuration::from_secs(10), t(0));
        let (_, sends) = d.remote_query(AdvFilter::any(), t(0));
        let _ = d.handle_message(
            PeerId::new(1),
            P2pMessage::Response {
                id: 0,
                advs: vec![],
            },
            t(0),
        );
        let _ = d.handle_message(PeerId::new(1), sends[0].msg.clone(), t(0));
        assert_eq!(rec.counter("discovery.publishes"), 1);
        assert_eq!(rec.counter("discovery.queries"), 1);
        assert_eq!(rec.counter("discovery.responses"), 1);
        assert_eq!(rec.counter("discovery.answered"), 1);
    }

    #[test]
    fn borrowed_lookup_is_clone_free_and_epoch_moves_on_publish() {
        let rec = Recorder::new();
        let mut d = DiscoveryService::new(PeerId::new(0), DiscoveryStrategy::Flood);
        d.set_recorder(rec.clone());
        let e0 = d.cache_epoch();
        d.publish(sem(1, "A"), SimDuration::from_secs(60), t(0));
        assert!(d.cache_epoch() > e0, "publish bumps the cache epoch");

        let filter = AdvFilter::of_kind(AdvKind::Semantic);
        assert_eq!(d.local_lookup_iter(&filter, t(0)).count(), 1);
        assert_eq!(rec.counter("discovery.cache_clones"), 0);

        assert_eq!(d.local_lookup(&filter, t(0)).len(), 1);
        assert_eq!(rec.counter("discovery.cache_clones"), 1);
    }

    #[test]
    fn pipe_publication_reaches_the_rendezvous() {
        let rdv = PeerId::new(9);
        let mut d = DiscoveryService::new(PeerId::new(1), DiscoveryStrategy::Rendezvous(rdv));
        let out = d.bind_input_pipe(PipeId::new(1), "p", SimDuration::from_secs(5), t(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, rdv);
    }
}
