//! # whisper-p2p
//!
//! A JXTA-style peer-to-peer substrate: peers, peer groups, XML
//! advertisements, discovery and failure detection.
//!
//! The paper builds Whisper on JXTA 2.3. This crate reimplements the parts
//! of JXTA that Whisper exercises:
//!
//! * **Identifiers** — [`PeerId`], [`GroupId`]: URN-like ids for peers and
//!   peer groups.
//! * **Advertisements** — every resource is described by an XML metadata
//!   document ([`Advertisement`]): peer advertisements, peer-group
//!   advertisements and Whisper's *semantic advertisements*
//!   ([`SemanticAdv`]) that extend group advertisements with ontological
//!   concepts for action/inputs/outputs (section 4.3 of the paper) plus QoS
//!   metadata (section 2.4).
//! * **Discovery** — [`DiscoveryService`]: a sans-io state machine
//!   implementing local-cache lookup plus remote queries via flooding or a
//!   rendezvous peer, with advertisement lifetimes and expiry.
//! * **Failure detection** — [`FailureDetector`]: heartbeat bookkeeping used
//!   by b-peer groups to notice dead coordinators.
//!
//! Protocol messages are plain data ([`P2pMessage`]); hosting actors wrap
//! them in their own wire type and pass incoming ones back into the state
//! machines. This keeps the substrate transport-agnostic: the same code runs
//! on the deterministic simulator and the threaded runtime of
//! `whisper-simnet`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advertisement;
mod cache;
mod discovery;
mod error;
mod heartbeat;
mod id;

pub use advertisement::{
    AdvFilter, AdvKind, Advertisement, GroupAdv, PeerAdv, PipeAdv, QosSpec, SemanticAdv,
};
pub use cache::DiscoveryCache;
pub use discovery::{
    DiscoveryEvent, DiscoveryService, DiscoveryStrategy, P2pMessage, QueryId, Send as P2pSend,
};
pub use error::P2pError;
pub use heartbeat::FailureDetector;
pub use id::{GroupId, PeerId, PipeId};
