//! Advertisements: XML metadata documents describing network resources.
//!
//! "All resources in JXTA networks are represented by a metadata XML
//! document called an advertisement" (paper, section 4.3). Whisper adds a
//! new advertisement type — the *semantic advertisement* — that describes a
//! b-peer group by the ontological concepts of the functionality it
//! implements, so discovery can match on semantics instead of syntax.

use crate::{GroupId, P2pError, PeerId, PipeId};
use whisper_wire::{Decode, Encode, Reader, WireError};
use whisper_xml::{Element, QName};

/// The advertisement taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdvKind {
    /// Describes a peer (its id and symbolic name).
    Peer,
    /// Describes a plain peer group.
    Group,
    /// Describes a *semantic* b-peer group: a group plus the concepts of the
    /// service it implements.
    Semantic,
    /// Describes a pipe: a named channel bound to the peer that currently
    /// receives on it.
    Pipe,
}

impl AdvKind {
    /// The XML element name for this kind.
    pub fn tag(self) -> &'static str {
        match self {
            AdvKind::Peer => "PeerAdvertisement",
            AdvKind::Group => "PeerGroupAdvertisement",
            AdvKind::Semantic => "SemanticAdvertisement",
            AdvKind::Pipe => "PipeAdvertisement",
        }
    }
}

/// Advertisement for a single peer.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerAdv {
    /// The advertised peer.
    pub peer: PeerId,
    /// Symbolic peer name.
    pub name: String,
    /// The b-peer group this peer belongs to, if any. Proxies use it to
    /// enumerate the members of a discovered semantic group.
    pub group: Option<GroupId>,
}

/// Advertisement for a pipe: JXTA's unidirectional channel abstraction.
/// Whisper's SWS-proxy↔coordinator binding is pipe resolution — the paper's
/// "time to make a new binding" is the cost of re-resolving a pipe after
/// its owner died.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeAdv {
    /// The advertised pipe.
    pub pipe: PipeId,
    /// Symbolic pipe name (what senders resolve).
    pub name: String,
    /// The peer bound to the receiving end.
    pub owner: PeerId,
}

/// Advertisement for a plain (non-semantic) peer group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAdv {
    /// The advertised group.
    pub group: GroupId,
    /// Symbolic group name.
    pub name: String,
}

/// Quality-of-service metadata carried by semantic advertisements
/// (the paper's section 2.4 extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    /// Expected request-processing latency in microseconds.
    pub latency_us: u64,
    /// Fraction of requests expected to succeed, in `[0, 1]`.
    pub reliability: f64,
    /// Abstract invocation cost (lower is better).
    pub cost: f64,
}

impl QosSpec {
    /// A single scalar utility used for ranking: higher is better.
    ///
    /// Reliability dominates, latency matters strongly at the
    /// low-millisecond scale (where service-selection decisions live),
    /// cost breaks ties: `10·reliability + 5/(1 + latency_ms) − cost/2`.
    pub fn utility(&self) -> f64 {
        let speed = 5.0 / (1.0 + self.latency_us as f64 / 1_000.0);
        self.reliability * 10.0 + speed - self.cost / 2.0
    }
}

/// Whisper's semantic advertisement: a b-peer group described by the
/// ontological concepts of the service it implements.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticAdv {
    /// The b-peer group being advertised.
    pub group: GroupId,
    /// Symbolic group name (the *syntactic* identity — what plain JXTA
    /// discovery would match on).
    pub name: String,
    /// Functional semantics: the action concept.
    pub action: QName,
    /// Data semantics of the inputs, in signature order.
    pub inputs: Vec<QName>,
    /// Data semantics of the outputs, in signature order.
    pub outputs: Vec<QName>,
    /// Optional QoS claims for ranking.
    pub qos: Option<QosSpec>,
}

/// Any advertisement.
#[derive(Debug, Clone, PartialEq)]
pub enum Advertisement {
    /// A peer advertisement.
    Peer(PeerAdv),
    /// A plain group advertisement.
    Group(GroupAdv),
    /// A semantic b-peer-group advertisement.
    Semantic(SemanticAdv),
    /// A pipe advertisement.
    Pipe(PipeAdv),
}

impl Advertisement {
    /// This advertisement's kind.
    pub fn kind(&self) -> AdvKind {
        match self {
            Advertisement::Peer(_) => AdvKind::Peer,
            Advertisement::Group(_) => AdvKind::Group,
            Advertisement::Semantic(_) => AdvKind::Semantic,
            Advertisement::Pipe(_) => AdvKind::Pipe,
        }
    }

    /// The symbolic name.
    pub fn name(&self) -> &str {
        match self {
            Advertisement::Peer(a) => &a.name,
            Advertisement::Group(a) => &a.name,
            Advertisement::Semantic(a) => &a.name,
            Advertisement::Pipe(a) => &a.name,
        }
    }

    /// A stable identity used for cache replacement: kind + advertised id.
    /// Re-publishing a resource replaces its previous advertisement.
    pub fn identity(&self) -> (AdvKind, u64) {
        match self {
            Advertisement::Peer(a) => (AdvKind::Peer, a.peer.value()),
            Advertisement::Group(a) => (AdvKind::Group, a.group.value()),
            Advertisement::Semantic(a) => (AdvKind::Semantic, a.group.value()),
            Advertisement::Pipe(a) => (AdvKind::Pipe, a.pipe.value()),
        }
    }

    /// The semantic payload, if this is a semantic advertisement.
    pub fn as_semantic(&self) -> Option<&SemanticAdv> {
        match self {
            Advertisement::Semantic(s) => Some(s),
            _ => None,
        }
    }

    /// The pipe payload, if this is a pipe advertisement.
    pub fn as_pipe(&self) -> Option<&PipeAdv> {
        match self {
            Advertisement::Pipe(p) => Some(p),
            _ => None,
        }
    }

    /// Serializes to the XML metadata document.
    pub fn to_element(&self) -> Element {
        match self {
            Advertisement::Peer(a) => {
                let mut e = Element::new(AdvKind::Peer.tag());
                e.set_attr("id", a.peer.to_string());
                e.set_attr("name", &a.name);
                if let Some(g) = a.group {
                    e.set_attr("group", g.to_string());
                }
                e
            }
            Advertisement::Group(a) => {
                let mut e = Element::new(AdvKind::Group.tag());
                e.set_attr("id", a.group.to_string());
                e.set_attr("name", &a.name);
                e
            }
            Advertisement::Pipe(a) => {
                let mut e = Element::new(AdvKind::Pipe.tag());
                e.set_attr("id", a.pipe.to_string());
                e.set_attr("name", &a.name);
                e.set_attr("owner", a.owner.to_string());
                e
            }
            Advertisement::Semantic(a) => {
                let mut e = Element::new(AdvKind::Semantic.tag());
                e.set_attr("id", a.group.to_string());
                e.set_attr("name", &a.name);
                e.push_child(Element::with_text("action", a.action.to_clark()));
                for i in &a.inputs {
                    e.push_child(Element::with_text("input", i.to_clark()));
                }
                for o in &a.outputs {
                    e.push_child(Element::with_text("output", o.to_clark()));
                }
                if let Some(q) = &a.qos {
                    let mut qe = Element::new("qos");
                    qe.set_attr("latencyUs", q.latency_us.to_string());
                    qe.set_attr("reliability", q.reliability.to_string());
                    qe.set_attr("cost", q.cost.to_string());
                    e.push_child(qe);
                }
                e
            }
        }
    }

    /// Serializes to document text (what actually travels in discovery
    /// responses).
    pub fn to_xml_string(&self) -> String {
        self.to_element().to_xml()
    }

    /// Exact wire size in bytes: `self.encode().len()`.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }

    /// Parses an advertisement document.
    ///
    /// # Errors
    ///
    /// [`P2pError`] for XML problems, unknown kinds or missing structure.
    pub fn parse(text: &str) -> Result<Self, P2pError> {
        Self::from_element(&whisper_xml::parse(text)?)
    }

    /// Interprets a parsed element tree as an advertisement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Advertisement::parse`], minus XML errors.
    pub fn from_element(e: &Element) -> Result<Self, P2pError> {
        let attr = |name: &str| {
            e.attr(name).map(str::to_string).ok_or_else(|| {
                P2pError::MalformedAdvertisement(format!("missing {name:?} on <{}>", e.name))
            })
        };
        let concept = |el: &Element| -> Result<QName, P2pError> {
            QName::from_clark(&el.text()).ok_or_else(|| {
                P2pError::MalformedAdvertisement(format!("bad concept in <{}>", el.name))
            })
        };
        match e.name.as_str() {
            "PeerAdvertisement" => Ok(Advertisement::Peer(PeerAdv {
                peer: attr("id")?.parse()?,
                name: attr("name")?,
                group: e.attr("group").map(str::parse).transpose()?,
            })),
            "PeerGroupAdvertisement" => Ok(Advertisement::Group(GroupAdv {
                group: attr("id")?.parse()?,
                name: attr("name")?,
            })),
            "PipeAdvertisement" => Ok(Advertisement::Pipe(PipeAdv {
                pipe: attr("id")?.parse()?,
                name: attr("name")?,
                owner: attr("owner")?.parse()?,
            })),
            "SemanticAdvertisement" => {
                let action_el = e
                    .child("action")
                    .ok_or_else(|| P2pError::MalformedAdvertisement("missing <action>".into()))?;
                let qos = match e.child("qos") {
                    Some(q) => {
                        let num = |a: &str| -> Result<f64, P2pError> {
                            q.attr(a)
                                .and_then(|v| v.parse::<f64>().ok())
                                .ok_or_else(|| {
                                    P2pError::MalformedAdvertisement(format!(
                                        "bad qos attribute {a:?}"
                                    ))
                                })
                        };
                        Some(QosSpec {
                            latency_us: num("latencyUs")? as u64,
                            reliability: num("reliability")?,
                            cost: num("cost")?,
                        })
                    }
                    None => None,
                };
                Ok(Advertisement::Semantic(SemanticAdv {
                    group: attr("id")?.parse()?,
                    name: attr("name")?,
                    action: concept(action_el)?,
                    inputs: e
                        .children_named("input")
                        .map(concept)
                        .collect::<Result<_, _>>()?,
                    outputs: e
                        .children_named("output")
                        .map(concept)
                        .collect::<Result<_, _>>()?,
                    qos,
                }))
            }
            other => Err(P2pError::UnknownAdvKind(other.to_string())),
        }
    }
}

/// Advertisements travel as their XML document text, length-prefixed —
/// faithful to JXTA, where "all resources … are represented by a metadata
/// XML document". The byte count on the wire is therefore the size of the
/// actual document, and decoding reuses [`Advertisement::parse`], whose
/// round-trip is exact.
impl Encode for Advertisement {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_xml_string().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.to_xml_string().encoded_len()
    }
}

impl Decode for Advertisement {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let text = r.string()?;
        Advertisement::parse(&text).map_err(|e| WireError::Invalid(e.to_string()))
    }
}

impl Encode for AdvKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AdvKind::Peer => 0,
            AdvKind::Group => 1,
            AdvKind::Semantic => 2,
            AdvKind::Pipe => 3,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for AdvKind {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(AdvKind::Peer),
            1 => Ok(AdvKind::Group),
            2 => Ok(AdvKind::Semantic),
            3 => Ok(AdvKind::Pipe),
            tag => Err(WireError::BadTag {
                what: "AdvKind",
                tag,
            }),
        }
    }
}

/// A predicate over advertisements used by discovery queries.
///
/// Mirrors JXTA's `getLocalAdvertisements(type, attribute, value)`: an
/// optional kind plus optional attribute constraints. All present
/// constraints must hold.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdvFilter {
    /// Restrict to one advertisement kind.
    pub kind: Option<AdvKind>,
    /// Exact match on the symbolic name (syntactic discovery).
    pub name: Option<String>,
    /// Exact match on the action concept of semantic advertisements
    /// (the paper's `"action", sws.get_sem_action()` lookup).
    pub action: Option<QName>,
    /// Restrict to one advertised group id.
    pub group: Option<GroupId>,
}

impl AdvFilter {
    /// Matches everything.
    pub fn any() -> Self {
        AdvFilter::default()
    }

    /// All advertisements of `kind`.
    pub fn of_kind(kind: AdvKind) -> Self {
        AdvFilter {
            kind: Some(kind),
            ..AdvFilter::default()
        }
    }

    /// Semantic advertisements whose action equals `action` exactly.
    pub fn semantic_action(action: QName) -> Self {
        AdvFilter {
            kind: Some(AdvKind::Semantic),
            action: Some(action),
            ..AdvFilter::default()
        }
    }

    /// Advertisements with this exact symbolic name.
    pub fn named(name: impl Into<String>) -> Self {
        AdvFilter {
            name: Some(name.into()),
            ..AdvFilter::default()
        }
    }

    /// Whether `adv` satisfies every present constraint.
    pub fn matches(&self, adv: &Advertisement) -> bool {
        if let Some(k) = self.kind {
            if adv.kind() != k {
                return false;
            }
        }
        if let Some(n) = &self.name {
            if adv.name() != n {
                return false;
            }
        }
        if let Some(a) = &self.action {
            match adv.as_semantic() {
                Some(s) if &s.action == a => {}
                _ => return false,
            }
        }
        if let Some(g) = self.group {
            let gid = match adv {
                Advertisement::Group(x) => Some(x.group),
                Advertisement::Semantic(x) => Some(x.group),
                Advertisement::Peer(x) => x.group,
                Advertisement::Pipe(_) => None,
            };
            if gid != Some(g) {
                return false;
            }
        }
        true
    }
}

impl Encode for AdvFilter {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.name.encode_into(out);
        self.action.encode_into(out);
        self.group.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.kind.encoded_len()
            + self.name.encoded_len()
            + self.action.encoded_len()
            + self.group.encoded_len()
    }
}

impl Decode for AdvFilter {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AdvFilter {
            kind: Option::decode_from(r)?,
            name: Option::decode_from(r)?,
            action: Option::decode_from(r)?,
            group: Option::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semantic() -> Advertisement {
        Advertisement::Semantic(SemanticAdv {
            group: GroupId::new(3),
            name: "StudentInfoGroup".into(),
            action: QName::with_ns("urn:uni", "StudentInformation"),
            inputs: vec![QName::with_ns("urn:uni", "StudentID")],
            outputs: vec![QName::with_ns("urn:uni", "StudentInfo")],
            qos: Some(QosSpec {
                latency_us: 800,
                reliability: 0.99,
                cost: 1.5,
            }),
        })
    }

    #[test]
    fn all_kinds_round_trip() {
        let advs = [
            Advertisement::Pipe(PipeAdv {
                pipe: PipeId::new(5),
                name: "student-info-pipe".into(),
                owner: PeerId::new(3),
            }),
            Advertisement::Peer(PeerAdv {
                peer: PeerId::new(1),
                name: "b-peer A".into(),
                group: Some(GroupId::new(7)),
            }),
            Advertisement::Group(GroupAdv {
                group: GroupId::new(2),
                name: "plain".into(),
            }),
            semantic(),
        ];
        for adv in advs {
            let text = adv.to_xml_string();
            let back = Advertisement::parse(&text).unwrap();
            assert_eq!(adv, back, "{text}");
        }
    }

    #[test]
    fn identity_replaces_by_resource() {
        let a = semantic();
        let mut b = semantic();
        if let Advertisement::Semantic(s) = &mut b {
            s.qos = None; // updated advertisement for the same group
        }
        assert_eq!(a.identity(), b.identity());
        assert_ne!(
            a.identity(),
            Advertisement::Group(GroupAdv {
                group: GroupId::new(3),
                name: "x".into()
            })
            .identity()
        );
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(matches!(
            Advertisement::parse("<Mystery/>"),
            Err(P2pError::UnknownAdvKind(_))
        ));
        assert!(matches!(
            Advertisement::parse("<PeerAdvertisement name=\"x\"/>"),
            Err(P2pError::MalformedAdvertisement(_))
        ));
        assert!(matches!(
            Advertisement::parse("<PeerAdvertisement id=\"bogus\" name=\"x\"/>"),
            Err(P2pError::BadId(_))
        ));
        assert!(matches!(
            Advertisement::parse("<SemanticAdvertisement id=\"urn:whisper:group:1\" name=\"g\"/>"),
            Err(P2pError::MalformedAdvertisement(_))
        ));
    }

    #[test]
    fn qos_is_optional() {
        let mut s = semantic();
        if let Advertisement::Semantic(sem) = &mut s {
            sem.qos = None;
        }
        let back = Advertisement::parse(&s.to_xml_string()).unwrap();
        assert_eq!(back.as_semantic().unwrap().qos, None);
    }

    #[test]
    fn filters_constrain_conjunctively() {
        let adv = semantic();
        assert!(AdvFilter::any().matches(&adv));
        assert!(AdvFilter::of_kind(AdvKind::Semantic).matches(&adv));
        assert!(!AdvFilter::of_kind(AdvKind::Peer).matches(&adv));
        assert!(AdvFilter::named("StudentInfoGroup").matches(&adv));
        assert!(!AdvFilter::named("Other").matches(&adv));
        assert!(
            AdvFilter::semantic_action(QName::with_ns("urn:uni", "StudentInformation"))
                .matches(&adv)
        );
        assert!(!AdvFilter::semantic_action(QName::with_ns("urn:uni", "Other")).matches(&adv));
        let mut f = AdvFilter::of_kind(AdvKind::Semantic);
        f.group = Some(GroupId::new(3));
        assert!(f.matches(&adv));
        f.group = Some(GroupId::new(4));
        assert!(!f.matches(&adv));
        // action filter never matches non-semantic advs
        let peer = Advertisement::Peer(PeerAdv {
            peer: PeerId::new(1),
            name: "p".into(),
            group: None,
        });
        assert!(!AdvFilter::semantic_action(QName::new("x")).matches(&peer));
        // group filter never matches peer advs
        let mut g = AdvFilter::any();
        g.group = Some(GroupId::new(1));
        assert!(!g.matches(&peer));
    }

    #[test]
    fn qos_utility_prefers_reliable_then_fast_then_cheap() {
        let base = QosSpec {
            latency_us: 1_000,
            reliability: 0.9,
            cost: 1.0,
        };
        let more_reliable = QosSpec {
            reliability: 0.99,
            ..base
        };
        let faster = QosSpec {
            latency_us: 100,
            ..base
        };
        let cheaper = QosSpec { cost: 0.1, ..base };
        assert!(more_reliable.utility() > base.utility());
        assert!(faster.utility() > base.utility());
        assert!(cheaper.utility() > base.utility());
    }

    #[test]
    fn wire_size_is_plausible() {
        let s = semantic();
        assert!(
            s.wire_size() > 100 && s.wire_size() < 2048,
            "{}",
            s.wire_size()
        );
    }

    #[test]
    fn wire_size_is_exact_encoded_len() {
        let s = semantic();
        assert_eq!(s.wire_size(), s.encode().len());
    }

    #[test]
    fn advertisements_round_trip_through_bytes() {
        let advs = [
            semantic(),
            Advertisement::Peer(PeerAdv {
                peer: PeerId::new(1),
                name: "b-peer <&\"> A".into(),
                group: None,
            }),
        ];
        for adv in advs {
            assert_eq!(Advertisement::decode(&adv.encode()).unwrap(), adv);
        }
    }

    #[test]
    fn garbage_advertisement_bytes_are_invalid_not_panic() {
        let bytes = "<Mystery/>".to_string().encode();
        assert!(matches!(
            Advertisement::decode(&bytes),
            Err(whisper_wire::WireError::Invalid(_))
        ));
    }

    #[test]
    fn filters_round_trip_through_bytes() {
        let filters = [
            AdvFilter::any(),
            AdvFilter::of_kind(AdvKind::Pipe),
            AdvFilter::semantic_action(QName::with_ns("urn:uni", "StudentInformation")),
            AdvFilter {
                kind: Some(AdvKind::Group),
                name: Some("g".into()),
                action: None,
                group: Some(GroupId::new(9)),
            },
        ];
        for f in filters {
            assert_eq!(f.encoded_len(), f.encode().len());
            assert_eq!(AdvFilter::decode(&f.encode()).unwrap(), f);
        }
    }
}
