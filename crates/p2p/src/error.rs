//! Error type for the P2P substrate.

use std::error::Error;
use std::fmt;
use whisper_xml::XmlError;

/// An error produced by advertisement parsing or discovery bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P2pError {
    /// An id string does not follow the `urn:whisper:...` scheme.
    BadId(String),
    /// An advertisement document was not well-formed XML.
    Xml(XmlError),
    /// An advertisement document is missing required structure.
    MalformedAdvertisement(String),
    /// An advertisement kind tag was not recognized.
    UnknownAdvKind(String),
}

impl fmt::Display for P2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2pError::BadId(s) => write!(f, "malformed identifier {s:?}"),
            P2pError::Xml(e) => write!(f, "invalid XML: {e}"),
            P2pError::MalformedAdvertisement(why) => {
                write!(f, "malformed advertisement: {why}")
            }
            P2pError::UnknownAdvKind(k) => write!(f, "unknown advertisement kind {k:?}"),
        }
    }
}

impl Error for P2pError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            P2pError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for P2pError {
    fn from(e: XmlError) -> Self {
        P2pError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(P2pError::BadId("x".into()).to_string().contains("x"));
        assert!(P2pError::UnknownAdvKind("Blob".into())
            .to_string()
            .contains("Blob"));
        assert!(P2pError::MalformedAdvertisement("no id".into())
            .to_string()
            .contains("no id"));
    }
}
