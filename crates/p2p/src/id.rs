//! URN-like identifiers for peers and peer groups.

use std::fmt;
use std::str::FromStr;

/// Identifier of a peer, unique within a Whisper deployment.
///
/// Rendered as `urn:whisper:peer:<n>` on the wire, mirroring JXTA's
/// `urn:jxta:uuid-...` ids without the UUID baggage.
///
/// # Examples
///
/// ```
/// use whisper_p2p::PeerId;
///
/// let p = PeerId::new(7);
/// assert_eq!(p.to_string(), "urn:whisper:peer:7");
/// assert_eq!("urn:whisper:peer:7".parse::<PeerId>().unwrap(), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(u64);

/// Identifier of a peer group.
///
/// Rendered as `urn:whisper:group:<n>` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u64);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Creates an id from its numeric value.
            pub const fn new(v: u64) -> Self {
                $ty(v)
            }

            /// The numeric value.
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl FromStr for $ty {
            type Err = crate::P2pError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let n = s
                    .strip_prefix($prefix)
                    .and_then(|rest| rest.parse::<u64>().ok())
                    .ok_or_else(|| crate::P2pError::BadId(s.to_string()))?;
                Ok($ty(n))
            }
        }

        impl whisper_wire::Encode for $ty {
            fn encode_into(&self, out: &mut Vec<u8>) {
                self.0.encode_into(out);
            }
            fn encoded_len(&self) -> usize {
                self.0.encoded_len()
            }
        }

        impl whisper_wire::Decode for $ty {
            fn decode_from(
                r: &mut whisper_wire::Reader<'_>,
            ) -> Result<Self, whisper_wire::WireError> {
                Ok($ty(u64::decode_from(r)?))
            }
        }
    };
}

/// Identifier of a pipe — a named unidirectional communication channel in
/// the JXTA model. Rendered as `urn:whisper:pipe:<n>` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(u64);

impl_id!(PeerId, "urn:whisper:peer:");
impl_id!(GroupId, "urn:whisper:group:");
impl_id!(PipeId, "urn:whisper:pipe:");

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_wire::{Decode, Encode};

    #[test]
    fn display_parse_round_trip() {
        for n in [0u64, 1, 42, u64::MAX] {
            let p = PeerId::new(n);
            assert_eq!(p.to_string().parse::<PeerId>().unwrap(), p);
            let g = GroupId::new(n);
            assert_eq!(g.to_string().parse::<GroupId>().unwrap(), g);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("peer:1".parse::<PeerId>().is_err());
        assert!("urn:whisper:peer:".parse::<PeerId>().is_err());
        assert!("urn:whisper:peer:abc".parse::<PeerId>().is_err());
        // group prefix is not a peer prefix
        assert!("urn:whisper:group:3".parse::<PeerId>().is_err());
    }

    #[test]
    fn pipe_ids_round_trip() {
        let p = PipeId::new(11);
        assert_eq!(p.to_string(), "urn:whisper:pipe:11");
        assert_eq!("urn:whisper:pipe:11".parse::<PipeId>().unwrap(), p);
        assert!("urn:whisper:peer:11".parse::<PipeId>().is_err());
    }

    #[test]
    fn ordering_follows_value() {
        assert!(PeerId::new(1) < PeerId::new(2));
        assert_eq!(PeerId::new(9).value(), 9);
    }

    #[test]
    fn wire_round_trip() {
        for n in [0u64, 127, 128, u64::MAX] {
            let p = PeerId::new(n);
            assert_eq!(PeerId::decode(&p.encode()).unwrap(), p);
            let g = GroupId::new(n);
            assert_eq!(GroupId::decode(&g.encode()).unwrap(), g);
            let pi = PipeId::new(n);
            assert_eq!(PipeId::decode(&pi.encode()).unwrap(), pi);
        }
    }
}
