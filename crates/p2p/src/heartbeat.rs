//! Heartbeat-based failure detection within b-peer groups.

use crate::PeerId;
use std::collections::BTreeMap;
use whisper_simnet::{SimDuration, SimTime};

/// Tracks last-heard-from times for a set of peers and declares the ones
/// that have been silent longer than the timeout as *suspected*.
///
/// B-peers broadcast [`P2pMessage::Heartbeat`](crate::P2pMessage::Heartbeat)
/// every period; the detector is purely passive bookkeeping, so it works the
/// same on the simulator and the threaded runtime.
///
/// # Examples
///
/// ```
/// use whisper_p2p::{FailureDetector, PeerId};
/// use whisper_simnet::{SimDuration, SimTime};
///
/// let mut fd = FailureDetector::new(SimDuration::from_millis(300));
/// let p = PeerId::new(1);
/// fd.record(p, SimTime::from_micros(0));
/// assert!(fd.suspected(SimTime::from_micros(100_000)).is_empty());
/// assert_eq!(fd.suspected(SimTime::from_micros(400_000)), vec![p]);
/// ```
#[derive(Debug, Clone)]
pub struct FailureDetector {
    timeout: SimDuration,
    last_seen: BTreeMap<PeerId, SimTime>,
}

impl FailureDetector {
    /// Creates a detector that suspects peers silent for longer than
    /// `timeout`.
    pub fn new(timeout: SimDuration) -> Self {
        FailureDetector {
            timeout,
            last_seen: BTreeMap::new(),
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Records a sign of life from `peer` at `now` (heartbeat or any other
    /// message — all traffic proves liveness).
    pub fn record(&mut self, peer: PeerId, now: SimTime) {
        let e = self.last_seen.entry(peer).or_insert(now);
        if *e < now {
            *e = now;
        }
    }

    /// Stops monitoring `peer` (it left the group or was replaced).
    pub fn forget(&mut self, peer: PeerId) {
        self.last_seen.remove(&peer);
    }

    /// Whether `peer` is currently monitored.
    pub fn is_monitored(&self, peer: PeerId) -> bool {
        self.last_seen.contains_key(&peer)
    }

    /// Peers silent for longer than the timeout at `now`, in id order.
    /// A last-seen timestamp at or after `now` counts as alive.
    pub fn suspected(&self, now: SimTime) -> Vec<PeerId> {
        self.last_seen
            .iter()
            .filter(|(_, &seen)| seen < now && now.since(seen) > self.timeout)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Peers considered alive at `now`, in id order.
    pub fn alive(&self, now: SimTime) -> Vec<PeerId> {
        self.last_seen
            .iter()
            .filter(|(_, &seen)| seen >= now || now.since(seen) <= self.timeout)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Number of monitored peers.
    pub fn monitored_count(&self) -> usize {
        self.last_seen.len()
    }

    /// When `peer` was last heard from, if it is monitored.
    pub fn last_seen(&self, peer: PeerId) -> Option<SimTime> {
        self.last_seen.get(&peer).copied()
    }

    /// `(peer, silence)` for every monitored peer at `now`, in id order:
    /// how long each has gone without a sign of life (zero for a last-seen
    /// timestamp at or after `now`). This is the "heartbeat age" column of
    /// an introspection snapshot.
    pub fn ages(&self, now: SimTime) -> Vec<(PeerId, SimDuration)> {
        self.last_seen
            .iter()
            .map(|(&p, &seen)| {
                let silence = if seen >= now {
                    SimDuration::ZERO
                } else {
                    now.since(seen)
                };
                (p, silence)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    fn fd() -> FailureDetector {
        FailureDetector::new(SimDuration::from_millis(100))
    }

    #[test]
    fn fresh_peer_is_alive_then_suspected() {
        let mut d = fd();
        d.record(PeerId::new(1), t(0));
        assert_eq!(d.alive(t(50)), vec![PeerId::new(1)]);
        assert!(d.suspected(t(50)).is_empty());
        // exactly at the timeout boundary still alive
        assert!(d.suspected(t(100)).is_empty());
        assert_eq!(d.suspected(t(101)), vec![PeerId::new(1)]);
        assert!(d.alive(t(101)).is_empty());
    }

    #[test]
    fn heartbeat_refreshes() {
        let mut d = fd();
        let p = PeerId::new(1);
        d.record(p, t(0));
        d.record(p, t(90));
        assert!(d.suspected(t(150)).is_empty());
        // stale updates never move the clock backwards
        d.record(p, t(10));
        assert!(d.suspected(t(150)).is_empty());
        assert_eq!(d.suspected(t(191)), vec![p]);
    }

    #[test]
    fn forget_and_monitoring() {
        let mut d = fd();
        d.record(PeerId::new(1), t(0));
        d.record(PeerId::new(2), t(0));
        assert_eq!(d.monitored_count(), 2);
        assert!(d.is_monitored(PeerId::new(1)));
        d.forget(PeerId::new(1));
        assert!(!d.is_monitored(PeerId::new(1)));
        assert_eq!(d.suspected(t(500)), vec![PeerId::new(2)]);
    }

    #[test]
    fn multiple_peers_sorted_by_id() {
        let mut d = fd();
        d.record(PeerId::new(3), t(0));
        d.record(PeerId::new(1), t(0));
        d.record(PeerId::new(2), t(200));
        let s = d.suspected(t(150));
        assert_eq!(s, vec![PeerId::new(1), PeerId::new(3)]);
    }

    #[test]
    fn future_timestamps_do_not_panic() {
        let mut d = fd();
        d.record(PeerId::new(1), t(1000));
        // now earlier than last-seen (can happen with clamped clocks)
        assert!(d.suspected(t(0)).is_empty());
        assert_eq!(d.alive(t(0)), vec![PeerId::new(1)]);
        assert_eq!(d.ages(t(0)), vec![(PeerId::new(1), SimDuration::ZERO)]);
    }

    #[test]
    fn ages_and_last_seen_expose_the_heartbeat_view() {
        let mut d = fd();
        d.record(PeerId::new(2), t(10));
        d.record(PeerId::new(1), t(40));
        assert_eq!(d.last_seen(PeerId::new(2)), Some(t(10)));
        assert_eq!(d.last_seen(PeerId::new(9)), None);
        assert_eq!(
            d.ages(t(50)),
            vec![
                (PeerId::new(1), SimDuration::from_millis(10)),
                (PeerId::new(2), SimDuration::from_millis(40)),
            ]
        );
    }
}
