//! Property-based coverage of the whisper-wire codec: every message that
//! crosses a link round-trips `decode(encode(m)) == m` for randomly
//! generated trees (including nested `Relayed` envelopes), and corrupted
//! byte streams — truncation, flipped length prefixes, garbage — return
//! typed errors without ever panicking.

use proptest::prelude::*;
use whisper::WhisperMsg;
use whisper_election::ElectionMsg;
use whisper_obs::{
    ElectionView, FlightEvent, FlightEventKind, HistSummary, MetricsDelta, NodeRole, NodeSnapshot,
    OutlierTrace, PulseSpan, RegistryDump,
};
use whisper_p2p::GroupId;
use whisper_p2p::{
    AdvFilter, AdvKind, Advertisement, GroupAdv, P2pMessage, PeerAdv, PeerId, PipeAdv, PipeId,
    QosSpec, SemanticAdv,
};
use whisper_simnet::{Histogram, MetricsSnapshot, SimDuration, SimTime};
use whisper_wire::{
    decode_clocked, encode_clocked_into, read_frame, read_frame_into, write_frame,
    write_frame_vectored, Decode, Encode, WireError,
};
use whisper_xml::QName;

// ---------- generators ----------

/// XML-attribute-safe symbolic names (escaping itself is covered by the
/// whisper-xml property tests; here the subject is the byte codec).
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9 _.-]{0,11}"
}

fn qname_strategy() -> impl Strategy<Value = QName> {
    (
        proptest::option::of("[a-z][a-z:/.]{0,11}"),
        "[A-Za-z_][A-Za-z0-9_.-]{0,8}",
    )
        .prop_map(|(ns, local)| match ns {
            Some(ns) => QName::with_ns(ns, local),
            None => QName::new(local),
        })
}

fn peer_id_strategy() -> impl Strategy<Value = PeerId> {
    (0u64..1 << 40).prop_map(PeerId::new)
}

fn group_id_strategy() -> impl Strategy<Value = GroupId> {
    (0u64..1 << 40).prop_map(GroupId::new)
}

fn qos_strategy() -> impl Strategy<Value = QosSpec> {
    // latency stays below 2^32: the XML attribute goes through an f64
    // parse, which is exact only up to 2^53, and realistic latencies are
    // microseconds anyway. Reliability/cost round-trip via shortest-repr
    // formatting, so any finite value works.
    (0u64..1 << 32, 0.0f64..=1.0, 0.0f64..100.0).prop_map(|(latency_us, reliability, cost)| {
        QosSpec {
            latency_us,
            reliability,
            cost,
        }
    })
}

fn advertisement_strategy() -> impl Strategy<Value = Advertisement> {
    prop_oneof![
        (
            peer_id_strategy(),
            name_strategy(),
            proptest::option::of(group_id_strategy())
        )
            .prop_map(|(peer, name, group)| Advertisement::Peer(PeerAdv {
                peer,
                name,
                group
            })),
        (group_id_strategy(), name_strategy())
            .prop_map(|(group, name)| Advertisement::Group(GroupAdv { group, name })),
        (
            (0u64..1 << 40).prop_map(PipeId::new),
            name_strategy(),
            peer_id_strategy()
        )
            .prop_map(|(pipe, name, owner)| Advertisement::Pipe(PipeAdv {
                pipe,
                name,
                owner
            })),
        (
            group_id_strategy(),
            name_strategy(),
            qname_strategy(),
            proptest::collection::vec(qname_strategy(), 0..4),
            proptest::collection::vec(qname_strategy(), 0..4),
            proptest::option::of(qos_strategy()),
        )
            .prop_map(|(group, name, action, inputs, outputs, qos)| {
                Advertisement::Semantic(SemanticAdv {
                    group,
                    name,
                    action,
                    inputs,
                    outputs,
                    qos,
                })
            }),
    ]
}

fn adv_kind_strategy() -> impl Strategy<Value = AdvKind> {
    prop_oneof![
        Just(AdvKind::Peer),
        Just(AdvKind::Group),
        Just(AdvKind::Semantic),
        Just(AdvKind::Pipe),
    ]
}

fn filter_strategy() -> impl Strategy<Value = AdvFilter> {
    (
        proptest::option::of(adv_kind_strategy()),
        proptest::option::of(name_strategy()),
        proptest::option::of(qname_strategy()),
        proptest::option::of(group_id_strategy()),
    )
        .prop_map(|(kind, name, action, group)| AdvFilter {
            kind,
            name,
            action,
            group,
        })
}

fn p2p_msg_strategy() -> impl Strategy<Value = P2pMessage> {
    prop_oneof![
        (0u64..1 << 48, filter_strategy(), peer_id_strategy())
            .prop_map(|(id, filter, origin)| P2pMessage::Query { id, filter, origin }),
        (
            0u64..1 << 48,
            proptest::collection::vec(advertisement_strategy(), 0..4)
        )
            .prop_map(|(id, advs)| P2pMessage::Response { id, advs }),
        (advertisement_strategy(), 0u64..1 << 48).prop_map(|(adv, lifetime)| {
            P2pMessage::Publish {
                adv,
                lifetime: SimDuration::from_micros(lifetime),
            }
        }),
        (group_id_strategy(), peer_id_strategy())
            .prop_map(|(group, from)| P2pMessage::Heartbeat { group, from }),
    ]
}

fn election_msg_strategy() -> impl Strategy<Value = ElectionMsg> {
    prop_oneof![
        peer_id_strategy().prop_map(|from| ElectionMsg::Election { from }),
        peer_id_strategy().prop_map(|from| ElectionMsg::Answer { from }),
        peer_id_strategy().prop_map(|from| ElectionMsg::Coordinator { from }),
        (
            peer_id_strategy(),
            proptest::collection::vec(peer_id_strategy(), 0..6)
        )
            .prop_map(|(origin, candidates)| ElectionMsg::RingElection { origin, candidates }),
        (peer_id_strategy(), peer_id_strategy()).prop_map(|(origin, coordinator)| {
            ElectionMsg::RingCoordinator {
                origin,
                coordinator,
            }
        }),
    ]
}

fn envelope_strategy() -> impl Strategy<Value = String> {
    // Envelopes travel as opaque length-prefixed text, so arbitrary
    // content (including XML-hostile and non-ASCII characters) is fair.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\u{0}'),
            Just('é'),
            Just('語'),
        ],
        0..64,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1 << 40, 0u64..1 << 40), 0..6)
}

fn metrics_snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
        ),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        proptest::collection::vec((name_strategy(), 0u64..1 << 40), 0..4),
    )
        .prop_map(
            |(
                (sent, delivered, lost, to_down, partitioned, bytes_sent),
                (batch_flushes, frames_coalesced, backpressure_waits, decode_errors),
                by_kind,
            )| {
                MetricsSnapshot {
                    sent,
                    delivered,
                    lost,
                    to_down,
                    partitioned,
                    bytes_sent,
                    batch_flushes,
                    frames_coalesced,
                    backpressure_waits,
                    decode_errors,
                    by_kind,
                }
            },
        )
}

fn registry_dump_strategy() -> impl Strategy<Value = RegistryDump> {
    (
        proptest::collection::vec((name_strategy(), 0u64..1 << 40), 0..4),
        proptest::collection::vec((name_strategy(), -(1i64 << 40)..1 << 40), 0..4),
        proptest::collection::vec(
            (
                name_strategy(),
                0u64..1 << 40,
                0u64..1 << 40,
                (0u64..1 << 40, 0u64..1 << 40),
                proptest::collection::vec((0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40), 0..4),
            )
                .prop_map(|(name, count, sum_us, (min_us, max_us), buckets)| {
                    HistSummary {
                        name,
                        count,
                        sum_us,
                        min_us,
                        max_us,
                        buckets,
                    }
                }),
            0..3,
        ),
        0u64..1 << 40,
    )
        .prop_map(|(counters, gauges, hists, spans_dropped)| RegistryDump {
            counters,
            gauges,
            hists,
            spans_dropped,
        })
}

fn election_view_strategy() -> impl Strategy<Value = ElectionView> {
    (
        proptest::option::of(0u64..1 << 40),
        proptest::arbitrary::any::<bool>(),
        0u64..1 << 40,
        0u64..1 << 40,
        name_strategy(),
    )
        .prop_map(
            |(coordinator, is_coordinator, term, elections_started, phase)| ElectionView {
                coordinator,
                is_coordinator,
                term,
                elections_started,
                phase,
            },
        )
}

fn node_snapshot_strategy() -> impl Strategy<Value = NodeSnapshot> {
    (
        (
            prop_oneof![
                Just(NodeRole::Proxy),
                Just(NodeRole::BPeer),
                Just(NodeRole::Rendezvous)
            ],
            0u64..1 << 40,
            proptest::option::of(0u64..1 << 40),
            proptest::option::of(election_view_strategy()),
        ),
        (
            pairs_strategy(),
            pairs_strategy(),
            0u64..1 << 40,
            metrics_snapshot_strategy(),
            metrics_snapshot_strategy(),
            registry_dump_strategy(),
        ),
    )
        .prop_map(
            |(
                (role, peer, group, election),
                (heartbeat_ages_us, bindings, queue_depth, sent, received, registry),
            )| NodeSnapshot {
                role,
                peer,
                group,
                election,
                heartbeat_ages_us,
                bindings,
                queue_depth,
                sent,
                received,
                registry,
            },
        )
}

fn histogram_strategy() -> impl Strategy<Value = Histogram> {
    // A histogram is defined by what was recorded into it; building from
    // samples exercises the same bucket paths the live recorders use.
    proptest::collection::vec(0u64..1 << 40, 0..16).prop_map(|samples| {
        let mut h = Histogram::new();
        for us in samples {
            h.record(SimDuration::from_micros(us));
        }
        h
    })
}

fn pulse_span_strategy() -> impl Strategy<Value = PulseSpan> {
    (
        0u32..256,
        proptest::option::of(0u32..256),
        name_strategy(),
        0u64..1 << 40,
        0u64..1 << 40,
    )
        .prop_map(|(id, parent, name, start_us, end_us)| PulseSpan {
            id,
            parent,
            name,
            start_us,
            end_us,
        })
}

fn outlier_trace_strategy() -> impl Strategy<Value = OutlierTrace> {
    (
        0u64..1 << 48,
        name_strategy(),
        0u64..1 << 40,
        proptest::collection::vec(pulse_span_strategy(), 0..5),
    )
        .prop_map(|(request, label, total_us, spans)| OutlierTrace {
            request,
            label,
            total_us,
            spans,
        })
}

fn metrics_delta_strategy() -> impl Strategy<Value = MetricsDelta> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        proptest::collection::vec((name_strategy(), 0u64..1 << 40), 0..4),
        proptest::collection::vec((name_strategy(), -(1i64 << 40)..1 << 40), 0..4),
        proptest::collection::vec((name_strategy(), histogram_strategy()), 0..3),
        0u64..1 << 40,
    )
        .prop_map(
            |((seq, now_us, interval_us), counters, gauges, hists, spans_dropped)| MetricsDelta {
                seq,
                now_us,
                interval_us,
                counters,
                gauges,
                hists,
                spans_dropped,
            },
        )
}

fn flight_event_kind_strategy() -> impl Strategy<Value = FlightEventKind> {
    prop_oneof![
        (
            0u64..64,
            name_strategy(),
            0u64..1 << 40,
            proptest::option::of(0u64..1 << 48)
        )
            .prop_map(|(to, kind, bytes, correlation)| FlightEventKind::MsgSend {
                to,
                kind,
                bytes,
                correlation,
            }),
        (
            0u64..64,
            name_strategy(),
            0u64..1 << 40,
            proptest::option::of(0u64..1 << 48),
            0u64..1 << 40,
        )
            .prop_map(|(from, kind, bytes, correlation, sent_clock)| {
                FlightEventKind::MsgRecv {
                    from,
                    kind,
                    bytes,
                    correlation,
                    sent_clock,
                }
            }),
        (
            0u64..1 << 32,
            proptest::option::of(0u64..64),
            name_strategy()
        )
            .prop_map(|(term, coordinator, detail)| FlightEventKind::Election {
                term,
                coordinator,
                detail,
            }),
        (
            name_strategy(),
            0u64..64,
            proptest::arbitrary::any::<bool>()
        )
            .prop_map(|(group, peer, rebind)| FlightEventKind::Bind {
                group,
                peer,
                rebind
            }),
        (0u64..64, 0u64..1 << 40).prop_map(|(peer, last_seen)| FlightEventKind::HeartbeatMiss {
            peer,
            last_seen: SimTime::ZERO + SimDuration::from_micros(last_seen),
        }),
        (0u64..64).prop_map(|peer| FlightEventKind::HeartbeatRestore { peer }),
        name_strategy().prop_map(|action| FlightEventKind::Fault { action }),
        (0u64..1 << 32).prop_map(|depth| FlightEventKind::QueueDepth { depth }),
        (name_strategy(), proptest::arbitrary::any::<bool>())
            .prop_map(|(name, firing)| FlightEventKind::Alert { name, firing }),
    ]
}

fn flight_event_strategy() -> impl Strategy<Value = FlightEvent> {
    (
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..64,
        flight_event_kind_strategy(),
    )
        .prop_map(|(seq, lamport, at, node, kind)| FlightEvent {
            seq,
            lamport,
            at: SimTime::ZERO + SimDuration::from_micros(at),
            node,
            kind,
        })
}

fn whisper_leaf_strategy() -> impl Strategy<Value = WhisperMsg> {
    prop_oneof![
        p2p_msg_strategy().prop_map(WhisperMsg::P2p),
        (group_id_strategy(), election_msg_strategy())
            .prop_map(|(group, msg)| WhisperMsg::Election { group, msg }),
        (0u64..1 << 48, envelope_strategy()).prop_map(|(request_id, envelope)| {
            WhisperMsg::SoapRequest {
                request_id,
                envelope,
            }
        }),
        (0u64..1 << 48, envelope_strategy()).prop_map(|(request_id, envelope)| {
            WhisperMsg::SoapResponse {
                request_id,
                envelope,
            }
        }),
        (
            0u64..1 << 48,
            peer_id_strategy(),
            proptest::arbitrary::any::<bool>(),
            envelope_strategy()
        )
            .prop_map(|(request_id, reply_to, delegated, envelope)| {
                WhisperMsg::PeerRequest {
                    request_id,
                    reply_to,
                    delegated,
                    envelope,
                }
            }),
        (0u64..1 << 48, envelope_strategy()).prop_map(|(request_id, envelope)| {
            WhisperMsg::PeerResponse {
                request_id,
                envelope,
            }
        }),
        (0u64..1 << 48, proptest::option::of(peer_id_strategy())).prop_map(
            |(request_id, coordinator)| WhisperMsg::PeerRedirect {
                request_id,
                coordinator,
            }
        ),
        (0u64..1 << 48).prop_map(|request_id| WhisperMsg::ScopeRequest { request_id }),
        (0u64..1 << 48, node_snapshot_strategy()).prop_map(|(request_id, snapshot)| {
            WhisperMsg::ScopeResponse {
                request_id,
                snapshot: Box::new(snapshot),
            }
        }),
        (
            metrics_delta_strategy(),
            proptest::collection::vec(outlier_trace_strategy(), 0..3),
        )
            .prop_map(|(delta, outliers)| WhisperMsg::PulseReport {
                delta: Box::new(delta),
                outliers,
            }),
        (
            0u64..1 << 48,
            0u64..64,
            proptest::collection::vec(flight_event_strategy(), 0..4),
        )
            .prop_map(|(request_id, node, events)| WhisperMsg::FlightDump {
                request_id,
                node,
                events,
            }),
    ]
}

/// Full message trees: leaves plus up to four levels of `Relayed` nesting.
fn whisper_msg_strategy() -> BoxedStrategy<WhisperMsg> {
    whisper_leaf_strategy().prop_recursive(4, 16, 1, |inner| {
        prop_oneof![
            whisper_leaf_strategy().boxed(),
            (peer_id_strategy(), peer_id_strategy(), inner)
                .prop_map(|(dest, origin, m)| WhisperMsg::Relayed {
                    dest,
                    origin,
                    inner: Box::new(m),
                })
                .boxed(),
        ]
    })
}

// ---------- round-trip properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn whisper_msg_round_trips(m in whisper_msg_strategy()) {
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.encoded_len());
        prop_assert_eq!(WhisperMsg::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn p2p_msg_round_trips(m in p2p_msg_strategy()) {
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.encoded_len());
        prop_assert_eq!(P2pMessage::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn election_msg_round_trips(m in election_msg_strategy()) {
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.encoded_len());
        prop_assert_eq!(ElectionMsg::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn advertisement_round_trips(adv in advertisement_strategy()) {
        prop_assert_eq!(Advertisement::decode(&adv.encode()).unwrap(), adv);
    }

    #[test]
    fn flight_event_round_trips(ev in flight_event_strategy()) {
        let bytes = ev.encode();
        prop_assert_eq!(bytes.len(), ev.encoded_len());
        prop_assert_eq!(FlightEvent::decode(&bytes).unwrap(), ev);
    }

    // ---------- Lamport-clocked frames ----------

    /// A message encoded with a trailing Lamport stamp decodes to the
    /// same message *and* the same stamp.
    #[test]
    fn clocked_frames_round_trip(m in whisper_msg_strategy(), clock in 0u64..1 << 48) {
        let mut bytes = Vec::new();
        encode_clocked_into(&m, clock, &mut bytes);
        let (decoded, got) = decode_clocked::<WhisperMsg>(&bytes).unwrap();
        prop_assert_eq!(decoded, m);
        prop_assert_eq!(got, clock);
    }

    /// Frames written before clocks existed end exactly where the message
    /// does; the clocked decoder must accept them with clock 0 — the
    /// cross-version compatibility contract.
    #[test]
    fn unclocked_frames_decode_with_clock_zero(m in whisper_msg_strategy()) {
        let (decoded, clock) = decode_clocked::<WhisperMsg>(&m.encode()).unwrap();
        prop_assert_eq!(decoded, m);
        prop_assert_eq!(clock, 0);
    }

    /// Truncating a clocked frame anywhere — inside the message or inside
    /// the trailing stamp — errors or yields a different message; never a
    /// panic, and never the original message with a corrupt clock
    /// silently accepted as authoritative.
    #[test]
    fn truncated_clocked_frames_never_panic(
        m in whisper_msg_strategy(),
        clock in 1u64..1 << 48,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        encode_clocked_into(&m, clock, &mut bytes);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        if let Ok((decoded, got)) = decode_clocked::<WhisperMsg>(&bytes[..cut]) {
            // If the original message survives, it can only have come in
            // through the explicit "frame ends at the message" clock-0
            // compatibility path — a truncated stamp must never be
            // accepted as an authoritative nonzero clock.
            if decoded == m {
                prop_assert_eq!(got, 0);
            }
        }
    }

    #[test]
    fn bit_flipped_clocked_frames_never_panic(
        m in whisper_msg_strategy(),
        clock in 0u64..1 << 48,
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        encode_clocked_into(&m, clock, &mut bytes);
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = decode_clocked::<WhisperMsg>(&bytes);
    }

    // ---------- corruption properties: Err, never panic ----------

    #[test]
    fn truncation_never_panics(m in whisper_msg_strategy(), cut in 0usize..128) {
        let bytes = m.encode();
        prop_assume!(cut < bytes.len());
        // A strict prefix can never decode to the same complete message.
        if let Ok(decoded) = WhisperMsg::decode(&bytes[..cut]) {
            prop_assert_ne!(decoded, m);
        }
    }

    #[test]
    fn bit_flips_never_panic(
        m in whisper_msg_strategy(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = m.encode();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        // Must return — Ok with a different message or a typed Err — but
        // never panic or hang.
        let _ = WhisperMsg::decode(&bytes);
    }

    #[test]
    fn flipped_length_prefix_is_rejected(m in whisper_msg_strategy(), bit in 8u8..32) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &m.encode()).unwrap();
        // Flip a high bit of the u32 length prefix so it declares a huge
        // or mismatched payload.
        framed[usize::from(bit / 8)] ^= 1 << (bit % 8);
        let mut cursor = std::io::Cursor::new(framed);
        match read_frame(&mut cursor) {
            // Length now exceeds the bytes present (or the cap): I/O error.
            Err(_) => {}
            Ok(None) => {}
            Ok(Some(payload)) => {
                // Shorter length than the real payload: frame reads, but
                // the truncated payload must not silently decode to `m`.
                if let Ok(decoded) = WhisperMsg::decode(&payload) {
                    prop_assert_ne!(decoded, m);
                }
            }
        }
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..256)) {
        let _ = WhisperMsg::decode(&bytes);
        let _ = P2pMessage::decode(&bytes);
        let _ = ElectionMsg::decode(&bytes);
        let _ = Advertisement::decode(&bytes);
        let _ = AdvFilter::decode(&bytes);
    }

    // ---------- buffer-reuse transport path: no cross-frame bleed ----------

    /// The zero-copy transport loop (encode into a reused scratch buffer,
    /// vectored frame write, read back into a reused payload buffer) must
    /// round-trip arbitrary message sequences exactly — in particular a
    /// short frame following a long one must not retain stale bytes.
    #[test]
    fn reused_buffers_round_trip_message_streams(
        msgs in proptest::collection::vec(whisper_msg_strategy(), 1..8)
    ) {
        let mut stream = Vec::new();
        let mut scratch = Vec::new();
        for m in &msgs {
            scratch.clear();
            m.encode_into(&mut scratch);
            write_frame_vectored(&mut stream, &scratch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        let mut payload = Vec::new();
        for m in &msgs {
            prop_assert!(read_frame_into(&mut cursor, &mut payload).unwrap());
            prop_assert_eq!(&WhisperMsg::decode(&payload).unwrap(), m);
        }
        prop_assert!(!read_frame_into(&mut cursor, &mut payload).unwrap());
    }

    /// Corrupted streams fail identically through the buffer-reuse reader:
    /// truncating a vectored-written frame is an I/O error, never a panic
    /// and never a silent partial frame left in the buffer.
    #[test]
    fn reused_buffer_reader_rejects_truncation(m in whisper_msg_strategy(), cut_frac in 0.0f64..1.0) {
        let mut framed = Vec::new();
        write_frame_vectored(&mut framed, &m.encode()).unwrap();
        let cut = 1 + ((framed.len() - 2) as f64 * cut_frac) as usize;
        let mut cursor = std::io::Cursor::new(&framed[..cut]);
        let mut payload = Vec::new();
        prop_assert!(read_frame_into(&mut cursor, &mut payload).is_err());
    }
}

// ---------- deterministic corruption cases ----------

#[test]
fn deep_relay_chains_error_instead_of_overflowing() {
    // Craft raw bytes for a Relayed chain far past MAX_DEPTH without
    // building the (legitimately un-encodable) message first.
    let mut bytes = Vec::new();
    for _ in 0..10_000 {
        bytes.push(6); // Relayed tag
        1u64.encode_into(&mut bytes); // dest
        2u64.encode_into(&mut bytes); // origin
    }
    bytes.push(7); // PeerRedirect tag
    0u64.encode_into(&mut bytes);
    bytes.push(0); // coordinator: None
    assert_eq!(
        WhisperMsg::decode(&bytes),
        Err(WireError::DepthExceeded(whisper_wire::MAX_DEPTH))
    );
}

#[test]
fn truncated_frame_stream_is_an_io_error() {
    let msg = WhisperMsg::SoapRequest {
        request_id: 9,
        envelope: "<e>hello</e>".into(),
    };
    let mut framed = Vec::new();
    write_frame(&mut framed, &msg.encode()).unwrap();
    for cut in 1..framed.len() {
        let mut cursor = std::io::Cursor::new(&framed[..cut]);
        assert!(
            read_frame(&mut cursor).is_err(),
            "cut at {cut} should be an unexpected-EOF error"
        );
    }
}
