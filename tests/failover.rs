//! Fault-injection integration tests: coordinator crashes, restarts,
//! cascading failures, backend outages and partitions — the behaviours
//! Whisper exists to mask.

use whisper::{StudentRegistry, WhisperNet};
use whisper_simnet::{FaultPlan, SimDuration, SimTime};
use whisper_soap::Envelope;

#[test]
fn coordinator_crash_is_masked_for_the_next_request() {
    let mut net = WhisperNet::student_scenario(3, 200);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    let victim = net.kill_coordinator(0).expect("had a coordinator");
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(15));

    let s = net.client_stats(client);
    assert_eq!(s.completed, 2, "{s:?}");
    assert_eq!(s.faults, 0);
    let new_coord = net.coordinator_of(0).expect("re-elected");
    assert_ne!(new_coord, victim);
    assert!(net.proxy_stats().rebinds >= 1, "{:?}", net.proxy_stats());
}

#[test]
fn cascading_coordinator_failures_until_one_replica_left() {
    let mut net = WhisperNet::student_scenario(4, 201);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    // kill coordinators one after another; each time the service recovers
    for round in 0..3 {
        net.kill_coordinator(0).expect("coordinator exists");
        net.submit_student_request(client, &format!("u100{}", round + 1));
        net.run_for(SimDuration::from_secs(20));
        let s = net.client_stats(client);
        assert_eq!(s.completed as usize, round + 2, "round {round}: {s:?}");
        assert_eq!(s.faults, 0, "round {round}");
    }
    // one lone survivor coordinates itself
    let up: Vec<_> = net
        .group_nodes(0)
        .iter()
        .copied()
        .filter(|&n| net.is_up(n))
        .collect();
    assert_eq!(up.len(), 1);
    assert!(net.bpeer(up[0]).is_coordinator());
}

#[test]
fn restarted_highest_peer_reclaims_coordination() {
    let mut net = WhisperNet::student_scenario(3, 202);
    net.run_for(SimDuration::from_secs(3));
    let original = net.coordinator_of(0).expect("elected");
    let original_node = net.directory().node_of(original).expect("routable");

    net.kill_node(original_node);
    net.run_for(SimDuration::from_secs(10));
    let interim = net.coordinator_of(0).expect("re-elected");
    assert_ne!(interim, original);

    net.restart_node(original_node);
    net.run_for(SimDuration::from_secs(10));
    // the bully reclaims its group
    assert_eq!(net.coordinator_of(0), Some(original));
    // and still serves requests
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1009");
    net.run_for(SimDuration::from_secs(5));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 1);
    assert_eq!(s.faults, 0);
}

#[test]
fn backend_outage_delegates_to_equivalent_replica() {
    // Peer 2 (operational DB, the coordinator) stays up but its database
    // dies; the warehouse replica answers instead. Section 4.1's scenario.
    let mut net = WhisperNet::student_scenario(2, 203);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    // index 1 hosts the data-warehouse replica in student_scenario;
    // index 0 is operational-db... the coordinator is the highest peer,
    // which is the warehouse here (2 peers: db=1, warehouse=2).
    let coord = net.coordinator_of(0).expect("elected");
    let coord_node = net.directory().node_of(coord).expect("routable");
    net.bpeer_mut(coord_node)
        .backend_mut()
        .downcast_mut::<StudentRegistry>()
        .expect("student registry")
        .set_available(false);

    net.submit_student_request(client, "u1004");
    net.run_for(SimDuration::from_secs(5));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 1, "{s:?}");
    assert_eq!(s.faults, 0, "outage must be masked by delegation");
    let resp = net.client_last_response(client).expect("response");
    let env = Envelope::parse(&resp).expect("soap");
    let source = env
        .body_payload()
        .expect("ok")
        .child("Source")
        .expect("provenance")
        .text();
    assert_ne!(
        source,
        net.bpeer(coord_node).backend_label(),
        "the answer must come from the delegate"
    );
}

#[test]
fn whole_group_down_yields_fault_then_recovers_after_restart() {
    let mut net = WhisperNet::student_scenario(2, 204);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    let nodes: Vec<_> = net.group_nodes(0).to_vec();
    for &n in &nodes {
        net.kill_node(n);
    }
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(40));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 2);
    assert_eq!(
        s.faults, 1,
        "total outage must surface as a soap fault: {s:?}"
    );

    for &n in &nodes {
        net.restart_node(n);
    }
    net.run_for(SimDuration::from_secs(5));
    net.submit_student_request(client, "u1002");
    net.run_for(SimDuration::from_secs(10));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 3);
    assert_eq!(s.faults, 1, "after restart the service works again: {s:?}");
}

#[test]
fn scripted_outage_with_fault_plan_is_fully_masked() {
    let mut net = WhisperNet::student_scenario(3, 205);
    let coordinator_node = *net.group_nodes(0).last().expect("non-empty");
    let mut plan = FaultPlan::new();
    plan.crash_at(coordinator_node, SimTime::from_micros(5_000_000));
    plan.restart_at(coordinator_node, SimTime::from_micros(9_000_000));
    plan.crash_at(coordinator_node, SimTime::from_micros(15_000_000));
    plan.restart_at(coordinator_node, SimTime::from_micros(19_000_000));
    net.apply_faults(&plan);

    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    let mut submitted = 0u64;
    for i in 0..22 {
        net.submit_student_request(client, &format!("u100{}", i % 10));
        submitted += 1;
        net.run_for(SimDuration::from_secs(1));
    }
    net.run_for(SimDuration::from_secs(20));
    let s = net.client_stats(client);
    assert_eq!(s.completed, submitted, "{s:?}");
    assert_eq!(s.faults, 0, "two crash/restart cycles fully masked: {s:?}");
}

#[test]
fn partition_between_proxy_and_group_heals() {
    let mut net = WhisperNet::student_scenario(2, 206);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    // cut the proxy off from every b-peer for 5 seconds
    let proxy = net.proxy_node();
    let peers: Vec<_> = net.group_nodes(0).to_vec();
    let now = net.now();
    let mut plan = FaultPlan::new();
    plan.partition_between(&[proxy], &peers, now, now + SimDuration::from_secs(5));
    net.apply_faults(&plan);

    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(40));
    let s = net.client_stats(client);
    // the request either survived the partition via retries or faulted;
    // either way the system stays live and the *next* request succeeds
    assert_eq!(s.completed, 2, "{s:?}");
    net.submit_student_request(client, "u1002");
    net.run_for(SimDuration::from_secs(10));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 3);
    assert!(s.faults <= 1);
}

#[test]
fn election_traffic_stays_quiet_without_failures() {
    let mut net = WhisperNet::student_scenario(5, 207);
    net.run_for(SimDuration::from_secs(3));
    net.reset_metrics();
    net.run_for(SimDuration::from_secs(30));
    let m = net.metrics();
    assert_eq!(
        m.sent_of_kind("election"),
        0,
        "no elections without failures"
    );
    assert_eq!(m.sent_of_kind("coordinator"), 0);
    assert!(m.sent_of_kind("heartbeat") > 0);
}

#[test]
fn every_member_converges_on_the_same_coordinator_after_churn() {
    let mut net = WhisperNet::student_scenario(5, 208);
    net.run_for(SimDuration::from_secs(3));
    // churn: crash two highest, restart one
    let n5 = net.group_nodes(0)[4];
    let n4 = net.group_nodes(0)[3];
    net.kill_node(n5);
    net.run_for(SimDuration::from_secs(8));
    net.kill_node(n4);
    net.run_for(SimDuration::from_secs(8));
    net.restart_node(n5);
    net.run_for(SimDuration::from_secs(8));

    let beliefs: Vec<_> = net
        .group_nodes(0)
        .iter()
        .filter(|&&n| net.is_up(n))
        .map(|&n| net.bpeer(n).coordinator())
        .collect();
    assert!(
        beliefs.iter().all(|b| *b == beliefs[0] && b.is_some()),
        "divergent coordinator beliefs: {beliefs:?}"
    );
    // the restarted highest peer rules again
    assert_eq!(
        net.coordinator_of(0),
        net.directory().peer_of(n5),
        "highest live peer must coordinate"
    );
}

#[test]
fn bpeers_joining_at_runtime_raise_availability() {
    // Start with a single replica — the fragile baseline.
    let mut net = WhisperNet::student_scenario(1, 210);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(2));
    assert_eq!(net.client_stats(client).completed, 1);

    // Two more replicas join the running group (paper §4.2: "dynamically
    // increasing the level of availability").
    let n2 = net.add_bpeer(
        0,
        Box::new(StudentRegistry::data_warehouse().with_sample_data()),
    );
    let n3 = net.add_bpeer(
        0,
        Box::new(StudentRegistry::operational_db().with_sample_data()),
    );
    net.run_for(SimDuration::from_secs(5));

    // The newest (highest) peer bullied its way to coordinator, and every
    // member converged on it, including the original.
    let coord = net.coordinator_of(0).expect("coordinator exists");
    assert_eq!(net.directory().node_of(coord), Some(n3));
    for &n in net.group_nodes(0) {
        assert_eq!(
            net.bpeer(n).coordinator(),
            Some(coord),
            "node {n} disagrees"
        );
        assert_eq!(net.bpeer(n).members().len(), 3, "node {n} membership");
    }

    // The original lone replica can now die without an outage.
    let original = net.group_nodes(0)[0];
    net.kill_node(original);
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(15));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 2, "{s:?}");
    assert_eq!(s.faults, 0, "join must have raised availability: {s:?}");
    let _ = n2;
}
