//! End-to-end integration tests: a full Whisper deployment — semantic Web
//! service, SWS-proxy, semantic discovery, b-peer groups, Bully election,
//! SOAP messaging — exercised through the public API only.

use whisper::{
    ClientConfigTemplate, DeploymentConfig, EchoBackend, GroupSpec, ServiceBackend,
    StudentRegistry, WhisperNet, Workload,
};
use whisper_p2p::PeerId;
use whisper_simnet::SimDuration;
use whisper_soap::{Envelope, FaultCode};
use whisper_xml::Element;

fn student_req(id: &str) -> Element {
    let mut p = Element::new("StudentInformation");
    p.push_child(Element::with_text("StudentID", id));
    p
}

#[test]
fn request_flows_through_the_whole_stack() {
    let mut net = WhisperNet::student_scenario(3, 100);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1006");
    net.run_for(SimDuration::from_secs(2));

    let response = net.client_last_response(client).expect("response arrived");
    let env = Envelope::parse(&response).expect("well-formed SOAP");
    let payload = env.body_payload().expect("not a fault");
    assert_eq!(payload.name, "StudentInfo");
    assert_eq!(
        payload.child("StudentID").expect("id echoed").text(),
        "u1006"
    );
    assert_eq!(
        payload.child("Name").expect("record found").text(),
        "Student Number 6"
    );

    // exactly one replica did the work — the coordinator
    let handled: Vec<u64> = net
        .group_nodes(0)
        .iter()
        .map(|&n| net.bpeer(n).requests_handled())
        .collect();
    assert_eq!(handled.iter().sum::<u64>(), 1, "{handled:?}");
    let coord = net.coordinator_of(0).expect("coordinator exists");
    let coord_node = net.directory().node_of(coord).expect("routable");
    assert_eq!(net.bpeer(coord_node).requests_handled(), 1);
}

#[test]
fn unknown_student_yields_sender_fault_not_crash() {
    let mut net = WhisperNet::student_scenario(2, 101);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "no-such-student");
    net.run_for(SimDuration::from_secs(2));

    let env = Envelope::parse(&net.client_last_response(client).expect("response")).expect("soap");
    let fault = env.as_fault().expect("application error is a soap fault");
    assert_eq!(fault.code, FaultCode::Sender);
    assert!(fault.reason.contains("not found"), "{}", fault.reason);
    assert_eq!(net.client_stats(client).faults, 1);
}

#[test]
fn unknown_operation_yields_sender_fault() {
    let mut net = WhisperNet::student_scenario(2, 102);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    let mut bogus = Element::new("LaunchMissiles");
    bogus.push_child(Element::with_text("Target", "moon"));
    net.submit_request(client, bogus);
    net.run_for(SimDuration::from_secs(2));

    let env = Envelope::parse(&net.client_last_response(client).expect("response")).expect("soap");
    let fault = env.as_fault().expect("fault");
    assert_eq!(fault.code, FaultCode::Sender);
    assert!(fault.reason.contains("LaunchMissiles"), "{}", fault.reason);
}

#[test]
fn steady_state_request_costs_four_messages() {
    // client→proxy, proxy→coordinator, coordinator→proxy, proxy→client
    let mut net = WhisperNet::student_scenario(3, 103);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    // warm the bindings
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    net.reset_metrics();
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(1));
    let m = net.metrics();
    assert_eq!(m.sent_of_kind("soap-request"), 1);
    assert_eq!(m.sent_of_kind("peer-request"), 1);
    assert_eq!(m.sent_of_kind("peer-response"), 1);
    assert_eq!(m.sent_of_kind("soap-response"), 1);
    assert_eq!(
        m.sent_of_kind("discovery-query"),
        0,
        "warm path must skip discovery"
    );
}

#[test]
fn warm_binding_request_is_zero_copy_and_skips_semantic_matching() {
    // The steady-state hot path: once the proxy has discovered the group
    // and memoized the semantic ranking, a repeat request must perform no
    // discovery-cache clone and no ontology matching pass at all — the
    // memo answers from borrowed state.
    let mut net = WhisperNet::student_scenario(3, 104);
    let rec = net.enable_obs();
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    // Request 1 populates the discovery cache (epoch moves as responses
    // arrive); request 2 rebuilds the memo against the settled epoch.
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(1));

    let clones_before = rec.counter("discovery.cache_clones");
    let matches_before = rec.counter("proxy.semantic_matches");
    let hits_before = rec.counter("proxy.memo_hits");

    net.submit_student_request(client, "u1002");
    net.run_for(SimDuration::from_secs(1));

    let env = Envelope::parse(&net.client_last_response(client).expect("response")).expect("soap");
    assert!(!env.is_fault(), "warm request must succeed");
    assert_eq!(
        rec.counter("discovery.cache_clones"),
        clones_before,
        "warm path must not clone the discovery cache"
    );
    assert_eq!(
        rec.counter("proxy.semantic_matches"),
        matches_before,
        "warm path must not run ontology matching"
    );
    assert!(
        rec.counter("proxy.memo_hits") > hits_before,
        "warm path must answer from the semantic-match memo"
    );
}

#[test]
fn multiple_clients_share_the_service() {
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..3)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let client_tpl = |n: u64| ClientConfigTemplate {
        workload: Workload::Closed {
            think: SimDuration::from_millis(50),
            window: 1,
        },
        payloads: vec![student_req(&format!("u100{n}"))],
        total: Some(20),
        timeout: SimDuration::from_secs(10),
        warmup: SimDuration::from_secs(2),
    };
    let cfg = DeploymentConfig {
        seed: 104,
        service,
        groups: vec![GroupSpec::from_operation("G", &op, backends)],
        clients: vec![client_tpl(1), client_tpl(2), client_tpl(3)],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(20));
    for &c in net.client_ids() {
        let s = net.client_stats(c);
        assert_eq!(s.completed, 20, "client {c} stats {s:?}");
        assert_eq!(s.faults, 0);
    }
}

#[test]
fn rendezvous_deployment_serves_requests() {
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..3)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let cfg = DeploymentConfig {
        seed: 105,
        service,
        groups: vec![GroupSpec::from_operation("G", &op, backends)],
        use_rendezvous: true,
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    assert!(net.rendezvous_node().is_some());
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1002");
    net.run_for(SimDuration::from_secs(2));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 1);
    assert_eq!(s.faults, 0);
    // the cold query went to the rendezvous only
    assert!(net.metrics().sent_of_kind("discovery-query") <= 2);
}

#[test]
fn two_services_in_one_ontology_do_not_cross_talk() {
    // Two groups with different semantics; requests route to the right one.
    let service = whisper_wsdl::samples::student_management();
    let info_op = service.operation("StudentInformation").expect("op").clone();
    let transcript_op = service.operation("StudentTranscript").expect("op").clone();
    let mk = || -> Vec<Box<dyn ServiceBackend>> {
        vec![
            Box::new(StudentRegistry::operational_db().with_sample_data()),
            Box::new(StudentRegistry::operational_db().with_sample_data()),
        ]
    };
    let cfg = DeploymentConfig {
        seed: 106,
        service,
        groups: vec![
            GroupSpec::from_operation("InfoGroup", &info_op, mk()),
            GroupSpec::from_operation("TranscriptGroup", &transcript_op, mk()),
        ],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    let mut treq = Element::new("StudentTranscript");
    treq.push_child(Element::with_text("StudentID", "u1003"));
    net.submit_request(client, treq);
    net.run_for(SimDuration::from_secs(2));
    let env = Envelope::parse(&net.client_last_response(client).expect("response")).expect("soap");
    assert_eq!(env.body_payload().expect("ok").name, "StudentTranscript");

    // only the transcript group worked
    let info_handled: u64 = net
        .group_nodes(0)
        .iter()
        .map(|&n| net.bpeer(n).requests_handled())
        .sum();
    let transcript_handled: u64 = net
        .group_nodes(1)
        .iter()
        .map(|&n| net.bpeer(n).requests_handled())
        .sum();
    assert_eq!(info_handled, 0);
    assert_eq!(transcript_handled, 1);
}

#[test]
fn semantically_equivalent_group_is_matched_via_subsumption() {
    // The deployed group advertises *more specific* output and action
    // concepts than the service requests — Subsume matches (the semantic
    // generalization plain name-matching could never find).
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let ns = whisper_ontology::samples::UNIVERSITY_NS;
    let backends: Vec<Box<dyn ServiceBackend>> = vec![Box::new(EchoBackend), Box::new(EchoBackend)];
    let mut group = GroupSpec::from_operation("WarehouseGroup", &op, backends);
    group.action = whisper_xml::QName::with_ns(ns, "StudentTranscriptRetrieval");
    group.outputs = vec![whisper_xml::QName::with_ns(ns, "StudentTranscript")];
    let cfg = DeploymentConfig {
        seed: 107,
        service,
        groups: vec![group],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(3));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 1, "subsuming group should serve the request");
    assert_eq!(s.faults, 0);
}

#[test]
fn mismatched_group_produces_receiver_fault() {
    // The only group deployed serves a *different* action: no semantic
    // match exists and the proxy must answer with a Receiver fault.
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let ns = whisper_ontology::samples::UNIVERSITY_NS;
    let backends: Vec<Box<dyn ServiceBackend>> = vec![Box::new(EchoBackend)];
    let mut group = GroupSpec::from_operation("EnrollmentGroup", &op, backends);
    group.action = whisper_xml::QName::with_ns(ns, "EnrollmentUpdate");
    let mut cfg = DeploymentConfig {
        seed: 108,
        service,
        groups: vec![group],
        ..DeploymentConfig::default()
    };
    cfg.proxy.request_timeout = SimDuration::from_millis(800);
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(5));

    let env = Envelope::parse(&net.client_last_response(client).expect("response")).expect("soap");
    let fault = env.as_fault().expect("no match must fault");
    assert_eq!(fault.code, FaultCode::Receiver);
}

#[test]
fn peer_ids_and_directory_are_consistent() {
    let net = WhisperNet::student_scenario(4, 109);
    let dir = net.directory();
    // 4 b-peers + 1 proxy
    assert_eq!(dir.len(), 5);
    for &n in net.group_nodes(0) {
        let p = dir.peer_of(n).expect("b-peers have peer ids");
        assert_eq!(dir.node_of(p), Some(n));
        assert_eq!(net.bpeer(n).peer_id(), p);
    }
    // clients have no peer identity
    assert_eq!(dir.peer_of(net.client_ids()[0]), None);
    assert_eq!(net.group_count(), 1);
    assert_eq!(net.group_id(0).value(), 1);
}

#[test]
fn deterministic_replay_of_a_full_deployment() {
    let run = |seed: u64| {
        let mut net = WhisperNet::student_scenario(3, seed);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1001");
        net.run_for(SimDuration::from_secs(2));
        (
            net.metrics().messages_sent(),
            net.metrics().bytes_sent(),
            // min/max are exact even in the bucketed histogram; nearby
            // samples could share a log bucket across seeds
            net.client_stats(client).rtt.min(),
        )
    };
    assert_eq!(run(42), run(42));
    // Counts are jitter-independent in a fixed scenario, but latencies are
    // not: a different seed must produce different RTT samples.
    assert_ne!(run(42).2, run(43).2);
}

#[test]
fn load_shared_group_spreads_work() {
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let backends: Vec<Box<dyn ServiceBackend>> =
        (0..3).map(|_| Box::new(EchoBackend) as _).collect();
    let cfg = DeploymentConfig {
        seed: 110,
        service,
        groups: vec![GroupSpec::from_operation("G", &op, backends)],
        bpeer: whisper::BPeerConfig {
            load_share: true,
            ..Default::default()
        },
        clients: vec![ClientConfigTemplate {
            workload: Workload::Closed {
                think: SimDuration::from_millis(10),
                window: 1,
            },
            payloads: vec![student_req("u1000")],
            total: Some(30),
            timeout: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(10));
    assert_eq!(net.client_stats(net.client_ids()[0]).completed, 30);
    let handled: Vec<u64> = net
        .group_nodes(0)
        .iter()
        .map(|&n| net.bpeer(n).requests_handled())
        .collect();
    assert_eq!(handled.iter().sum::<u64>(), 30);
    assert!(
        handled.iter().all(|&h| h >= 5),
        "load sharing should spread work: {handled:?}"
    );
    let _ = PeerId::new(0); // silence unused import lint paths on some cfgs
}

#[test]
fn coordinator_binds_the_group_request_pipe() {
    let mut net = WhisperNet::student_scenario(3, 111);
    net.run_for(SimDuration::from_secs(3));
    let coord = net.coordinator_of(0).expect("elected");
    let coord_node = net.directory().node_of(coord).expect("routable");
    let adv = net
        .bpeer(coord_node)
        .discovery()
        .resolve_pipe("StudentInfoGroup-requests", net.now())
        .expect("coordinator bound the pipe");
    assert_eq!(adv.owner, coord);

    // after failover the NEW coordinator rebinds the same pipe
    net.kill_coordinator(0);
    net.run_for(SimDuration::from_secs(10));
    let new_coord = net.coordinator_of(0).expect("re-elected");
    assert_ne!(new_coord, coord);
    let new_node = net.directory().node_of(new_coord).expect("routable");
    let adv = net
        .bpeer(new_node)
        .discovery()
        .resolve_pipe("StudentInfoGroup-requests", net.now())
        .expect("pipe rebound");
    assert_eq!(adv.owner, new_coord);
}

#[test]
fn firewalled_bpeers_require_a_rendezvous() {
    let cfg = whisper::DeploymentConfig {
        firewall_bpeers: true,
        use_rendezvous: false,
        groups: vec![GroupSpec::from_operation(
            "G",
            whisper_wsdl::samples::student_management()
                .operation("StudentInformation")
                .expect("op"),
            vec![Box::new(EchoBackend)],
        )],
        ..whisper::DeploymentConfig::default()
    };
    assert!(matches!(
        WhisperNet::build(cfg),
        Err(whisper::WhisperError::BadDeployment(_))
    ));
}

#[test]
fn firewalled_deployment_serves_requests_without_leaks() {
    let service = whisper_wsdl::samples::student_management();
    let op = service.operation("StudentInformation").expect("op").clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..3)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let cfg = whisper::DeploymentConfig {
        seed: 112,
        service,
        groups: vec![GroupSpec::from_operation("G", &op, backends)],
        use_rendezvous: true,
        firewall_bpeers: true,
        ..whisper::DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    // the group still elects across the relay
    assert!(net.coordinator_of(0).is_some());
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(3));
    let s = net.client_stats(client);
    assert_eq!(s.completed, 1);
    assert_eq!(s.faults, 0);
    // every message respected the firewall
    assert_eq!(net.metrics().messages_partitioned(), 0);
    // and relaying actually happened
    assert!(net.metrics().sent_of_kind("relayed") > 0);
}

#[test]
fn ontology_alignment_bridges_foreign_vocabulary_groups() {
    // Mirror of the cross_organization example: a b-peer group advertising
    // in a partner vocabulary only matches after import + equivalences.
    use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
    use whisper_ontology::Ontology;
    use whisper_xml::QName;

    const PARTNER_NS: &str = "urn:test:partner";
    let mut partner = Ontology::new(PARTNER_NS);
    let acao = partner.add_class("Acao", &[]).expect("fresh");
    partner
        .add_class("ConsultaDeAluno", &[acao])
        .expect("fresh");
    partner.add_class("Matricula", &[]).expect("fresh");
    partner.add_class("FichaDoAluno", &[]).expect("fresh");

    let group = || {
        let q = |l: &str| QName::with_ns(PARTNER_NS, l);
        GroupSpec {
            name: "GrupoConsulta".into(),
            action: q("ConsultaDeAluno"),
            inputs: vec![q("Matricula")],
            outputs: vec![q("FichaDoAluno")],
            qos: None,
            processing_time: None,
            backends: vec![Box::new(
                StudentRegistry::operational_db().with_sample_data(),
            )],
        }
    };
    let run = |ontology: Ontology| -> (u64, u64) {
        let mut cfg = DeploymentConfig {
            seed: 300,
            ontology,
            groups: vec![group()],
            ..DeploymentConfig::default()
        };
        cfg.proxy.request_timeout = SimDuration::from_millis(600);
        let mut net = WhisperNet::build(cfg).expect("valid deployment");
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1000");
        net.run_for(SimDuration::from_secs(5));
        let s = net.client_stats(client);
        (s.completed, s.faults)
    };

    // without alignment: no semantic match -> fault
    assert_eq!(run(university_ontology()), (1, 1));

    // with alignment: Exact matches across vocabularies -> served
    let mut aligned = university_ontology();
    aligned.import(&partner).expect("no collisions");
    let bridge = |o: &mut Ontology, a: &str, b: &str| {
        let ca = o
            .class_by_qname(&QName::with_ns(UNIVERSITY_NS, a))
            .expect("known");
        let cb = o
            .class_by_qname(&QName::with_ns(PARTNER_NS, b))
            .expect("imported");
        o.add_equivalence(ca, cb).expect("valid");
    };
    bridge(&mut aligned, "StudentInformation", "ConsultaDeAluno");
    bridge(&mut aligned, "StudentID", "Matricula");
    bridge(&mut aligned, "StudentInfo", "FichaDoAluno");
    assert_eq!(run(aligned), (1, 0));
}
