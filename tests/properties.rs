//! Property-based tests over the whole stack: XML round-tripping, ontology
//! subsumption laws, matchmaker symmetries, SOAP envelopes, advertisement
//! serialization, histogram percentiles and Bully-election safety under
//! arbitrary crash patterns.

use proptest::prelude::*;
use whisper_election::{BullyConfig, BullyNode, ElectionProtocol};
use whisper_ontology::{MatchDegree, Ontology};
use whisper_p2p::{Advertisement, GroupId, PeerId, QosSpec, SemanticAdv};
use whisper_simnet::{Histogram, SimDuration, SimTime};
use whisper_soap::Envelope;
use whisper_xml::{parse, Element, QName};

// ---------- generators ----------

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,8}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // includes XML-hostile characters
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('\n'),
            Just('é'),
            Just('語'),
        ],
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn leaf_element() -> impl Strategy<Value = Element> {
    (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v);
            }
            if let Some(t) = text {
                if !t.is_empty() {
                    e.push_text(t);
                }
            }
            e
        })
}

fn element_strategy() -> impl Strategy<Value = Element> {
    leaf_element().prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                for c in children {
                    e.push_child(c);
                }
                e
            })
    })
}

/// A random DAG ontology: class `i` gets parents drawn from `0..i`.
fn ontology_strategy() -> impl Strategy<Value = Ontology> {
    proptest::collection::vec(
        proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        1..24,
    )
    .prop_map(|parent_picks| {
        let mut o = Ontology::new("urn:prop");
        for (i, picks) in parent_picks.iter().enumerate() {
            let existing: Vec<_> = o.class_ids().collect();
            let mut parents = Vec::new();
            if i > 0 {
                for pick in picks {
                    let p = existing[pick.index(existing.len())];
                    if !parents.contains(&p) {
                        parents.push(p);
                    }
                }
            }
            o.add_class(&format!("C{i}"), &parents)
                .expect("fresh name, acyclic by construction");
        }
        o
    })
}

// ---------- XML ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xml_print_parse_round_trip(e in element_strategy()) {
        let text = e.to_xml();
        let back = parse(&text).expect("own output must parse");
        prop_assert_eq!(e, back);
    }

    #[test]
    fn xml_escape_unescape_identity(s in text_strategy()) {
        prop_assert_eq!(whisper_xml::unescape(&whisper_xml::escape_text(&s)), s.clone());
        prop_assert_eq!(whisper_xml::unescape(&whisper_xml::escape_attr(&s)), s);
    }

    #[test]
    fn qname_clark_round_trip(ns in proptest::option::of("[a-z:/.]{1,12}"), local in name_strategy()) {
        let q = match ns {
            Some(ns) => QName::with_ns(ns, local),
            None => QName::new(local),
        };
        prop_assert_eq!(QName::from_clark(&q.to_clark()), Some(q));
    }

    #[test]
    fn soap_envelope_round_trip(payload in element_strategy()) {
        let env = Envelope::request(payload);
        let back = Envelope::parse(&env.to_xml_string()).expect("valid envelope");
        prop_assert_eq!(env, back);
    }
}

// ---------- ontology laws ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn subsumption_is_a_partial_order(o in ontology_strategy()) {
        let ids: Vec<_> = o.class_ids().collect();
        // reflexive
        for &a in &ids {
            prop_assert!(o.is_subclass_of(a, a));
        }
        // antisymmetric (DAG: no distinct mutual subsumption)
        for &a in &ids {
            for &b in &ids {
                if a != b && o.is_subclass_of(a, b) {
                    prop_assert!(!o.is_subclass_of(b, a), "cycle {:?} <-> {:?}", a, b);
                }
            }
        }
        // transitive
        for &a in &ids {
            for &b in &ids {
                if a == b || !o.is_subclass_of(a, b) { continue; }
                for &c in &ids {
                    if o.is_subclass_of(b, c) {
                        prop_assert!(o.is_subclass_of(a, c), "{:?}izin {:?} izin {:?}", a, b, c);
                    }
                }
            }
        }
    }

    #[test]
    fn ancestors_agree_with_subsumption(o in ontology_strategy()) {
        for a in o.class_ids() {
            let anc = o.ancestors(a);
            for b in o.class_ids() {
                let in_anc = anc.contains(&b);
                let subsumes = a != b && o.is_subclass_of(a, b);
                prop_assert_eq!(in_anc, subsumes);
            }
        }
    }

    #[test]
    fn lca_is_a_common_subsumer_of_maximal_depth(o in ontology_strategy()) {
        let ids: Vec<_> = o.class_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if let Some(l) = o.lca(a, b) {
                    prop_assert!(o.is_subclass_of(a, l));
                    prop_assert!(o.is_subclass_of(b, l));
                    // no strictly deeper common subsumer exists
                    for &c in &ids {
                        if o.is_subclass_of(a, c) && o.is_subclass_of(b, c) {
                            prop_assert!(o.depth(c) <= o.depth(l));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn match_degree_duality(o in ontology_strategy()) {
        // Subsume(a, b) <=> PlugIn(b, a); Exact <=> identity; Fail symmetric.
        let ids: Vec<_> = o.class_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let ab = o.match_concepts(a, b);
                let ba = o.match_concepts(b, a);
                match ab {
                    MatchDegree::Exact => prop_assert_eq!(a, b),
                    MatchDegree::Subsume => prop_assert_eq!(ba, MatchDegree::PlugIn),
                    MatchDegree::PlugIn => prop_assert_eq!(ba, MatchDegree::Subsume),
                    MatchDegree::Fail => prop_assert_eq!(ba, MatchDegree::Fail),
                }
            }
        }
    }

    #[test]
    fn similarity_is_symmetric_and_bounded(o in ontology_strategy()) {
        let ids: Vec<_> = o.class_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let s = o.similarity(a, b);
                prop_assert!((0.0..=1.0).contains(&s), "similarity {}", s);
                prop_assert_eq!(s, o.similarity(b, a));
                if a == b {
                    prop_assert_eq!(s, 1.0);
                }
            }
        }
    }

    #[test]
    fn ontology_xml_round_trip(o in ontology_strategy()) {
        let text = o.to_xml().to_xml();
        let back = Ontology::from_xml(&parse(&text).expect("valid xml")).expect("valid ontology");
        prop_assert_eq!(o, back);
    }
}

// ---------- advertisements ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn semantic_advertisement_round_trip(
        group in 0u64..1000,
        name in name_strategy(),
        concepts in proptest::collection::vec(name_strategy(), 1..5),
        qos in proptest::option::of((0u64..100_000, 0.0f64..=1.0, 0.0f64..10.0)),
    ) {
        let q = |l: &str| QName::with_ns("urn:prop", l);
        let adv = Advertisement::Semantic(SemanticAdv {
            group: GroupId::new(group),
            name,
            action: q(&concepts[0]),
            inputs: concepts.iter().skip(1).map(|c| q(c)).collect(),
            outputs: vec![q(&concepts[0])],
            qos: qos.map(|(latency_us, reliability, cost)| QosSpec { latency_us, reliability, cost }),
        });
        let back = Advertisement::parse(&adv.to_xml_string()).expect("valid adv");
        prop_assert_eq!(adv, back);
    }
}

// ---------- histograms ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_percentiles_are_monotone_and_anchored(
        mut samples in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_micros(s));
        }
        samples.sort_unstable();
        prop_assert_eq!(h.min(), Some(SimDuration::from_micros(samples[0])));
        prop_assert_eq!(
            h.max(),
            Some(SimDuration::from_micros(*samples.last().expect("non-empty")))
        );
        prop_assert_eq!(h.percentile(0.0), h.min());
        prop_assert_eq!(h.percentile(100.0), h.max());
        let mut prev = SimDuration::ZERO;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p).expect("non-empty");
            prop_assert!(v >= prev, "percentiles must be monotone");
            prev = v;
        }
        // mean is within [min, max]
        let mean = h.mean().expect("non-empty");
        prop_assert!(mean >= h.min().expect("min") && mean <= h.max().expect("max"));
    }
}

// ---------- bully election safety ----------

/// A deterministic synchronous pump for a set of BullyNodes with a subset
/// of dead peers: messages deliver instantly, timers fire in order. Models
/// the asynchronous system conservatively enough for safety checking.
fn pump_bully(n: usize, dead: &[usize], initiators: &[usize]) -> Vec<Option<PeerId>> {
    let peers: Vec<PeerId> = (1..=n as u64).map(PeerId::new).collect();
    let mut nodes: Vec<BullyNode> = peers
        .iter()
        .map(|&p| BullyNode::new(p, peers.iter().copied(), BullyConfig::default()))
        .collect();
    let is_dead = |i: usize| dead.contains(&i);

    let mut now = SimTime::ZERO + SimDuration::from_secs(10);
    let mut inbox: Vec<(usize, PeerId, whisper_election::ElectionMsg)> = Vec::new();
    let mut timers: Vec<(SimTime, usize, u64)> = Vec::new();

    fn handle_output(
        i: usize,
        out: whisper_election::Output,
        inbox: &mut Vec<(usize, PeerId, whisper_election::ElectionMsg)>,
        timers: &mut Vec<(SimTime, usize, u64)>,
        now: SimTime,
    ) {
        for (to, msg) in out.sends {
            let to_idx = (to.value() - 1) as usize;
            inbox.push((to_idx, PeerId::new(i as u64 + 1), msg));
        }
        for t in out.timers {
            timers.push((now + t.delay, i, t.token));
        }
    }

    for &initiator in initiators {
        let out = nodes[initiator].start_election(now);
        handle_output(initiator, out, &mut inbox, &mut timers, now);
    }

    for _ in 0..100_000 {
        if let Some((to, from, msg)) = inbox.pop() {
            if !is_dead(to) {
                let out = nodes[to].on_message(from, msg, now);
                handle_output(to, out, &mut inbox, &mut timers, now);
            }
            continue;
        }
        // no messages in flight: fire the earliest timer
        if timers.is_empty() {
            break;
        }
        timers.sort_by_key(|(at, _, _)| *at);
        let (at, i, token) = timers.remove(0);
        if at > now {
            now = at;
        }
        if !is_dead(i) {
            let out = nodes[i].on_timer(token, now);
            handle_output(i, out, &mut inbox, &mut timers, now);
        }
    }
    nodes
        .iter()
        .enumerate()
        .map(|(i, nd)| if is_dead(i) { None } else { nd.coordinator() })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bully_elects_the_highest_live_peer_under_any_crash_pattern(
        n in 2usize..10,
        dead_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
        init_picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let mut dead: Vec<usize> = dead_picks.iter().map(|p| p.index(n)).collect();
        dead.sort_unstable();
        dead.dedup();
        let live: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();
        prop_assume!(!live.is_empty());
        // several peers may detect the failure and start elections at once
        let mut initiators: Vec<usize> =
            init_picks.iter().map(|p| live[p.index(live.len())]).collect();
        initiators.sort_unstable();
        initiators.dedup();
        let expected = PeerId::new(*live.last().expect("non-empty") as u64 + 1);

        let beliefs = pump_bully(n, &dead, &initiators);
        for &i in &live {
            prop_assert_eq!(
                beliefs[i],
                Some(expected),
                "live node {} should settle on the highest live peer; beliefs: {:?}, dead: {:?}",
                i, beliefs, dead
            );
        }
    }
}

// ---------- full-stack smoke property ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_seed_any_size_serves_a_request(seed in 0u64..1000, n in 1usize..6) {
        let mut net = whisper::WhisperNet::student_scenario(n, seed);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        net.submit_student_request(client, "u1005");
        net.run_for(SimDuration::from_secs(3));
        let s = net.client_stats(client);
        prop_assert_eq!(s.completed, 1);
        prop_assert_eq!(s.faults, 0);
    }
}

// ---------- ring election safety ----------

/// Synchronous pump for RingNodes with updated membership (the dead peers
/// removed, as the failure detector would have done).
fn pump_ring(n: usize, dead: &[usize], initiator: usize) -> Vec<Option<PeerId>> {
    use whisper_election::RingNode;
    let all: Vec<PeerId> = (1..=n as u64).map(PeerId::new).collect();
    let live: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();
    let mut nodes: Vec<RingNode> = all
        .iter()
        .map(|&p| {
            let mut r = RingNode::new(p, all.iter().copied());
            for &d in dead {
                r.remove_member(all[d]);
            }
            r
        })
        .collect();
    let now = SimTime::ZERO;
    let mut inbox: Vec<(usize, PeerId, whisper_election::ElectionMsg)> = Vec::new();
    let out = nodes[initiator].start_election(now);
    for (to, msg) in out.sends {
        inbox.push(((to.value() - 1) as usize, all[initiator], msg));
    }
    for _ in 0..100_000 {
        let Some((to, from, msg)) = inbox.pop() else {
            break;
        };
        if dead.contains(&to) {
            continue;
        }
        let out = nodes[to].on_message(from, msg, now);
        for (dest, m) in out.sends {
            inbox.push(((dest.value() - 1) as usize, all[to], m));
        }
    }
    live.iter().map(|&i| nodes[i].coordinator()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_elects_the_highest_live_peer_with_updated_membership(
        n in 2usize..10,
        dead_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
        init_pick in any::<prop::sample::Index>(),
    ) {
        let mut dead: Vec<usize> = dead_picks.iter().map(|p| p.index(n)).collect();
        dead.sort_unstable();
        dead.dedup();
        let live: Vec<usize> = (0..n).filter(|i| !dead.contains(i)).collect();
        prop_assume!(live.len() >= 2, "a lone survivor self-elects trivially");
        let initiator = live[init_pick.index(live.len())];
        let expected = PeerId::new(*live.last().expect("non-empty") as u64 + 1);
        let beliefs = pump_ring(n, &dead, initiator);
        for (li, b) in live.iter().zip(&beliefs) {
            prop_assert_eq!(
                *b,
                Some(expected),
                "live node {} disagrees; beliefs {:?}, dead {:?}",
                li, beliefs, dead
            );
        }
    }

    /// Workflow QoS aggregation is monotone: degrading any leaf can only
    /// worsen the aggregate.
    #[test]
    fn qos_composition_is_monotone(
        lat in proptest::collection::vec(1u64..10_000, 2..6),
        rel in proptest::collection::vec(0.5f64..1.0, 2..6),
        degrade_pick in any::<prop::sample::Index>(),
    ) {
        use whisper::composition::QosExpr;
        use whisper_p2p::QosSpec;
        let n = lat.len().min(rel.len());
        let task = |i: usize, slow: bool| {
            QosExpr::task(QosSpec {
                latency_us: lat[i] * if slow { 10 } else { 1 },
                reliability: if slow { rel[i] * 0.5 } else { rel[i] },
                cost: 1.0,
            })
        };
        let victim = degrade_pick.index(n);
        let base = QosExpr::seq((0..n).map(|i| task(i, false)).collect());
        let worse = QosExpr::seq((0..n).map(|i| task(i, i == victim)).collect());
        let (qb, qw) = (base.aggregate(), worse.aggregate());
        prop_assert!(qw.latency_us >= qb.latency_us);
        prop_assert!(qw.reliability <= qb.reliability);
    }
}

// ---------- robustness: parsers never panic ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes must never panic any of the stack's parsers — they
    /// face network input.
    #[test]
    fn parsers_never_panic_on_arbitrary_input(s in "\\PC*") {
        let _ = whisper_xml::parse(&s);
        let _ = whisper_xml::parse_document(&s);
        let _ = Envelope::parse(&s);
        let _ = whisper_wsdl::ServiceDescription::parse(&s);
        let _ = Advertisement::parse(&s);
        let _ = whisper_xml::unescape(&s);
    }

    /// XML-shaped junk (angle brackets, quotes, ampersands) as well.
    #[test]
    fn parsers_never_panic_on_xmlish_junk(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("/>".to_string()),
                Just("<a".to_string()),
                Just("='".to_string()),
                Just("=\"".to_string()),
                Just("&".to_string()),
                Just(";".to_string()),
                Just("<![CDATA[".to_string()),
                Just("]]>".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("<?".to_string()),
                Just("?>".to_string()),
                Just("xmlns:p".to_string()),
                Just("p:q".to_string()),
                "[a-z ]{0,6}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let s: String = parts.concat();
        let _ = whisper_xml::parse(&s);
        let _ = Envelope::parse(&s);
        let _ = Advertisement::parse(&s);
        let _ = whisper_wsdl::ServiceDescription::parse(&s);
    }
}

// ---------- WSDL round trip over generated descriptions ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wsdl_round_trip_over_generated_descriptions(
        svc_name in "[A-Za-z][A-Za-z0-9]{0,10}",
        ifaces in proptest::collection::vec(
            (
                "[A-Za-z][A-Za-z0-9]{0,8}",
                proptest::collection::vec(
                    (
                        "[A-Za-z][A-Za-z0-9]{0,8}",
                        "[a-z:/.]{1,10}",
                        "[A-Za-z][A-Za-z0-9]{0,8}",
                        proptest::collection::vec(
                            ("[A-Za-z][A-Za-z0-9]{0,6}", "[A-Za-z][A-Za-z0-9]{0,8}"),
                            0..3,
                        ),
                    ),
                    0..3,
                ),
            ),
            0..3,
        ),
    ) {
        use whisper_wsdl::{Interface, Operation, ServiceDescription};
        let mut svc = ServiceDescription::new(&svc_name, "urn:prop");
        for (iname, ops) in &ifaces {
            let mut iface = Interface::new(iname.clone());
            for (oname, ns, action, parts) in ops {
                let mut op = Operation::new(oname.clone(), QName::with_ns(ns.clone(), action.clone()));
                for (label, concept) in parts {
                    op = op
                        .with_input(label.clone(), QName::with_ns(ns.clone(), concept.clone()))
                        .with_output(label.clone(), QName::with_ns(ns.clone(), concept.clone()));
                }
                iface = iface.with_operation(op);
            }
            svc = svc.with_interface(iface);
        }
        let text = svc.to_xml_string();
        let back = ServiceDescription::parse(&text).expect("own output parses");
        prop_assert_eq!(svc, back);
    }
}

// ---------- semantic-match memo equivalence ----------

#[derive(Debug, Clone)]
enum MemoOp {
    Insert { adv: usize, lifetime_us: u64 },
    Advance { delta_us: u64 },
    Expire,
    FailGroup { group: u64 },
    Query,
}

fn memo_op_strategy() -> impl Strategy<Value = MemoOp> {
    prop_oneof![
        (0..8usize, 50..2_000u64)
            .prop_map(|(adv, lifetime_us)| MemoOp::Insert { adv, lifetime_us }),
        (1..500u64).prop_map(|delta_us| MemoOp::Advance { delta_us }),
        Just(MemoOp::Expire),
        (1..5u64).prop_map(|group| MemoOp::FailGroup { group }),
        Just(MemoOp::Query),
        Just(MemoOp::Query),
    ]
}

fn policy_strategy() -> impl Strategy<Value = whisper::SelectionPolicy> {
    use whisper::SelectionPolicy::*;
    prop_oneof![
        Just(SemanticThenQos),
        Just(QosOnly),
        Just(Adaptive),
        Just(Random),
        Just(FirstFound),
    ]
}

/// A mixed pool of acceptable and unacceptable advertisements against the
/// student-management `StudentInformation` operation, spread over four
/// groups so failed-group exclusion bites.
fn memo_adv_pool() -> Vec<SemanticAdv> {
    use whisper_ontology::samples::UNIVERSITY_NS;
    let q = |l: &str| QName::with_ns(UNIVERSITY_NS, l);
    let combos = [
        ("StudentInformation", "StudentID", "StudentInfo"),
        (
            "StudentTranscriptRetrieval",
            "StudentID",
            "StudentTranscript",
        ),
        ("StudentInformation", "Identifier", "StudentInfo"),
        ("InformationRetrieval", "StudentID", "StudentInfo"), // action too general
        ("StudentInformation", "NationalID", "StudentInfo"),  // unsatisfiable input
        ("EnrollmentUpdate", "StudentID", "StudentInfo"),     // unrelated action
        ("StudentInformation", "StudentID", "Record"),        // output too general
        ("StudentInformation", "StudentID", "StudentInfo"),
    ];
    combos
        .iter()
        .enumerate()
        .map(|(i, (action, input, output))| SemanticAdv {
            group: GroupId::new((i % 4 + 1) as u64),
            name: format!("adv{i}"),
            action: q(action),
            inputs: vec![q(input)],
            outputs: vec![q(output)],
            qos: (i % 2 == 0).then(|| QosSpec {
                latency_us: 100 * (i as u64 + 1),
                reliability: 0.9 + 0.01 * i as f64,
                cost: 0.5,
            }),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The proxy's epoch-keyed semantic-match memo is invisible: under any
    /// interleaving of inserts, expiries, time passage and group failures,
    /// the memoized path picks exactly what a from-scratch matching pass
    /// would (including identical RNG consumption for the Random policy).
    #[test]
    fn memoized_semantic_match_equals_uncached_selection(
        ops in proptest::collection::vec(memo_op_strategy(), 1..40),
        policy in policy_strategy(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use whisper::matchmaker;
        use whisper::QosMonitor;
        use whisper_p2p::{AdvFilter, AdvKind, DiscoveryCache};

        let onto = whisper_ontology::samples::university_ontology();
        let req = whisper_wsdl::samples::student_management()
            .operation("StudentInformation")
            .unwrap()
            .resolve(&onto)
            .unwrap();
        let pool = memo_adv_pool();
        let monitor = QosMonitor::default();
        let filter = AdvFilter::of_kind(AdvKind::Semantic);

        let mut cache = DiscoveryCache::new();
        let mut memo = matchmaker::SemanticMatchCache::new();
        let mut now = SimTime::ZERO;
        let mut failed: Vec<GroupId> = Vec::new();
        // Lockstep RNGs: the property includes "both paths draw the same
        // amount of randomness", so a stale memo shows up as divergence.
        let mut rng_memo = SmallRng::seed_from_u64(seed);
        let mut rng_plain = SmallRng::seed_from_u64(seed);

        for op in ops {
            match op {
                MemoOp::Insert { adv, lifetime_us } => {
                    cache.insert(
                        Advertisement::Semantic(pool[adv].clone()),
                        now + SimDuration::from_micros(lifetime_us),
                    );
                }
                MemoOp::Advance { delta_us } => {
                    now += SimDuration::from_micros(delta_us);
                }
                MemoOp::Expire => {
                    cache.expire(now);
                }
                MemoOp::FailGroup { group } => {
                    let g = GroupId::new(group);
                    if !failed.contains(&g) {
                        failed.push(g);
                    }
                }
                MemoOp::Query => {
                    // memoized path, exactly as the proxy runs it
                    let epoch = cache.epoch();
                    let (ranked, _hit) =
                        memo.get_or_build("StudentInformation", epoch, &failed, now, || {
                            let mut earliest = SimTime::from_micros(u64::MAX);
                            let ranked = matchmaker::rank_candidates(
                                &onto,
                                &req,
                                cache
                                    .iter_live(&filter, now)
                                    .map(|(a, expires)| {
                                        if expires < earliest {
                                            earliest = expires;
                                        }
                                        a
                                    })
                                    .filter_map(Advertisement::as_semantic)
                                    .filter(|a| !failed.contains(&a.group)),
                            );
                            (ranked, earliest)
                        });
                    let memo_pick =
                        matchmaker::select_from_ranked(ranked, policy, &mut rng_memo, &monitor)
                            .map(|i| ranked[i].adv.group);

                    // reference path: full matching from scratch
                    let candidates: Vec<SemanticAdv> = cache
                        .lookup(&filter, now)
                        .into_iter()
                        .filter_map(Advertisement::as_semantic)
                        .filter(|a| !failed.contains(&a.group))
                        .cloned()
                        .collect();
                    let plain_pick = matchmaker::select_candidate(
                        &onto,
                        &req,
                        &candidates,
                        policy,
                        &mut rng_plain,
                        &monitor,
                    )
                    .map(|i| candidates[i].group);

                    prop_assert_eq!(memo_pick, plain_pick);
                }
            }
        }
    }
}
