//! Offline drop-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Wraps `std::sync::Mutex` and recovers from poisoning, which
//! matches parking_lot's semantics of not poisoning at all.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking lock attempt; `None` if the mutex is held elsewhere.
    /// Like `lock`, recovers from poisoning instead of surfacing it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held_and_succeeds_after() {
        let m = Mutex::new(1u32);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        *m.try_lock().expect("mutex is free") += 1;
        assert_eq!(*m.lock(), 2);
    }
}
