//! Offline drop-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Wraps `std::sync::Mutex` and recovers from poisoning, which
//! matches parking_lot's semantics of not poisoning at all.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
