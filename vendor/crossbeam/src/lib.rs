//! Offline drop-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver, RecvTimeoutError}`. Backed by
//! `std::sync::mpsc`, which supports everything the thread-backed network
//! substrate needs (cloneable senders, single consumer, recv with timeout).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0
                .send(msg)
                .map_err(|mpsc::SendError(inner)| SendError(inner))
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
