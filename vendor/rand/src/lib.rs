//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this stub through a path dependency. It implements exactly the surface
//! the repo calls: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64,
//! the same construction rand 0.8 uses), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range`/`gen_bool` over integer
//! and float ranges. Everything is deterministic for a given seed, which
//! is all the simulator requires.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// 53 uniform bits mapped into `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded sample via 128-bit widening multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e - s) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                s + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                s + (unit_f64(rng) as $t) * (e - s)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's `SmallRng` on 64-bit
    /// targets. Fast, small, and deterministic — not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let i = rng.gen_range(0u64..=9);
            assert!(i <= 9);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }
}
