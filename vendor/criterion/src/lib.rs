//! Offline drop-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Implements a small-but-honest timing harness: each `Bencher::iter`
//! auto-calibrates the iteration count until a sample takes at least a few
//! milliseconds, then reports mean ns/iter to stdout. No statistics, plots,
//! or baselines — just enough to run `cargo bench` offline and compare
//! numbers across runs by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one calibrated measurement batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub calibrates by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into().id));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

#[derive(Default)]
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            });
        }
    }

    /// The closure runs `iters` iterations itself and reports the elapsed
    /// wall time (used when setup must be excluded from the measurement).
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        let iters = 10;
        let elapsed = f(iters);
        self.measured = Some((iters, elapsed));
    }

    fn report(&self, id: &str) {
        match self.measured {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!("{id:<48} {ns:>12.1} ns/iter  ({iters} iters)");
            }
            None => println!("{id:<48} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2))
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
