//! Offline drop-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace pins this
//! stub through a path dependency. It keeps proptest's *interface* — the
//! `proptest!` macro, `Strategy` combinators (`prop_map`, `prop_recursive`),
//! regex-string strategies, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, `any::<T>()`, `prop_assert*!`, `prop_assume!` —
//! but swaps the engine for a simple deterministic random-case runner:
//! no shrinking, no persisted failure seeds. Each test derives its RNG seed
//! from the test name, so failures reproduce across runs.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_rejects: 4096,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!`; it is retried, not failed.
        Reject(String),
        /// The case violated a `prop_assert*!`.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64 generator seeded from the test name (FNV-1a), so a given
    /// test always sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one `proptest!` test: generate cases until `config.cases`
    /// pass, panicking on the first failing case.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > config.max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases ({rejected}); last: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed after {passed} passing case(s): {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds `depth` nested applications of `recurse` over `self`.
        /// Unlike real proptest this always materialises the full tower,
        /// but inner collections may be empty so generated trees still vary
        /// in depth. `desired_size`/`expected_branch_size` are ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level = BoxedStrategy::new(self);
            for _ in 0..depth {
                level = BoxedStrategy::new(recurse(level.clone()));
            }
            level
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> BoxedStrategy<T> {
        pub(crate) fn new<S>(strategy: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            BoxedStrategy(Rc::new(strategy))
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].new_value(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e - s) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    s + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    s + (rng.unit_f64() as $t) * (e - s)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// String literals act as regex strategies, matching real proptest.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }
}

pub(crate) mod string {
    //! Sampler for the small regex subset the workspace's tests use:
    //! character classes with ranges (`[A-Za-z0-9_.-]`), literals, the
    //! quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`, and `\PC` (any
    //! non-control character).

    use crate::test_runner::TestRng;

    enum Atom {
        /// Inclusive char ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Literal(char),
        /// `\PC`: anything outside Unicode category C (sampled from a
        /// printable pool including some multibyte chars).
        AnyPrintable,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    /// Upper bound used for open-ended `*`/`+` quantifiers.
    const OPEN_REPEAT_MAX: u32 = 8;

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in regex {pattern:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in regex {pattern:?}");
                    let esc = chars[i + 1];
                    i += 2;
                    if esc == 'P' || esc == 'p' {
                        // single-letter category form: \PC / \pL …
                        assert!(i < chars.len(), "dangling category in regex {pattern:?}");
                        i += 1;
                        Atom::AnyPrintable
                    } else {
                        Atom::Literal(esc)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, OPEN_REPEAT_MAX)
                    }
                    '+' => {
                        i += 1;
                        (1, OPEN_REPEAT_MAX)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated {} quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => {
                                (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
                            }
                            None => {
                                let n: u32 = body.trim().parse().unwrap();
                                (n, n)
                            }
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        let mut pick = rng.below(total);
        for &(lo, hi) in ranges {
            let size = hi as u64 - lo as u64 + 1;
            if pick < size {
                return char::from_u32(lo as u32 + pick as u32).unwrap();
            }
            pick -= size;
        }
        unreachable!()
    }

    fn sample_printable(rng: &mut TestRng) -> char {
        // mostly printable ASCII, sprinkled with multibyte chars so
        // parsers see non-ASCII input too
        const EXTRAS: [char; 6] = ['é', '語', 'λ', 'Ω', 'ß', '→'];
        let pick = rng.below(100);
        if pick < 90 {
            char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
        } else {
            EXTRAS[rng.below(EXTRAS.len() as u64) as usize]
        }
    }

    pub(crate) fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(piece.max as u64 - piece.min as u64 + 1) as u32;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyPrintable => out.push(sample_printable(rng)),
                }
            }
        }
        out
    }
}

pub mod sample {
    /// An index into a collection of as-yet-unknown size; resolve it with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // bias toward Some, as real proptest does
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (@fns ($config:expr)) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strategy,)+);
            $crate::test_runner::run($config, stringify!($name), |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, __rng);
                let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::proptest! { @fns ($config) $($rest)* }
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @fns ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @fns ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_sampler_respects_shape() {
        let mut rng = crate::test_runner::TestRng::from_name("regex");
        for _ in 0..200 {
            let s = crate::string::sample_regex("[A-Za-z_][A-Za-z0-9_.-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated vec lengths honour the size range.
        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_oneof_work(
            (a, b) in (0u32..10, 0.0f64..=1.0),
            c in prop_oneof![Just('x'), Just('y')],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(c == 'x' || c == 'y');
            prop_assert_eq!(idx.index(1), 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..20) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        /// Recursion bottoms out and produces nested vectors.
        #[test]
        fn recursive_strategy_terminates(
            tree in Just(0u8).prop_map(|_| 1usize).prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(|kids| {
                    1 + kids.into_iter().sum::<usize>()
                })
            })
        ) {
            prop_assert!(tree >= 1);
        }
    }
}
