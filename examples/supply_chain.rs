//! Supply-chain order tracking over a **rendezvous** discovery topology,
//! with a scripted outage: the coordinator fails mid-run and recovers
//! later, while a closed-loop client keeps ordering.
//!
//! Demonstrates the deployment variant where peers publish to and query a
//! dedicated rendezvous peer (JXTA's rendezvous protocol) instead of
//! flooding, plus declarative fault plans.
//!
//! Run with: `cargo run --example supply_chain`

use whisper::{
    ClientConfigTemplate, DeploymentConfig, GroupSpec, OrderTracker, ServiceBackend, WhisperNet,
    Workload,
};
use whisper_simnet::{FaultPlan, SimDuration, SimTime};
use whisper_xml::Element;

fn track(order: &str) -> Element {
    let mut t = Element::new("TrackOrder");
    t.push_child(Element::with_text("OrderNumber", order));
    t
}

fn main() {
    let service = whisper_wsdl::samples::order_tracking();
    let op = service
        .operation("TrackOrder")
        .expect("operation exists")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..3)
        .map(|_| Box::new(OrderTracker::with_sample_orders()) as Box<dyn ServiceBackend>)
        .collect();

    let client_tpl = ClientConfigTemplate {
        workload: Workload::Closed {
            think: SimDuration::from_millis(200),
            window: 1,
        },
        payloads: vec![track("po-77"), track("po-78"), track("po-79")],
        total: Some(60),
        timeout: SimDuration::from_secs(25),
        warmup: SimDuration::from_secs(2),
    };

    let cfg = DeploymentConfig {
        seed: 21,
        service,
        ontology: whisper_ontology::samples::b2b_ontology(),
        groups: vec![GroupSpec::from_operation(
            "OrderTrackingGroup",
            &op,
            backends,
        )],
        use_rendezvous: true,
        clients: vec![client_tpl],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    println!(
        "deployed with rendezvous at {:?}",
        net.rendezvous_node().expect("rendezvous configured")
    );

    // Script an outage: the (initial) coordinator — the highest peer of the
    // group — dies at t=6 s and recovers at t=12 s.
    let coordinator_node = *net.group_nodes(0).last().expect("non-empty group");
    let mut plan = FaultPlan::new();
    plan.crash_at(coordinator_node, SimTime::from_micros(6_000_000));
    plan.restart_at(coordinator_node, SimTime::from_micros(12_000_000));
    net.apply_faults(&plan);

    net.run_for(SimDuration::from_secs(40));

    let client = net.client_ids()[0];
    let stats = net.client_stats(client);
    println!(
        "closed-loop client: {} sent, {} completed, {} faults, {} timeouts",
        stats.sent, stats.completed, stats.faults, stats.timeouts
    );
    println!(
        "rtt: mean {:?}, p99 {:?}, max {:?}",
        stats.rtt.mean(),
        stats.rtt.percentile(99.0),
        stats.rtt.max()
    );
    println!("proxy: {:?}", net.proxy_stats());
    println!(
        "final coordinator: {:?} (recovered node is up: {})",
        net.coordinator_of(0),
        net.is_up(coordinator_node)
    );

    // The outage must be masked: every resolved request succeeded.
    assert_eq!(stats.faults, 0, "outage was not masked");
    assert!(
        stats.completed >= 50,
        "too few requests completed: {}",
        stats.completed
    );
    // The recovered highest-id peer bullied its way back to coordinator.
    assert_eq!(
        net.coordinator_of(0).map(|p| net.directory().node_of(p)),
        Some(Some(coordinator_node))
    );
}
