//! Cross-organization B2B integration — the heart of the paper's
//! "semantic heterogeneity" story (§2.1): two autonomous organizations
//! describe the *same* capability with *different* vocabularies, and
//! ontology alignment lets Whisper match them anyway.
//!
//! Organization A (the university) publishes the `StudentManagement`
//! service annotated with its own ontology. Organization B (a partner
//! institution) runs the b-peers, advertising in *its* vocabulary
//! (`Matricula`, `FichaDoAluno`, ...). Without alignment the proxy finds no
//! semantic match and must fault; after importing B's ontology and
//! asserting `owl:equivalentClass` bridges, the same request is served
//! transparently.
//!
//! Run with: `cargo run --example cross_organization`

use whisper::{DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet};
use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
use whisper_ontology::Ontology;
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;
use whisper_xml::QName;

/// Organization B's namespace.
const PARTNER_NS: &str = "http://parceiro.example/ontologia";

/// Organization B's own vocabulary for the same domain.
fn partner_ontology() -> Ontology {
    let mut o = Ontology::new(PARTNER_NS);
    let entidade = o.add_class("Entidade", &[]).expect("fresh ontology");
    let acao = o.add_class("Acao", &[entidade]).expect("fresh ontology");
    o.add_class("ConsultaDeAluno", &[acao])
        .expect("fresh ontology");
    let id = o
        .add_class("Identificador", &[entidade])
        .expect("fresh ontology");
    o.add_class("Matricula", &[id]).expect("fresh ontology");
    let doc = o
        .add_class("Documento", &[entidade])
        .expect("fresh ontology");
    o.add_class("FichaDoAluno", &[doc]).expect("fresh ontology");
    o
}

/// Imports B's vocabulary into A's ontology and asserts the bridges.
fn aligned_ontology() -> Ontology {
    let mut onto = university_ontology();
    onto.import(&partner_ontology())
        .expect("no namespace collisions");
    let bridge = |onto: &mut Ontology, a: &str, b: &str| {
        let ca = onto
            .class_by_qname(&QName::with_ns(UNIVERSITY_NS, a))
            .expect("university concept");
        let cb = onto
            .class_by_qname(&QName::with_ns(PARTNER_NS, b))
            .expect("partner concept");
        onto.add_equivalence(ca, cb).expect("valid ids");
    };
    bridge(&mut onto, "StudentInformation", "ConsultaDeAluno");
    bridge(&mut onto, "StudentID", "Matricula");
    bridge(&mut onto, "StudentInfo", "FichaDoAluno");
    onto
}

/// The partner's b-peer group, advertising in ITS vocabulary.
fn partner_group() -> GroupSpec {
    let q = |l: &str| QName::with_ns(PARTNER_NS, l);
    let backends: Vec<Box<dyn ServiceBackend>> = vec![
        Box::new(StudentRegistry::operational_db().with_sample_data()),
        Box::new(StudentRegistry::data_warehouse().with_sample_data()),
    ];
    GroupSpec {
        name: "GrupoConsultaAlunos".into(),
        action: q("ConsultaDeAluno"),
        inputs: vec![q("Matricula")],
        outputs: vec![q("FichaDoAluno")],
        qos: None,
        processing_time: None,
        backends,
    }
}

fn run_once(ontology: Ontology, label: &str) -> (u64, u64) {
    let mut cfg = DeploymentConfig {
        seed: 12,
        ontology,
        groups: vec![partner_group()],
        ..DeploymentConfig::default()
    };
    cfg.proxy.request_timeout = SimDuration::from_millis(800);
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1008");
    net.run_for(SimDuration::from_secs(5));
    let stats = net.client_stats(client);
    let response = net.client_last_response(client).expect("resolved");
    let parsed = Envelope::parse(&response).expect("soap");
    match parsed.body_payload() {
        Some(p) => println!(
            "{label}: served — {}",
            p.child("Name").map(|n| n.text()).unwrap_or_default()
        ),
        None => println!(
            "{label}: FAULT — {}",
            parsed
                .as_fault()
                .map(|f| f.reason.clone())
                .unwrap_or_default()
        ),
    }
    (stats.completed, stats.faults)
}

fn main() {
    // Attempt 1: no alignment. The partner's advertisement uses concepts
    // the university ontology has never heard of — nothing matches.
    println!("--- without ontology alignment ---");
    let (completed, faults) = run_once(university_ontology(), "request");
    assert_eq!((completed, faults), (1, 1), "must fault without alignment");

    // Attempt 2: import + equivalence bridges. Same deployment, same
    // advertisement, same request — now it matches Exactly.
    println!("\n--- with ontology alignment ---");
    let (completed, faults) = run_once(aligned_ontology(), "request");
    assert_eq!(
        (completed, faults),
        (1, 0),
        "alignment must mask the heterogeneity"
    );

    println!("\nsemantic heterogeneity bridged: same request, same peers, zero faults");
}
