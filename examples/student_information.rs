//! The paper's full running scenario (sections 3 and 4.1): the
//! `StudentManagement` semantic Web service, annotated per WSDL-S, backed
//! by a b-peer group mixing an *operational database* replica and a *data
//! warehouse* replica.
//!
//! Demonstrates the failure mode the paper narrates: "if the operational
//! database is unavailable, a semantically equivalent peer can
//! automatically and transparently handle the service request by retrieving
//! the same information from a data warehouse". Here the database goes
//! down *without* the peer crashing — the coordinator delegates to the
//! warehouse replica.
//!
//! Run with: `cargo run --example student_information`

use whisper::{DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet};
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;

fn main() {
    // Show the WSDL-S document of the service, as in the paper's listing.
    let service = whisper_wsdl::samples::student_management();
    println!("--- WSDL-S description ---");
    println!("{}", service.to_element().to_pretty_xml());

    // Group of two: peer 1 = warehouse, peer 2 = operational DB.
    // (Peer ids are assigned in backend order; the Bully winner is the
    // highest id, so the operational DB coordinates at first.)
    let op = service
        .operation("StudentInformation")
        .expect("operation exists");
    let backends: Vec<Box<dyn ServiceBackend>> = vec![
        Box::new(StudentRegistry::data_warehouse().with_sample_data()),
        Box::new(StudentRegistry::operational_db().with_sample_data()),
    ];
    let cfg = DeploymentConfig {
        seed: 7,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", op, backends)],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(2));

    let client = net.client_ids()[0];
    let db_node = net.group_nodes(0)[1];
    println!(
        "coordinator: {:?} (backend: {})",
        net.coordinator_of(0),
        net.bpeer(db_node).backend_label()
    );

    // Normal operation: the operational DB answers.
    net.submit_student_request(client, "u1001");
    net.run_for(SimDuration::from_secs(1));
    print_source(&net, client, "with the database up");

    // Take the database offline (the *peer* stays up — only its backing
    // store fails). The coordinator transparently delegates to the
    // semantically equivalent warehouse peer.
    net.bpeer_mut(db_node)
        .backend_mut()
        .downcast_mut::<StudentRegistry>()
        .expect("this peer runs a student registry")
        .set_available(false);
    net.submit_student_request(client, "u1002");
    net.run_for(SimDuration::from_secs(1));
    print_source(&net, client, "with the database down (delegated)");

    // Bring it back.
    net.bpeer_mut(db_node)
        .backend_mut()
        .downcast_mut::<StudentRegistry>()
        .expect("this peer runs a student registry")
        .set_available(true);
    net.submit_student_request(client, "u1003");
    net.run_for(SimDuration::from_secs(1));
    print_source(&net, client, "after recovery");

    let stats = net.client_stats(client);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.faults, 0);
    println!("\nall {} requests served without a fault", stats.completed);
}

fn print_source(net: &WhisperNet, client: whisper_simnet::NodeId, when: &str) {
    let envelope = net.client_last_response(client).expect("got a response");
    let parsed = Envelope::parse(&envelope).expect("well-formed response");
    let payload = parsed.body_payload().expect("not a fault");
    let source = payload
        .child("Source")
        .map(|s| s.text())
        .unwrap_or_default();
    let name = payload.child("Name").map(|s| s.text()).unwrap_or_default();
    println!("{when}: {name} served from [{source}]");
}
