//! A composed B2B *process* with QoS prediction — Cardoso's workflow-QoS
//! model (the basis of the paper's §2.4) applied to a live deployment.
//!
//! A registrar's audit process runs two service invocations in sequence:
//! fetch a student's information, then fetch the transcript. Each step is
//! served by its own semantic b-peer group with a different service time.
//! The example measures each step's QoS, *predicts* the process QoS with
//! the sequential reduction rule, then executes the whole process many
//! times and compares prediction with measurement.
//!
//! Run with: `cargo run --example b2b_process`

use whisper::composition::QosExpr;
use whisper::{DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet};
use whisper_p2p::QosSpec;
use whisper_simnet::{SimDuration, SimTime};
use whisper_xml::Element;

fn request(op: &str, id: &str) -> Element {
    let mut p = Element::new(op);
    p.push_child(Element::with_text("StudentID", id));
    p
}

fn main() {
    let service = whisper_wsdl::samples::student_management();
    let info_op = service.operation("StudentInformation").expect("op").clone();
    let transcript_op = service.operation("StudentTranscript").expect("op").clone();
    let mk = || -> Vec<Box<dyn ServiceBackend>> {
        vec![
            Box::new(StudentRegistry::operational_db().with_sample_data()),
            Box::new(StudentRegistry::operational_db().with_sample_data()),
        ]
    };
    let mut info_group = GroupSpec::from_operation("InfoGroup", &info_op, mk());
    info_group.processing_time = Some(SimDuration::from_millis(2));
    let mut transcript_group = GroupSpec::from_operation("TranscriptGroup", &transcript_op, mk());
    transcript_group.processing_time = Some(SimDuration::from_millis(5));

    let cfg = DeploymentConfig {
        seed: 77,
        service,
        groups: vec![info_group, transcript_group],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    // --- Step 1: measure each step in isolation (warm bindings first) ---
    let measure_step = |net: &mut WhisperNet, op: &str, samples: usize| -> SimDuration {
        let mut total_us = 0u64;
        for i in 0..samples + 1 {
            let start = net.now();
            net.submit_request(client, request(op, &format!("u100{}", i % 10)));
            net.run_for(SimDuration::from_secs(1));
            let elapsed = net.now().since(start);
            let _ = elapsed; // the run window, not the RTT
            let outcomes = net.client_outcomes(client);
            let last = outcomes.last().expect("submitted");
            assert!(!last.fault, "step {op} failed");
            let rtt = last
                .completed_at
                .expect("completed within the window")
                .since(last.sent_at);
            if i > 0 {
                // drop the cold-start sample
                total_us += rtt.as_micros();
            }
        }
        SimDuration::from_micros(total_us / samples as u64)
    };
    let info_rtt = measure_step(&mut net, "StudentInformation", 10);
    let transcript_rtt = measure_step(&mut net, "StudentTranscript", 10);
    println!(
        "measured step QoS: StudentInformation {info_rtt}, StudentTranscript {transcript_rtt}"
    );

    // --- Step 2: predict the sequential process with the reduction rule ---
    let step = |latency: SimDuration| {
        QosExpr::task(QosSpec {
            latency_us: latency.as_micros(),
            reliability: 1.0,
            cost: 1.0,
        })
    };
    let process = QosExpr::seq(vec![step(info_rtt), step(transcript_rtt)]);
    let predicted = process.aggregate();
    println!(
        "predicted process QoS: {:.3} ms latency, {} invocations",
        predicted.latency_us as f64 / 1000.0,
        process.task_count()
    );

    // --- Step 3: run the composed process end to end, many times ---
    let runs = 25u64;
    let mut total_us = 0u64;
    for i in 0..runs {
        let started: SimTime = net.now();
        let id = format!("u100{}", i % 10);
        net.submit_request(client, request("StudentInformation", &id));
        net.run_for(SimDuration::from_millis(500));
        net.submit_request(client, request("StudentTranscript", &id));
        net.run_for(SimDuration::from_millis(500));
        let outcomes = net.client_outcomes(client);
        let pair = &outcomes[outcomes.len() - 2..];
        assert!(pair.iter().all(|o| !o.fault && o.completed_at.is_some()));
        // process latency = the two service times, excluding think gaps
        let process_us: u64 = pair
            .iter()
            .map(|o| {
                o.completed_at
                    .expect("completed")
                    .since(o.sent_at)
                    .as_micros()
            })
            .sum();
        total_us += process_us;
        let _ = started;
    }
    let measured = SimDuration::from_micros(total_us / runs);
    println!(
        "measured process QoS over {runs} runs: {:.3} ms",
        measured.as_millis_f64()
    );

    let err = (measured.as_micros() as f64 - predicted.latency_us as f64).abs()
        / predicted.latency_us as f64;
    println!("prediction error: {:.1}%", err * 100.0);
    assert!(
        err < 0.15,
        "composition model should predict the live process within 15% (got {:.1}%)",
        err * 100.0
    );
}
