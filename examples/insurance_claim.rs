//! Insurance-claim processing — one of the B2B workloads the paper's
//! introduction motivates ("it is not advisable for an insurance company to
//! delay a customer's insurance claim processing due to a Web service
//! failure").
//!
//! Deploys TWO semantically equivalent b-peer groups with different QoS
//! claims and shows QoS-aware selection (the paper's section 2.4
//! extension): the proxy picks the group advertising better
//! latency/reliability, and still fails over when that whole group dies.
//!
//! Run with: `cargo run --example insurance_claim`

use whisper::{
    ClaimProcessor, DeploymentConfig, GroupSpec, SelectionPolicy, ServiceBackend, WhisperNet,
};
use whisper_p2p::QosSpec;
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;
use whisper_xml::Element;

fn claim(number: &str, amount: &str) -> Element {
    let mut c = Element::new("ProcessClaim");
    let mut inner = Element::new("InsuranceClaim");
    inner.push_child(Element::with_text("ClaimNumber", number));
    inner.push_child(Element::with_text("Amount", amount));
    c.push_child(inner);
    c
}

fn main() {
    let service = whisper_wsdl::samples::claim_processing();
    let op = service.operation("ProcessClaim").expect("operation exists");

    let backends = |n: usize| -> Vec<Box<dyn ServiceBackend>> {
        (0..n)
            .map(|_| Box::new(ClaimProcessor::new(1_000.0)) as Box<dyn ServiceBackend>)
            .collect()
    };

    // A slow-but-cheap group and a fast premium group.
    let mut standard = GroupSpec::from_operation("StandardClaims", op, backends(2));
    standard.qos = Some(QosSpec {
        latency_us: 5_000,
        reliability: 0.95,
        cost: 1.0,
    });
    let mut premium = GroupSpec::from_operation("PremiumClaims", op, backends(2));
    premium.qos = Some(QosSpec {
        latency_us: 500,
        reliability: 0.999,
        cost: 1.0,
    });

    let mut cfg = DeploymentConfig {
        seed: 3,
        service,
        ontology: whisper_ontology::samples::b2b_ontology(),
        groups: vec![standard, premium],
        ..DeploymentConfig::default()
    };
    cfg.proxy.policy = SelectionPolicy::SemanticThenQos;

    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(2));

    let client = net.client_ids()[0];
    let premium_group = 1;

    // Both groups match semantically; QoS breaks the tie toward premium.
    net.submit_request(client, claim("c-100", "250.00"));
    net.run_for(SimDuration::from_secs(1));
    let premium_handled: u64 = net
        .group_nodes(premium_group)
        .iter()
        .map(|&n| net.bpeer(n).requests_handled())
        .sum();
    println!("decision: {}", decision(&net, client));
    println!("premium group handled {premium_handled} request(s) — QoS selection");
    assert_eq!(premium_handled, 1);

    // A claim above the limit is rejected — an application-level decision,
    // not a fault.
    net.submit_request(client, claim("c-101", "50000.00"));
    net.run_for(SimDuration::from_secs(1));
    println!("big claim: {}", decision(&net, client));

    // Kill the whole premium group: the proxy re-discovers and the
    // standard group takes over.
    for &n in &net.group_nodes(premium_group).to_vec() {
        net.kill_node(n);
    }
    println!("\npremium group crashed; resubmitting...");
    net.submit_request(client, claim("c-102", "99.00"));
    net.run_for(SimDuration::from_secs(15));
    println!("decision after group failover: {}", decision(&net, client));

    let stats = net.client_stats(client);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.faults, 0);
    println!(
        "\n{} claims processed, 0 faults; proxy stats: {:?}",
        stats.completed,
        net.proxy_stats()
    );
}

fn decision(net: &WhisperNet, client: whisper_simnet::NodeId) -> String {
    let envelope = net.client_last_response(client).expect("got a response");
    let parsed = Envelope::parse(&envelope).expect("well-formed");
    match parsed.body_payload() {
        Some(p) => format!(
            "claim {} -> {}",
            p.child("ClaimNumber").map(|c| c.text()).unwrap_or_default(),
            p.child("Decision").map(|c| c.text()).unwrap_or_default()
        ),
        None => format!(
            "FAULT: {}",
            parsed.as_fault().map(|f| f.to_string()).unwrap_or_default()
        ),
    }
}
