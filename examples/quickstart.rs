//! Quickstart: deploy the paper's StudentManagement scenario, issue one
//! request, then kill the coordinator and watch Whisper fail over.
//!
//! Run with: `cargo run --example quickstart`

use whisper::WhisperNet;
use whisper_simnet::SimDuration;

fn main() {
    // One semantic Web service backed by a group of three b-peers
    // (operational DB, data warehouse, operational DB), plus one client.
    let mut net = WhisperNet::student_scenario(3, 42);

    // Let the group publish advertisements and elect a coordinator.
    net.run_for(SimDuration::from_secs(2));
    println!(
        "coordinator after startup: {:?}",
        net.coordinator_of(0).expect("group elected a coordinator")
    );

    // A normal request.
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1004");
    net.run_for(SimDuration::from_secs(2));
    println!("--- first response ---");
    println!(
        "{}",
        net.client_last_response(client).expect("response arrived")
    );

    // Crash the coordinator mid-flight and send another request: the proxy
    // re-binds to the newly elected coordinator, transparently.
    let victim = net.kill_coordinator(0).expect("there was a coordinator");
    println!("\ncrashed coordinator {victim}; sending another request...");
    net.submit_student_request(client, "u1007");
    net.run_for(SimDuration::from_secs(10));
    println!("--- response after failover ---");
    println!(
        "{}",
        net.client_last_response(client).expect("failover response")
    );
    println!(
        "\nnew coordinator: {:?}",
        net.coordinator_of(0).expect("group re-elected")
    );

    let stats = net.client_stats(client);
    println!(
        "\nclient: {} sent, {} completed, {} faults; proxy: {:?}",
        stats.sent,
        stats.completed,
        stats.faults,
        net.proxy_stats()
    );
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.faults, 0);
}
